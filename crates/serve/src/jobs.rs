//! Asynchronous profiling jobs: clients submit a workload, get a job id
//! back immediately, and poll its state while dedicated runner threads
//! chew through the queue. Profiling is the only slow operation in the
//! service (seconds, versus microseconds for a cached prediction), so it
//! is the only thing that goes through the queue.

use rppm::WorkloadHandle;
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Lifecycle of one profiling job.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting for a runner thread.
    Queued,
    /// A runner is profiling (or coalescing onto an in-flight run).
    Running,
    /// Profile resident in the cache; predictions now take the fast path.
    Done {
        /// Workload name the profile is stored under.
        workload: String,
    },
    /// The profiling run panicked or the workload was invalid.
    Failed {
        /// One-line diagnostic.
        error: String,
    },
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }
}

/// Counts per state, for `/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobCounts {
    /// Jobs waiting for a runner.
    pub queued: usize,
    /// Jobs being profiled right now.
    pub running: usize,
    /// Jobs that completed.
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    states: HashMap<u64, JobState>,
    queue: VecDeque<(u64, WorkloadHandle)>,
    shutdown: bool,
}

/// A submit/poll queue of profiling jobs, drained by runner threads.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue").finish_non_exhaustive()
    }
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a profiling job for `workload` and returns its id.
    pub fn submit(&self, workload: WorkloadHandle) -> u64 {
        let mut inner = self.inner.lock().expect("job queue lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.states.insert(id, JobState::Queued);
        inner.queue.push_back((id, workload));
        drop(inner);
        self.ready.notify_one();
        id
    }

    /// Blocks until a job is available (returning it marked `Running`) or
    /// the queue shuts down (returning `None`). Runner threads loop on
    /// this.
    pub fn next_job(&self) -> Option<(u64, WorkloadHandle)> {
        let mut inner = self.inner.lock().expect("job queue lock");
        loop {
            if let Some((id, handle)) = inner.queue.pop_front() {
                inner.states.insert(id, JobState::Running);
                return Some((id, handle));
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue lock");
        }
    }

    /// Records a finished job's outcome.
    pub fn finish(&self, id: u64, outcome: Result<String, String>) {
        let state = match outcome {
            Ok(workload) => JobState::Done { workload },
            Err(error) => JobState::Failed { error },
        };
        self.inner
            .lock()
            .expect("job queue lock")
            .states
            .insert(id, state);
    }

    /// The state of job `id`, if it exists.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.inner
            .lock()
            .expect("job queue lock")
            .states
            .get(&id)
            .cloned()
    }

    /// Per-state job counts.
    pub fn counts(&self) -> JobCounts {
        let inner = self.inner.lock().expect("job queue lock");
        let mut c = JobCounts::default();
        for s in inner.states.values() {
            match s {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done { .. } => c.done += 1,
                JobState::Failed { .. } => c.failed += 1,
            }
        }
        c
    }

    /// Wakes every runner and makes [`JobQueue::next_job`] return `None`
    /// once the queue drains.
    pub fn shutdown(&self) {
        self.inner.lock().expect("job queue lock").shutdown = true;
        self.ready.notify_all();
    }
}

/// The `/jobs/<id>` response document.
pub fn job_doc(id: u64, state: &JobState) -> Value {
    let mut fields = vec![
        ("job".to_string(), Value::U64(id)),
        (
            "state".to_string(),
            Value::String(state.label().to_string()),
        ),
    ];
    match state {
        JobState::Done { workload } => {
            fields.push(("workload".into(), Value::String(workload.clone())));
        }
        JobState::Failed { error } => {
            fields.push(("error".into(), Value::String(error.clone())));
        }
        _ => {}
    }
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm::Session;

    #[test]
    fn submit_poll_finish_cycle() {
        let q = JobQueue::new();
        let session = Session::builder().jobs(1).build();
        let w = session.workload("nn").expect("catalog");
        let id = q.submit(w);
        assert!(matches!(q.state(id), Some(JobState::Queued)));
        let (got, _handle) = q.next_job().expect("queued job");
        assert_eq!(got, id);
        assert!(matches!(q.state(id), Some(JobState::Running)));
        q.finish(id, Ok("nn".into()));
        assert!(matches!(q.state(id), Some(JobState::Done { .. })));
        assert_eq!(q.counts().done, 1);
        assert!(q.state(id + 1).is_none());
        q.shutdown();
        assert!(q.next_job().is_none());
    }

    #[test]
    fn job_doc_carries_outcome() {
        let done = job_doc(
            3,
            &JobState::Done {
                workload: "nn".into(),
            },
        );
        assert_eq!(
            serde_json::to_string(&done).unwrap(),
            r#"{"job":3,"state":"done","workload":"nn"}"#
        );
        let failed = job_doc(
            4,
            &JobState::Failed {
                error: "boom".into(),
            },
        );
        assert!(serde_json::to_string(&failed).unwrap().contains("boom"));
    }
}

//! `rppm serve` — the profile-once workflow as a long-lived service.
//!
//! A hand-rolled HTTP/1.1 server over [`std::net::TcpListener`] (no
//! external dependencies) exposing the [`rppm::Session`] facade:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /stats` | cache hit/miss/eviction counters, job counts |
//! | `POST /traces` | upload an `RPT1` or JSON trace (format sniffed by magic bytes, streamed — the binary path never buffers the body); returns a profiling job id |
//! | `POST /machines` | upload a `.machine` description; registered under its `[machine] name` for the `machine=` query parameter |
//! | `GET /jobs/<id>` | poll a profiling job |
//! | `GET /predict?workload=…&design=…` | one prediction (synchronous when the profile is resident; `202` + job id otherwise); `machine=<name>` predicts a registered machine instead |
//! | `GET /sweep?…` | all five Table IV design points, or `machine=<a,b,…>` registered machines |
//! | `GET /dse?…` | design-space exploration; byte-identical to `rppm dse --json`; `machine=<name>` rebases the space |
//! | `POST /shutdown` | drain and exit |
//!
//! The machine registry is seeded with the five Table IV presets
//! (`smallest` … `biggest`), so `machine=base` works on a fresh service;
//! uploads are FIFO-capped like trace uploads (presets are never evicted).
//!
//! Predictions from a resident profile take microseconds; collecting a
//! profile takes seconds. The service keeps those on different threads:
//! HTTP workers serve resident-profile requests synchronously and turn
//! everything else into queued jobs ([`jobs::JobQueue`]) handled by
//! dedicated runners. The session's [`rppm::CacheBudget`] bounds resident
//! profiles with LRU eviction, so memory stays flat under workload churn
//! — the `profile-once` contract still holds for everything resident and
//! for concurrent requests to the same key (in-flight profiling runs are
//! never evicted and always coalesce).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod server;

pub use client::{Client, ClientResponse};
pub use server::{ServeConfig, Server};

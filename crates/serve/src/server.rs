//! The prediction service: a fixed pool of HTTP workers over one
//! profile-once [`Session`] with a bounded cache, plus runner threads
//! draining the profiling [`JobQueue`].
//!
//! Request handling is two-speed by construction: anything answerable
//! from a resident profile (predictions, sweeps, DSE) is served
//! synchronously on the HTTP worker, and anything that would have to
//! *profile* is converted into a job — the client gets `202 Accepted`
//! with a job id and polls `/jobs/<id>`. HTTP workers therefore never
//! block behind a profiling run.

use crate::http::{read_request_head, write_response, HttpError, RequestHead};
use crate::jobs::{job_doc, JobQueue};
use rppm::core::{find_best, sweep, ConfigSpace, Constraints};
use rppm::docs::{
    describe_config, dse_best_doc, dse_bounds_ladder, dse_sweep_doc, prediction_doc, sweep_doc,
};
use rppm::trace::{
    parse_machine, program_fingerprint, read_program, read_program_sections, read_program_stream,
    DesignPoint, MachineConfig, Program, BINARY_TRACE_MAGIC,
};
use rppm::{CacheBudget, Session, WorkloadHandle};
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (`:0` picks a free port).
    pub addr: String,
    /// HTTP worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Profiling runner threads draining the job queue.
    pub runners: usize,
    /// Worker threads per parallel sweep inside one request.
    pub jobs: usize,
    /// Profile-cache budget. Unlike offline runs, a long-lived service
    /// should set one — see [`CacheBudget`].
    pub budget: CacheBudget,
    /// Largest accepted request body (trace upload), in bytes.
    pub max_body_bytes: u64,
    /// Trace uploads larger than this are spooled to a temporary file and
    /// imported through the out-of-core streaming reader (mmap-backed,
    /// section-parallel decode) instead of being parsed from the socket,
    /// so a worker's peak memory stays bounded by sections, not bodies.
    pub spool_bytes: u64,
    /// Uploaded-trace handles retained for re-profiling after eviction;
    /// beyond this the oldest upload is forgotten (clients re-upload).
    pub max_uploads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            runners: 2,
            jobs: rppm::core::default_jobs(),
            budget: CacheBudget::unbounded(),
            max_body_bytes: 64 * 1024 * 1024,
            spool_bytes: 1024 * 1024,
            max_uploads: 256,
        }
    }
}

/// Everything the handlers share.
struct State {
    session: Session,
    jobs: JobQueue,
    uploads: Mutex<Uploads>,
    machines: Mutex<Machines>,
    requests: AtomicU64,
    started: Instant,
    stopping: AtomicBool,
    max_body_bytes: u64,
    spool_bytes: u64,
    max_uploads: usize,
    jobs_hint: usize,
    /// The bound address, kept so an HTTP-initiated shutdown can poke the
    /// accept loop out of its blocking `accept()`.
    addr: SocketAddr,
}

/// FIFO-capped registry of uploaded traces, keyed by content fingerprint.
/// Retaining the [`WorkloadHandle`] keeps the *program* alive so an
/// evicted profile can be re-collected without a re-upload; the cap
/// bounds that retention like the cache budget bounds profiles.
#[derive(Default)]
struct Uploads {
    by_fingerprint: HashMap<u64, WorkloadHandle>,
    order: VecDeque<u64>,
}

impl Uploads {
    fn insert(&mut self, fingerprint: u64, handle: WorkloadHandle, cap: usize) {
        if self.by_fingerprint.insert(fingerprint, handle).is_none() {
            self.order.push_back(fingerprint);
            while self.order.len() > cap.max(1) {
                if let Some(old) = self.order.pop_front() {
                    self.by_fingerprint.remove(&old);
                }
            }
        }
    }
}

/// Named machine-description registry. Seeded with the five Table IV
/// presets at startup; `POST /machines` adds (or replaces) entries under
/// their `[machine] name`. Uploads are FIFO-capped like trace uploads;
/// the seeded presets are not part of the FIFO and are never evicted.
struct Machines {
    by_name: HashMap<String, MachineConfig>,
    order: VecDeque<String>,
}

impl Machines {
    fn seeded() -> Self {
        Machines {
            by_name: DesignPoint::ALL
                .iter()
                .map(|d| (d.to_string(), d.config()))
                .collect(),
            order: VecDeque::new(),
        }
    }

    fn insert(&mut self, config: MachineConfig, cap: usize) {
        let name = config.name.clone();
        if self.by_name.insert(name.clone(), config).is_none() {
            self.order.push_back(name);
            while self.order.len() > cap.max(1) {
                if let Some(old) = self.order.pop_front() {
                    self.by_name.remove(&old);
                }
            }
        }
    }
}

/// A handler-level failure: one HTTP status plus a one-line message,
/// rendered as `{"error": "..."}`. Every hostile or malformed input along
/// the serve surface lands here — a 4xx response, never a worker death.
struct ApiError {
    status: u16,
    message: String,
}

impl ApiError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        ApiError {
            status,
            message: message.into(),
        }
    }
    fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }
    fn not_found(message: impl Into<String>) -> Self {
        Self::new(404, message)
    }
}

type ApiResult = Result<(u16, Value), ApiError>;

fn error_doc(message: &str) -> Value {
    Value::Object(vec![(
        "error".to_string(),
        Value::String(message.to_string()),
    )])
}

fn parse_query_num<T: std::str::FromStr>(
    head: &RequestHead,
    key: &str,
) -> Result<Option<T>, ApiError> {
    match head.query_value(key) {
        None => Ok(None),
        Some(raw) => raw.parse::<T>().map(Some).map_err(|_| {
            ApiError::bad_request(format!(
                "query parameter `{key}={raw}` is not a valid number"
            ))
        }),
    }
}

fn design_config(head: &RequestHead) -> Result<(String, MachineConfig), ApiError> {
    let name = head.query_value("design").unwrap_or("base");
    DesignPoint::ALL
        .iter()
        .find(|d| d.to_string() == name)
        .map(|d| (d.to_string(), d.config()))
        .ok_or_else(|| {
            ApiError::bad_request(format!(
                "unknown design point `{name}` (expected one of smallest/small/base/big/biggest)"
            ))
        })
}

/// A spooled upload on disk, removed when the guard drops (including on
/// every import-error path).
struct SpoolFile(std::path::PathBuf);

impl Drop for SpoolFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Copies an oversized upload body to a temporary file and imports it
/// through the out-of-core streaming reader: RPT1 containers (any version,
/// including version-3 op streams) go through the mmap-backed
/// section-parallel path, JSON traces are parsed from disk. Either way the
/// worker never holds the whole body in memory.
fn spool_and_read(body: &mut dyn Read, jobs: usize) -> Result<Program, ApiError> {
    static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SPOOL_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "rppm-serve-upload-{}-{seq}.spool",
        std::process::id()
    ));
    let guard = SpoolFile(path.clone());
    {
        let file = std::fs::File::create(&path)
            .map_err(|e| ApiError::new(500, format!("cannot spool upload: {e}")))?;
        let mut writer = BufWriter::new(file);
        std::io::copy(body, &mut writer)
            .map_err(|e| ApiError::bad_request(format!("body read failed: {e}")))?;
        std::io::Write::flush(&mut writer)
            .map_err(|e| ApiError::new(500, format!("cannot spool upload: {e}")))?;
    }
    let mut magic = [0u8; 4];
    let is_binary = std::fs::File::open(&path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| magic == BINARY_TRACE_MAGIC)
        .unwrap_or(false);
    let program = if is_binary {
        read_program_sections(&path, jobs)
    } else {
        read_program(&path)
    }
    .map_err(|e| ApiError::bad_request(format!("trace rejected: {e}")))?;
    drop(guard);
    Ok(program)
}

impl State {
    /// Looks up `name` in the machine registry, 404 on a miss.
    fn machine(&self, name: &str) -> Result<MachineConfig, ApiError> {
        self.machines
            .lock()
            .expect("machines lock")
            .by_name
            .get(name)
            .cloned()
            .ok_or_else(|| {
                ApiError::not_found(format!(
                    "no machine `{name}` in the registry (POST /machines to add it)"
                ))
            })
    }

    /// The machine a single-config endpoint evaluates: `machine=<name>`
    /// (registry lookup) or `design=<point>` (Table IV preset, default
    /// `base`) — passing both is an error.
    fn machine_or_design(&self, head: &RequestHead) -> Result<(String, MachineConfig), ApiError> {
        match (head.query_value("machine"), head.query_value("design")) {
            (Some(_), Some(_)) => Err(ApiError::bad_request(
                "pass either `design` (Table IV point) or `machine` (registry name), not both",
            )),
            (Some(name), None) => Ok((name.to_string(), self.machine(name)?)),
            (None, _) => design_config(head),
        }
    }

    /// Resolves `?workload=NAME[&scale=S][&seed=N]` or `?trace=FP` to a
    /// workload handle.
    fn resolve(&self, head: &RequestHead) -> Result<WorkloadHandle, ApiError> {
        match (head.query_value("workload"), head.query_value("trace")) {
            (Some(_), Some(_)) => Err(ApiError::bad_request(
                "pass either `workload` (catalog) or `trace` (uploaded fingerprint), not both",
            )),
            (Some(name), None) => {
                let scale = parse_query_num::<f64>(head, "scale")?.unwrap_or(1.0);
                let seed = parse_query_num::<u64>(head, "seed")?.unwrap_or(1);
                let handle = self
                    .session
                    .workload(name)
                    .map_err(|e| ApiError::not_found(e.to_string()))?;
                Ok(handle.scale(scale).seed(seed))
            }
            (None, Some(fp)) => {
                let fp = u64::from_str_radix(fp, 16).map_err(|_| {
                    ApiError::bad_request(format!("`trace={fp}` is not a hex fingerprint"))
                })?;
                self.uploads
                    .lock()
                    .expect("uploads lock")
                    .by_fingerprint
                    .get(&fp)
                    .cloned()
                    .ok_or_else(|| {
                        ApiError::not_found(format!(
                            "no uploaded trace {fp:016x} (expired or never uploaded; POST /traces)"
                        ))
                    })
            }
            (None, None) => Err(ApiError::bad_request(
                "missing `workload=<catalog name>` or `trace=<fingerprint>` query parameter",
            )),
        }
    }

    /// The resident-profile fast path: `Ok` with the profile when cached,
    /// otherwise a `202 Accepted` document pointing at a freshly submitted
    /// profiling job.
    fn profile_or_job(&self, handle: &WorkloadHandle) -> Result<rppm::ProfileHandle, (u16, Value)> {
        if let Some(profile) = handle.profile_if_cached() {
            return Ok(profile);
        }
        let id = self.jobs.submit(handle.clone());
        Err((
            202,
            Value::Object(vec![
                ("job".to_string(), Value::U64(id)),
                (
                    "status".to_string(),
                    Value::String(format!("profiling; poll /jobs/{id}, then retry")),
                ),
            ]),
        ))
    }

    fn handle_predict(&self, head: &RequestHead) -> ApiResult {
        let handle = self.resolve(head)?;
        let (_, config) = self.machine_or_design(head)?;
        match self.profile_or_job(&handle) {
            Ok(profile) => Ok((200, prediction_doc(&profile.predict(&config)))),
            Err(accepted) => Ok(accepted),
        }
    }

    fn handle_sweep(&self, head: &RequestHead) -> ApiResult {
        let handle = self.resolve(head)?;
        // Default sweep: the five Table IV points. `machine=a,b,c` sweeps
        // registered machines instead, labelled by registry name.
        let targets: Vec<(String, MachineConfig)> = match head.query_value("machine") {
            Some(list) => list
                .split(',')
                .map(|name| {
                    let name = name.trim();
                    Ok((name.to_string(), self.machine(name)?))
                })
                .collect::<Result<_, ApiError>>()?,
            None => DesignPoint::ALL
                .iter()
                .map(|d| (d.to_string(), d.config()))
                .collect(),
        };
        match self.profile_or_job(&handle) {
            Ok(profile) => {
                let configs: Vec<MachineConfig> = targets.iter().map(|(_, c)| c.clone()).collect();
                let labelled: Vec<(String, rppm::core::Prediction)> = targets
                    .into_iter()
                    .map(|(name, _)| name)
                    .zip(profile.predict_sweep(&configs))
                    .collect();
                Ok((200, sweep_doc(handle.name(), &labelled)))
            }
            Err(accepted) => Ok(accepted),
        }
    }

    fn handle_dse(&self, head: &RequestHead) -> ApiResult {
        let handle = self.resolve(head)?;
        let tiny = matches!(head.query_value("tiny"), Some("1") | Some("true"));
        let best_only = matches!(head.query_value("best_only"), Some("1") | Some("true"));
        let bound = parse_query_num::<f64>(head, "bound")?.unwrap_or(0.05);
        if !(0.0..1.0).contains(&bound) {
            return Err(ApiError::bad_request(format!(
                "`bound={bound}` is not in [0, 1)"
            )));
        }
        let mut constraints = Constraints::none();
        constraints.max_area = parse_query_num::<f64>(head, "max_area")?;
        constraints.max_power = parse_query_num::<f64>(head, "max_power")?;
        let profile = match self.profile_or_job(&handle) {
            Ok(p) => p,
            Err(accepted) => return Ok(accepted),
        };
        let prepared = profile.prepared();
        let base = match head.query_value("machine") {
            Some(name) => self.machine(name)?,
            None => DesignPoint::Base.config(),
        };
        let space = if tiny {
            ConfigSpace::tiny_from(base)
        } else {
            ConfigSpace::default_space_from(base)
        };
        let jobs = self.session_jobs();
        if best_only {
            let out = find_best(prepared.inner(), &space, &constraints, bound, jobs)
                .map_err(|e| ApiError::bad_request(format!("{}: {e}", handle.name())))?;
            return Ok((200, dse_best_doc(handle.name(), &space, &out)));
        }
        let bounds = dse_bounds_ladder(bound);
        let out = sweep(prepared.inner(), &space, &constraints, &bounds, jobs)
            .map_err(|e| ApiError::bad_request(format!("{}: {e}", handle.name())))?;
        Ok((200, dse_sweep_doc(handle.name(), &space, &out)))
    }

    fn handle_upload(&self, head: &RequestHead, body: &mut dyn Read) -> ApiResult {
        if head.content_length == 0 {
            return Err(ApiError::new(
                411,
                "trace upload needs a Content-Length body",
            ));
        }
        if head.content_length > self.max_body_bytes {
            return Err(ApiError::new(
                413,
                format!(
                    "body of {} bytes exceeds the {}-byte limit",
                    head.content_length, self.max_body_bytes
                ),
            ));
        }
        let mut limited = body.take(head.content_length);
        let program = if head.content_length > self.spool_bytes {
            spool_and_read(&mut limited, self.jobs_hint)?
        } else {
            read_program_stream(&mut limited)
                .map_err(|e| ApiError::bad_request(format!("trace rejected: {e}")))?
        };
        // Binary traces can end before Content-Length does; drain so the
        // connection stays framed for keep-alive.
        std::io::copy(&mut limited, &mut std::io::sink())
            .map_err(|e| ApiError::bad_request(format!("body read failed: {e}")))?;
        let fingerprint = program_fingerprint(&program);
        let name = program.name.clone();
        let handle = self
            .session
            .program(program)
            .map_err(|e| ApiError::bad_request(format!("trace rejected: {e}")))?;
        self.uploads.lock().expect("uploads lock").insert(
            fingerprint,
            handle.clone(),
            self.max_uploads,
        );
        let id = self.jobs.submit(handle);
        Ok((
            202,
            Value::Object(vec![
                ("job".to_string(), Value::U64(id)),
                ("workload".to_string(), Value::String(name)),
                (
                    "trace".to_string(),
                    Value::String(format!("{fingerprint:016x}")),
                ),
            ]),
        ))
    }

    fn handle_machine_upload(&self, head: &RequestHead, body: &mut dyn Read) -> ApiResult {
        if head.content_length == 0 {
            return Err(ApiError::new(
                411,
                "machine upload needs a Content-Length body",
            ));
        }
        if head.content_length > self.max_body_bytes {
            return Err(ApiError::new(
                413,
                format!(
                    "body of {} bytes exceeds the {}-byte limit",
                    head.content_length, self.max_body_bytes
                ),
            ));
        }
        let mut text = String::new();
        body.take(head.content_length)
            .read_to_string(&mut text)
            .map_err(|e| ApiError::bad_request(format!("body read failed: {e}")))?;
        let config = parse_machine(&text)
            .map_err(|e| ApiError::bad_request(format!("machine rejected: {e}")))?;
        let name = config.name.clone();
        let description = describe_config(&config);
        self.machines
            .lock()
            .expect("machines lock")
            .insert(config, self.max_uploads);
        Ok((
            200,
            Value::Object(vec![
                ("machine".to_string(), Value::String(name)),
                ("config".to_string(), Value::String(description)),
            ]),
        ))
    }

    fn handle_job(&self, path: &str) -> ApiResult {
        let id = path
            .strip_prefix("/jobs/")
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| ApiError::bad_request("job ids are decimal: /jobs/<n>"))?;
        let state = self
            .jobs
            .state(id)
            .ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
        Ok((200, job_doc(id, &state)))
    }

    fn handle_stats(&self) -> ApiResult {
        let cache = self.session.cache();
        let counts = self.jobs.counts();
        let budget = cache.budget();
        let opt_u64 = |v: Option<u64>| v.map(Value::U64).unwrap_or(Value::Null);
        Ok((
            200,
            Value::Object(vec![
                (
                    "uptime_seconds".to_string(),
                    Value::F64(self.started.elapsed().as_secs_f64()),
                ),
                (
                    "requests".to_string(),
                    Value::U64(self.requests.load(Ordering::Relaxed)),
                ),
                (
                    "cache".to_string(),
                    Value::Object(vec![
                        ("lookups".to_string(), Value::U64(cache.lookups() as u64)),
                        ("hits".to_string(), Value::U64(cache.hits() as u64)),
                        (
                            "profiles_collected".to_string(),
                            Value::U64(cache.profiles_collected() as u64),
                        ),
                        (
                            "evictions".to_string(),
                            Value::U64(cache.evictions() as u64),
                        ),
                        ("resident".to_string(), Value::U64(cache.resident() as u64)),
                        (
                            "resident_bytes".to_string(),
                            Value::U64(cache.resident_bytes()),
                        ),
                        (
                            "max_entries".to_string(),
                            opt_u64(budget.max_entries.map(|n| n as u64)),
                        ),
                        ("max_bytes".to_string(), opt_u64(budget.max_bytes)),
                    ]),
                ),
                (
                    "uploads".to_string(),
                    Value::U64(self.uploads.lock().expect("uploads lock").order.len() as u64),
                ),
                (
                    "machines".to_string(),
                    Value::U64(self.machines.lock().expect("machines lock").by_name.len() as u64),
                ),
                (
                    "jobs".to_string(),
                    Value::Object(vec![
                        ("queued".to_string(), Value::U64(counts.queued as u64)),
                        ("running".to_string(), Value::U64(counts.running as u64)),
                        ("done".to_string(), Value::U64(counts.done as u64)),
                        ("failed".to_string(), Value::U64(counts.failed as u64)),
                    ]),
                ),
            ]),
        ))
    }

    fn session_jobs(&self) -> usize {
        // Sweeps fan out over the session's configured worker count; the
        // session stores it per-handle, so recover it from any handle.
        self.jobs_hint
    }

    fn route(&self, head: &RequestHead, body: &mut dyn Read) -> (u16, Value) {
        let result = match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => Ok((
                200,
                Value::Object(vec![("ok".to_string(), Value::Bool(true))]),
            )),
            ("GET", "/stats") => self.handle_stats(),
            ("GET", "/predict") => self.handle_predict(head),
            ("GET", "/sweep") => self.handle_sweep(head),
            ("GET", "/dse") => self.handle_dse(head),
            ("POST", "/traces") => self.handle_upload(head, body),
            ("POST", "/machines") => self.handle_machine_upload(head, body),
            ("POST", "/shutdown") => {
                self.stopping.store(true, Ordering::SeqCst);
                self.jobs.shutdown();
                // The accept thread is parked in `accept()`; without this
                // poke it would only notice `stopping` on the next organic
                // connection — i.e. never, for a drained service.
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
                Ok((
                    200,
                    Value::Object(vec![("stopping".to_string(), Value::Bool(true))]),
                ))
            }
            ("GET", p) if p.starts_with("/jobs/") => self.handle_job(p),
            (m, _) if m != "GET" && m != "POST" => {
                Err(ApiError::new(405, format!("method {m} not supported")))
            }
            (_, p) => Err(ApiError::not_found(format!("no such endpoint `{p}`"))),
        };
        match result {
            Ok((status, doc)) => (status, doc),
            Err(e) => (e.status, error_doc(&e.message)),
        }
    }
}

/// The running service: accept thread + HTTP worker pool + job runners.
///
/// [`Server::bind`] starts everything; [`Server::wait`] parks the caller
/// until a `POST /shutdown` arrives (or [`Server::shutdown`] is called
/// from another thread).
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `config.addr`, spawns the worker pool and job runners, and
    /// returns the handle. The service is accepting requests when this
    /// returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let session = Session::builder()
            .jobs(config.jobs)
            .cache_budget(config.budget)
            .build();
        let state = Arc::new(State {
            session,
            jobs: JobQueue::new(),
            uploads: Mutex::new(Uploads::default()),
            machines: Mutex::new(Machines::seeded()),
            requests: AtomicU64::new(0),
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            max_body_bytes: config.max_body_bytes,
            spool_bytes: config.spool_bytes,
            max_uploads: config.max_uploads,
            jobs_hint: config.jobs.max(1),
            addr,
        });

        let mut threads = Vec::new();
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        for w in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rppm-serve-http-{w}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().expect("conn queue lock").recv() {
                            Ok(s) => s,
                            Err(_) => return,
                        };
                        serve_connection(&state, stream);
                    })
                    .expect("spawn http worker"),
            );
        }

        for r in 0..config.runners.max(1) {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rppm-serve-runner-{r}"))
                    .spawn(move || {
                        while let Some((id, handle)) = state.jobs.next_job() {
                            let outcome = catch_unwind(AssertUnwindSafe(|| handle.profile()))
                                .map(|_profile| handle.name().to_string())
                                .map_err(|_| "profiling run panicked".to_string());
                            state.jobs.finish(id, outcome);
                        }
                    })
                    .expect("spawn job runner"),
            );
        }

        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name("rppm-serve-accept".to_string())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if state.stopping.load(Ordering::SeqCst) {
                                break;
                            }
                            if let Ok(stream) = stream {
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                        }
                        // Dropping `tx` drains the worker pool.
                    })
                    .expect("spawn accept thread"),
            );
        }

        Ok(Server {
            state,
            addr,
            threads,
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server state accessors for embedding callers and tests.
    pub fn session(&self) -> &Session {
        &self.state.session
    }

    /// Initiates shutdown: stops accepting, wakes the job runners, and
    /// unblocks the accept loop.
    pub fn shutdown(&self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.jobs.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Blocks until every thread exits (after [`Server::shutdown`] or an
    /// HTTP `POST /shutdown`).
    pub fn wait(mut self) {
        // If shutdown came over HTTP, the accept loop may still be parked
        // in `accept()`; poke it.
        if self.state.stopping.load(Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Whether a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.state.stopping.load(Ordering::SeqCst)
    }
}

/// Serves one connection: keep-alive request loop with panic isolation —
/// a handler panic produces a 500 and closes this connection, never kills
/// the worker.
fn serve_connection(state: &Arc<State>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // Responses are small and latency-bound; never wait on Nagle.
    let _ = stream.set_nodelay(true);
    let peer_ok = stream.try_clone();
    let Ok(write_half) = peer_ok else { return };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    const MAX_REQUESTS_PER_CONN: usize = 10_000;
    for _ in 0..MAX_REQUESTS_PER_CONN {
        let head = match read_request_head(&mut reader) {
            Ok(h) => h,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            Err(HttpError::HeadTooLarge) => {
                let body =
                    serde_json::to_string(&error_doc("request head too large")).unwrap_or_default();
                let _ =
                    write_response(&mut writer, 431, "application/json", body.as_bytes(), false);
                return;
            }
            Err(e) => {
                let body = serde_json::to_string(&error_doc(&e.to_string())).unwrap_or_default();
                let _ =
                    write_response(&mut writer, 400, "application/json", body.as_bytes(), false);
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut body = (&mut reader).take(head.content_length);
            let response = state.route(&head, &mut body);
            // Drain whatever the handler left unread so the next request
            // on this connection starts at a frame boundary — but never
            // slurp a body the handler rejected as oversized; close the
            // connection instead.
            let drained = head.content_length <= state.max_body_bytes
                && std::io::copy(&mut body, &mut std::io::sink()).is_ok();
            (response, drained)
        }));
        let (response, keep_alive) = match outcome {
            Ok(((status, doc), drained)) => {
                let keep = head.keep_alive && drained && !state.stopping.load(Ordering::SeqCst);
                ((status, doc), keep)
            }
            Err(_) => ((500, error_doc("internal error")), false),
        };
        let (status, doc) = response;
        let body = serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string());
        if write_response(
            &mut writer,
            status,
            "application/json",
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
        {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

//! Minimal HTTP/1.1 plumbing over `std::net` — just enough protocol for
//! the prediction service and its load generator, with hard limits on
//! everything a hostile client controls (request-line length, header
//! count, body size). No external dependencies.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed request head (everything before the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Declared body length (`Content-Length`), 0 when absent.
    pub content_length: u64,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl RequestHead {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request head failed to parse — each maps to one 4xx status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The client closed the connection before sending a request.
    Closed,
    /// Socket-level failure.
    Io(String),
    /// Malformed request line or header (400).
    Malformed(String),
    /// Head grew past [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`] (431).
    HeadTooLarge,
    /// `Content-Length` was present but not a number (400).
    BadContentLength,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(d) => write!(f, "malformed request: {d}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BadContentLength => write!(f, "bad Content-Length"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
/// Invalid escapes pass through literally — queries never abort parsing.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let decoded = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                if let Some(v) = decoded {
                    out.push(v);
                    i += 3;
                    continue;
                }
                out.push(b'%');
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads one line (terminated by `\n`) from `r`, enforcing `budget` bytes
/// across the whole head.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("truncated head".into()));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::HeadTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 head".into()));
                }
                line.push(byte[0]);
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Parses one request head from `r`. The body (if any) is left unread —
/// the caller decides whether to stream, bound, or drain it.
pub fn read_request_head(r: &mut impl BufRead) -> Result<RequestHead, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported `{version}`")));
    }
    let http_10 = version == "HTTP/1.0";

    let mut content_length = 0u64;
    let mut keep_alive = !http_10;
    let mut headers = 0usize;
    loop {
        let line = read_line(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| HttpError::BadContentLength)?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(RequestHead {
        method,
        path: percent_decode(&path),
        query,
        content_length,
        keep_alive,
    })
}

/// Writes a complete response with a `Content-Length` body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn head(raw: &str) -> Result<RequestHead, HttpError> {
        read_request_head(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let h = head("GET /predict?workload=nn&scale=0.02&design=big HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(h.method, "GET");
        assert_eq!(h.path, "/predict");
        assert_eq!(h.query_value("workload"), Some("nn"));
        assert_eq!(h.query_value("design"), Some("big"));
        assert_eq!(h.content_length, 0);
        assert!(h.keep_alive);
    }

    #[test]
    fn parses_content_length_and_close() {
        let h = head("POST /traces HTTP/1.1\r\nContent-Length: 42\r\nConnection: close\r\n\r\n")
            .unwrap();
        assert_eq!(h.content_length, 42);
        assert!(!h.keep_alive);
    }

    #[test]
    fn percent_decoding_applies_to_queries() {
        let h = head("GET /predict?name=a%20b+c HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(h.query_value("name"), Some("a b c"));
    }

    #[test]
    fn hostile_heads_are_typed_errors() {
        assert_eq!(head(""), Err(HttpError::Closed));
        assert!(matches!(
            head("garbage\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            head("GET / SPDY/99\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert_eq!(
            head("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        let huge = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(head(&huge), Err(HttpError::HeadTooLarge));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "A: b\r\n".repeat(MAX_HEADERS + 1)
        );
        assert_eq!(head(&many), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn response_has_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

//! A deliberately tiny blocking HTTP/1.1 client — enough for the
//! `rppm load-gen` bench driver, the CI smoke job, and the integration
//! tests to talk to the service without external dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A kept-alive connection to one server.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    conn: Option<TcpStream>,
}

/// A response: status code plus the full body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes (always JSON from `rppm serve`).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

impl Client {
    /// A client for `addr`; connects lazily on first request.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, conn: None }
    }

    /// Sends `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, &[])
    }

    /// Sends `POST path` with `body`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed responses.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        // One retry: a kept-alive connection the server has since closed
        // surfaces as an error on the first write/read after reconnecting.
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.conn = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let stream = self.connect()?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: rppm\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream.try_clone()?);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value.trim().parse().map_err(|_| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "bad Content-Length in response",
                            )
                        })?;
                    }
                    "connection" if value.trim().eq_ignore_ascii_case("close") => close = true,
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if close {
            self.conn = None;
        }
        Ok(ClientResponse { status, body })
    }
}

//! End-to-end tests driving `rppm serve` over a real TCP socket: trace
//! upload, the two-speed predict path, JSON twins that match the offline
//! pipeline byte-for-byte, hostile bodies mapping to 4xx, concurrent
//! clients, and cache churn held at the configured budget.

use rppm::docs::prediction_doc;
use rppm::trace::{read_program_stream, DesignPoint};
use rppm::{CacheBudget, Session};
use rppm_serve::{Client, ServeConfig, Server};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn mini_rpt() -> Vec<u8> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/traces/mini.rpt"
    );
    std::fs::read(path).expect("examples/traces/mini.rpt exists")
}

fn field<'a>(doc: &'a Value, name: &str) -> &'a Value {
    doc.as_object()
        .and_then(|o| Value::get(o, name))
        .unwrap_or_else(|| panic!("field `{name}` in {doc:?}"))
}

/// Polls `/jobs/<id>` until it reports done (panics on failed/timeout).
fn await_job(client: &mut Client, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = client.get(&format!("/jobs/{id}")).expect("poll job");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc: Value = serde_json::from_str(&resp.text()).expect("job doc");
        match field(&doc, "state").as_str() {
            Some("done") => return,
            Some("failed") => panic!("job {id} failed: {}", resp.text()),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in 60s");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn upload_then_predict_and_sweep_match_offline_pipeline() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let mut client = Client::new(server.local_addr());

    // Health first: the service is up before any state exists.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "{\"ok\":true}");

    // Upload the example RPT1 trace; profiling starts as a job.
    let rpt = mini_rpt();
    let accepted = client.post("/traces", &rpt).expect("upload");
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let doc: Value = serde_json::from_str(&accepted.text()).expect("upload doc");
    let job = field(&doc, "job").as_u64().expect("job id");
    let trace = field(&doc, "trace")
        .as_str()
        .expect("fingerprint")
        .to_string();
    await_job(&mut client, job);

    // Once resident, predictions are synchronous 200s...
    let predict = client
        .get(&format!("/predict?trace={trace}&design=base"))
        .expect("predict");
    assert_eq!(predict.status, 200, "{}", predict.text());

    // ...and byte-identical to the offline pipeline on the same trace.
    let program = read_program_stream(&rpt[..]).expect("offline parse");
    let session = Session::builder().build();
    let offline = session
        .program(program)
        .expect("offline workload")
        .profile()
        .predict(&DesignPoint::Base.config());
    let offline_body = serde_json::to_string(&prediction_doc(&offline)).expect("offline doc");
    assert_eq!(predict.text(), offline_body, "serve/offline twin drift");

    // The sweep twin covers every design point and stays synchronous.
    let sweep = client.get(&format!("/sweep?trace={trace}")).expect("sweep");
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    let sweep_doc: Value = serde_json::from_str(&sweep.text()).expect("sweep doc");
    let rows = field(&sweep_doc, "sweep").as_array().expect("sweep rows");
    assert_eq!(rows.len(), DesignPoint::ALL.len());

    // Stats reflect the work done.
    let stats = client.get("/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let stats: Value = serde_json::from_str(&stats.text()).expect("stats doc");
    assert_eq!(field(field(&stats, "jobs"), "done").as_u64(), Some(1));
    assert_eq!(field(&stats, "uploads").as_u64(), Some(1));
    assert!(field(field(&stats, "cache"), "resident").as_u64() >= Some(1));

    let bye = client.post("/shutdown", b"").expect("shutdown");
    assert_eq!(bye.status, 200);
    server.wait();
}

#[test]
fn hostile_requests_get_4xx_not_a_dead_worker() {
    let server = Server::bind(ServeConfig {
        max_body_bytes: 4 * 1024,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = Client::new(server.local_addr());

    // Garbage body: parsed, rejected, 400 — and the connection survives.
    let garbage = client
        .post("/traces", b"these bytes are no trace")
        .expect("garbage");
    assert_eq!(garbage.status, 400, "{}", garbage.text());
    assert!(garbage.text().contains("trace rejected"));

    // Empty upload: 411 (a Content-Length body is required).
    let empty = client.post("/traces", b"").expect("empty");
    assert_eq!(empty.status, 411, "{}", empty.text());

    // Missing/unknown parameters: 400/404 with one-line JSON errors.
    for (path, status) in [
        ("/predict", 400),
        ("/predict?workload=no-such-workload", 404),
        ("/predict?workload=hotspot&scale=banana", 400),
        ("/predict?workload=hotspot&trace=1234", 400),
        ("/predict?trace=zz", 400),
        ("/predict?trace=00000000deadbeef", 404),
        ("/dse?workload=hotspot&bound=1.5", 400),
        ("/jobs/not-a-number", 400),
        ("/jobs/999999", 404),
        ("/no-such-endpoint", 404),
    ] {
        let resp = client.get(path).expect(path);
        assert_eq!(resp.status, status, "GET {path} -> {}", resp.text());
        assert!(
            resp.text().contains("\"error\""),
            "GET {path}: {}",
            resp.text()
        );
    }

    // Oversized declared body: rejected up front with 413. Send only the
    // head so the refusal is readable before any body bytes move.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"POST /traces HTTP/1.1\r\nHost: t\r\nContent-Length: 1048576\r\n\r\n")
        .expect("send oversized head");
    let mut response = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    raw.read_to_string(&mut response).expect("read 413");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    // Truncated body: Content-Length promises more than arrives; the
    // parser hits EOF and the server answers 400 instead of hanging.
    let rpt = mini_rpt();
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    write!(
        raw,
        "POST /traces HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        rpt.len()
    )
    .expect("send head");
    raw.write_all(&rpt[..rpt.len() / 2])
        .expect("send half the body");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut response = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    raw.read_to_string(&mut response).expect("read 400");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // A wholly malformed request line is a 400, not a crash.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"NOT-HTTP\r\n\r\n").expect("send junk");
    let mut response = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    raw.read_to_string(&mut response).expect("read 400");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // Unsupported method: 405.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"DELETE /traces HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .expect("send delete");
    let mut response = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    raw.read_to_string(&mut response).expect("read 405");
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");

    // After all that hostility the service still answers.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    server.shutdown();
    server.wait();
}

#[test]
fn concurrent_clients_share_one_profile() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    // Warm one catalog key through the job queue.
    let path = "/predict?workload=hotspot&scale=0.02&seed=1";
    let first = client.get(path).expect("first predict");
    assert_eq!(first.status, 202, "{}", first.text());
    let doc: Value = serde_json::from_str(&first.text()).expect("202 doc");
    await_job(&mut client, field(&doc, "job").as_u64().expect("job id"));

    let expected = client.get(path).expect("warm predict");
    assert_eq!(expected.status, 200, "{}", expected.text());
    let expected_body = expected.text();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let expected = expected_body.clone();
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                for _ in 0..25 {
                    let resp = c.get(path).expect("concurrent predict");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    assert_eq!(resp.text(), expected, "concurrent responses diverge");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // One workload, many requests, exactly one profiling run.
    let stats = client.get("/stats").expect("stats");
    let stats: Value = serde_json::from_str(&stats.text()).expect("stats doc");
    assert_eq!(
        field(field(&stats, "cache"), "profiles_collected").as_u64(),
        Some(1)
    );

    server.shutdown();
    server.wait();
}

#[test]
fn churn_beyond_budget_holds_cache_at_bound_with_correct_answers() {
    let server = Server::bind(ServeConfig {
        budget: CacheBudget::unbounded().with_entries(2),
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = Client::new(server.local_addr());

    // Offline reference session (unbounded — correctness baseline).
    let session = Session::builder().build();
    let config = DesignPoint::Base.config();

    // Churn through 3× more workload keys than the cache may hold.
    for seed in 1..=6u64 {
        let path = format!("/predict?workload=hotspot&scale=0.02&seed={seed}&design=base");
        let mut resp = client.get(&path).expect("predict");
        if resp.status == 202 {
            let doc: Value = serde_json::from_str(&resp.text()).expect("202 doc");
            await_job(&mut client, field(&doc, "job").as_u64().expect("job id"));
            resp = client.get(&path).expect("predict retry");
        }
        assert_eq!(resp.status, 200, "seed {seed}: {}", resp.text());

        let offline = session
            .workload("hotspot")
            .expect("catalog workload")
            .scale(0.02)
            .seed(seed)
            .profile()
            .predict(&config);
        let offline_body = serde_json::to_string(&prediction_doc(&offline)).expect("doc");
        assert_eq!(
            resp.text(),
            offline_body,
            "seed {seed}: eviction changed the answer"
        );
    }

    let stats = client.get("/stats").expect("stats");
    let stats: Value = serde_json::from_str(&stats.text()).expect("stats doc");
    let cache = field(&stats, "cache");
    assert!(
        field(cache, "resident").as_u64() <= Some(2),
        "resident above budget: {}",
        stats_text(&stats)
    );
    assert!(
        field(cache, "evictions").as_u64() >= Some(4),
        "expected ≥4 evictions: {}",
        stats_text(&stats)
    );
    assert_eq!(field(cache, "max_entries").as_u64(), Some(2));

    server.shutdown();
    server.wait();
}

fn stats_text(stats: &Value) -> String {
    serde_json::to_string(stats).unwrap_or_default()
}

/// The machine registry round-trip: the five presets are pre-seeded
/// (`machine=base` answers exactly like `design=base`), `POST /machines`
/// registers a `.machine` upload under its own name, predictions against
/// it match the offline pipeline on the same parsed config, and the
/// `machine=` sweep/error paths behave.
#[test]
fn machine_upload_round_trip_and_registry_errors() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let mut client = Client::new(server.local_addr());

    // Warm one catalog profile through the job queue.
    let query = "workload=hotspot&scale=0.02&seed=1";
    let first = client.get(&format!("/predict?{query}")).expect("warm");
    if first.status == 202 {
        let doc: Value = serde_json::from_str(&first.text()).expect("202 doc");
        await_job(&mut client, field(&doc, "job").as_u64().expect("job id"));
    }

    // Seeded preset: `machine=base` is byte-identical to `design=base`.
    let by_design = client
        .get(&format!("/predict?{query}&design=base"))
        .expect("design=base");
    let by_machine = client
        .get(&format!("/predict?{query}&machine=base"))
        .expect("machine=base");
    assert_eq!(by_design.status, 200, "{}", by_design.text());
    assert_eq!(by_machine.status, 200, "{}", by_machine.text());
    assert_eq!(by_design.text(), by_machine.text(), "preset seeding drift");

    // Upload a custom machine description.
    let custom = rppm::trace::MachineConfig::builder("wide-box")
        .dispatch_width(6)
        .cores(8)
        .build()
        .expect("valid custom machine");
    let text = rppm::trace::format_machine(&custom);
    let posted = client
        .post("/machines", text.as_bytes())
        .expect("post machine");
    assert_eq!(posted.status, 200, "{}", posted.text());
    let doc: Value = serde_json::from_str(&posted.text()).expect("machine doc");
    assert_eq!(field(&doc, "machine").as_str(), Some("wide-box"));

    // Predictions against it match the offline pipeline on the same config.
    let online = client
        .get(&format!("/predict?{query}&machine=wide-box"))
        .expect("predict wide-box");
    assert_eq!(online.status, 200, "{}", online.text());
    let session = Session::builder().build();
    let offline = session
        .workload("hotspot")
        .expect("catalog workload")
        .scale(0.02)
        .seed(1)
        .profile()
        .predict(&custom);
    let offline_body = serde_json::to_string(&prediction_doc(&offline)).expect("doc");
    assert_eq!(online.text(), offline_body, "serve/offline machine drift");

    // `machine=` sweeps over named registry entries, labelled by name.
    let sweep = client
        .get(&format!("/sweep?{query}&machine=base,wide-box"))
        .expect("machine sweep");
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    let sweep: Value = serde_json::from_str(&sweep.text()).expect("sweep doc");
    let rows = field(&sweep, "sweep").as_array().expect("sweep rows");
    assert_eq!(rows.len(), 2);
    assert_eq!(field(&rows[1], "design").as_str(), Some("wide-box"));

    // Registry misses are 404s, ambiguity and bad uploads are 400s.
    let missing = client
        .get(&format!("/predict?{query}&machine=absent"))
        .expect("missing machine");
    assert_eq!(missing.status, 404, "{}", missing.text());
    let both = client
        .get(&format!("/predict?{query}&design=base&machine=base"))
        .expect("both params");
    assert_eq!(both.status, 400, "{}", both.text());
    let garbage = client
        .post("/machines", b"not a machine file")
        .expect("garbage machine");
    assert_eq!(garbage.status, 400, "{}", garbage.text());
    assert!(garbage.text().contains("machine rejected"));

    // The registry count shows 5 presets + 1 upload.
    let stats = client.get("/stats").expect("stats");
    let stats: Value = serde_json::from_str(&stats.text()).expect("stats doc");
    assert_eq!(field(&stats, "machines").as_u64(), Some(6));

    server.shutdown();
    server.wait();
}

/// Uploads above the spool threshold take the out-of-core path: the body
/// is spooled to disk and imported through the streaming section reader
/// rather than parsed from the socket. The answers must not change — a
/// spooled version-3 op-stream container profiles and predicts exactly
/// like the same program uploaded in-memory — and the 413 cap plus the
/// corrupt-body 400 still hold on the spooled path.
#[test]
fn oversized_uploads_spool_through_the_streaming_reader() {
    let server = Server::bind(ServeConfig {
        spool_bytes: 1024, // force every realistic trace through the spool
        max_body_bytes: 4 * 1024 * 1024,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = Client::new(server.local_addr());

    // A version-3 container with a recorded op stream, well above the
    // spool threshold.
    let program = rppm::workloads::by_name("hotspot")
        .expect("catalog workload")
        .build(&rppm::workloads::Params {
            scale: 0.02,
            seed: 7,
        });
    let body = rppm::trace::export_program_ops(&program).expect("record op stream");
    assert!(
        body.len() > 1024,
        "test needs a body above the spool threshold, got {} bytes",
        body.len()
    );

    let accepted = client.post("/traces", &body).expect("spooled upload");
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let doc: Value = serde_json::from_str(&accepted.text()).expect("upload doc");
    await_job(&mut client, field(&doc, "job").as_u64().expect("job id"));
    let trace = field(&doc, "trace").as_str().expect("fingerprint");

    // Byte-identical to the offline pipeline on the same program.
    let online = client
        .get(&format!("/predict?trace={trace}&design=base"))
        .expect("predict spooled trace");
    assert_eq!(online.status, 200, "{}", online.text());
    let session = Session::builder().build();
    let offline_pred = session
        .program(program)
        .expect("offline workload")
        .profile()
        .predict(&DesignPoint::Base.config());
    let offline_body = serde_json::to_string(&prediction_doc(&offline_pred)).expect("doc");
    assert_eq!(
        online.text(),
        offline_body,
        "spooled upload changed answers"
    );

    // Corrupt oversized body: spooled, rejected with 400, worker survives.
    let mut corrupt = body.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    corrupt.truncate(mid + 1);
    let rejected = client.post("/traces", &corrupt).expect("corrupt spooled");
    assert_eq!(rejected.status, 400, "{}", rejected.text());
    assert!(rejected.text().contains("trace rejected"));

    // The 413 cap still fronts the spool path.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"POST /traces HTTP/1.1\r\nHost: t\r\nContent-Length: 8388608\r\n\r\n")
        .expect("send oversized head");
    let mut response = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    raw.read_to_string(&mut response).expect("read 413");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    // Still healthy afterwards.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    server.shutdown();
    server.wait();
}

/// The CLI parks in `Server::wait()` from startup; an HTTP-initiated
/// shutdown must unpark it without any further organic connections
/// (regression: the accept loop used to stay blocked in `accept()`).
#[test]
fn http_shutdown_unparks_a_server_already_waiting() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let waiter = std::thread::spawn(move || server.wait());

    let mut client = Client::new(addr);
    let bye = client.post("/shutdown", b"").expect("shutdown");
    assert_eq!(bye.status, 200);

    let deadline = Instant::now() + Duration::from_secs(60);
    while !waiter.is_finished() {
        assert!(
            Instant::now() < deadline,
            "server.wait() did not return after POST /shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    waiter.join().expect("waiter thread");
}

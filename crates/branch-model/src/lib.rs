//! Microarchitecture-independent branch misprediction modeling.
//!
//! RPPM predicts the branch CPI component from a profile of branch-outcome
//! *predictability*, following the branch-entropy approach of De Pestel et
//! al. (ISPASS 2015): during profiling we measure, per static branch and per
//! history length `h`, the irreducible misprediction rate of an ideal
//! history-`h` predictor,
//!
//! ```text
//! M_h = Σ_hist P(hist) · min(p_taken|hist, 1 − p_taken|hist)
//! ```
//!
//! which is a property of the outcome stream only — independent of any
//! concrete predictor. At prediction time, [`predict_miss_rate`] evaluates a
//! target [`BranchPredictorConfig`](rppm_trace::BranchPredictorConfig):
//! an idealized tournament predictor picks the better of the bimodal
//! (`M_0`) and global-history (`M_h`, `h` = predictor history bits)
//! components per branch, with a first-order aliasing correction when the
//! observed pattern footprint exceeds the predictor's table capacity.
//!
//! # Example
//!
//! ```
//! use rppm_branch_model::EntropyCollector;
//!
//! let mut c = EntropyCollector::new();
//! // A loop branch with period 4: TTTF TTTF ... perfectly predictable with
//! // history >= 2, 25% mispredicted by a history-less predictor.
//! for i in 0..10_000u32 {
//!     c.record(1, i % 4 != 3);
//! }
//! let profile = c.finish();
//! assert!(profile.miss_floor(0) > 0.2);
//! assert!(profile.miss_floor(8) < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rppm_statstack::FxHashMap;
use serde::{Deserialize, Serialize};

/// History lengths (in branch outcomes) at which predictability is profiled.
pub const HIST_LENGTHS: [u32; 6] = [0, 1, 2, 4, 8, 12];

/// Per-epoch, per-thread branch predictability profile.
///
/// `m[k]` is the irreducible misprediction rate at history length
/// `HIST_LENGTHS[k]`, aggregated over all branches (weighted by execution
/// count). The curve is used by [`predict_miss_rate`] to evaluate concrete
/// predictor configurations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Dynamic branch count.
    pub branches: u64,
    /// Misprediction floor per profiled history length (aggregated).
    pub m: [f64; HIST_LENGTHS.len()],
    /// Number of static branch sites observed.
    pub static_sites: u32,
    /// Distinct (site, history) patterns observed at the longest profiled
    /// history — the predictor table footprint the workload needs.
    pub patterns: u64,
}

impl BranchProfile {
    /// Misprediction floor for an ideal predictor with `history` outcome
    /// bits (evaluated on the profiled grid; lengths beyond `history` are
    /// not used).
    pub fn miss_floor(&self, history: u32) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        let mut best = self.m[0];
        for (k, &h) in HIST_LENGTHS.iter().enumerate() {
            if h <= history {
                // Longer usable history can only help an ideal predictor;
                // guard against estimation noise with a running min.
                best = best.min(self.m[k]);
            }
        }
        best
    }

    /// Merges another profile into this one (weighted by branch counts).
    pub fn merge(&mut self, other: &BranchProfile) {
        let total = self.branches + other.branches;
        if total == 0 {
            return;
        }
        let wa = self.branches as f64 / total as f64;
        let wb = other.branches as f64 / total as f64;
        for k in 0..HIST_LENGTHS.len() {
            self.m[k] = self.m[k] * wa + other.m[k] * wb;
        }
        self.branches = total;
        self.static_sites = self.static_sites.max(other.static_sites);
        self.patterns += other.patterns;
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Counts {
    taken: u64,
    total: u64,
    errors: u64,
}

#[derive(Debug)]
struct SiteCollector {
    history: u64,
    observed: u64,
    /// Per profiled history length: history-bits → outcome counts.
    /// FxHash-keyed: this map is probed [`HIST_LENGTHS`]-many times per
    /// dynamic branch on the profiling hot path.
    tables: Vec<FxHashMap<u64, Counts>>,
}

impl Default for SiteCollector {
    fn default() -> Self {
        SiteCollector {
            history: 0,
            observed: 0,
            tables: (0..HIST_LENGTHS.len())
                .map(|_| FxHashMap::default())
                .collect(),
        }
    }
}

impl SiteCollector {
    fn record(&mut self, taken: bool) {
        for (k, &h) in HIST_LENGTHS.iter().enumerate() {
            let key = if h == 0 {
                0
            } else {
                self.history & ((1u64 << h) - 1)
            };
            let e = self.tables[k].entry(key).or_default();
            // Online majority vote: this is what an ideal table predictor
            // achieves *including training transients*, and it converges to
            // min(p, 1−p) — unlike the offline plug-in estimator, which is
            // badly biased when many histories have few samples.
            let predict_taken = 2 * e.taken >= e.total;
            if predict_taken != taken {
                e.errors += 1;
            }
            e.taken += taken as u64;
            e.total += 1;
        }
        self.history = (self.history << 1) | taken as u64;
        self.observed += 1;
    }

    /// Misprediction floor at each profiled history length.
    fn floors(&self) -> [f64; HIST_LENGTHS.len()] {
        let mut m = [0.0; HIST_LENGTHS.len()];
        if self.observed == 0 {
            return m;
        }
        for (k, table) in self.tables.iter().enumerate() {
            let wrong: u64 = table.values().map(|c| c.errors).sum();
            m[k] = wrong as f64 / self.observed as f64;
        }
        m
    }
}

/// Streaming collector building a [`BranchProfile`] from branch outcomes.
#[derive(Debug, Default)]
pub struct EntropyCollector {
    sites: FxHashMap<u32, SiteCollector>,
    branches: u64,
}

impl EntropyCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one dynamic branch at static site `site`.
    pub fn record(&mut self, site: u32, taken: bool) {
        self.sites.entry(site).or_default().record(taken);
        self.branches += 1;
    }

    /// Dynamic branches recorded so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Finishes collection, producing the profile.
    pub fn finish(self) -> BranchProfile {
        let mut m = [0.0; HIST_LENGTHS.len()];
        let mut patterns = 0u64;
        if self.branches > 0 {
            // Accumulate in site-id order so the floating-point sums are
            // independent of map iteration order (profiles must be
            // bit-reproducible across processes).
            let mut sites: Vec<(&u32, &SiteCollector)> = self.sites.iter().collect();
            sites.sort_unstable_by_key(|(id, _)| **id);
            for (_, site) in sites {
                let w = site.observed as f64 / self.branches as f64;
                let f = site.floors();
                for k in 0..HIST_LENGTHS.len() {
                    m[k] += w * f[k];
                }
                patterns += site.tables.last().map_or(0, |t| t.len() as u64);
            }
        }
        BranchProfile {
            branches: self.branches,
            m,
            static_sites: self.sites.len() as u32,
            patterns,
        }
    }
}

/// Predicts the misprediction rate of a tournament predictor described by
/// `config` for a workload with branch profile `profile`.
///
/// The tournament's chooser picks, per branch, the better of the bimodal
/// component (history 0) and the global-history component (history
/// `config.history_bits`); we evaluate both floors and take the minimum,
/// then apply a first-order aliasing correction: when the workload needs
/// more table entries than the predictor has, the excess fraction of
/// accesses degrades toward the history-less floor.
pub fn predict_miss_rate(
    profile: &BranchProfile,
    config: &rppm_trace::BranchPredictorConfig,
) -> f64 {
    if profile.branches == 0 {
        return 0.0;
    }
    let ideal = profile.miss_floor(config.history_bits);
    let entries = config.table_entries() as f64;
    let needed = profile.patterns.max(1) as f64;
    if needed <= entries {
        ideal
    } else {
        let alias_frac = 1.0 - entries / needed;
        let degraded = profile.miss_floor(0).max(ideal);
        ideal + alias_frac * (degraded - ideal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::BranchPredictorConfig;

    fn collect(outcomes: impl IntoIterator<Item = bool>) -> BranchProfile {
        let mut c = EntropyCollector::new();
        for t in outcomes {
            c.record(0, t);
        }
        c.finish()
    }

    #[test]
    fn always_taken_is_perfectly_predictable() {
        let p = collect((0..1000).map(|_| true));
        for k in 0..HIST_LENGTHS.len() {
            assert!(p.m[k] < 1e-9);
        }
        assert_eq!(p.static_sites, 1);
    }

    #[test]
    fn loop_branch_needs_history() {
        // TTTF repeating.
        let p = collect((0..10_000).map(|i| i % 4 != 3));
        assert!(
            (p.miss_floor(0) - 0.25).abs() < 0.01,
            "m0 {}",
            p.miss_floor(0)
        );
        assert!(p.miss_floor(4) < 0.01, "m4 {}", p.miss_floor(4));
    }

    #[test]
    fn bernoulli_half_is_unpredictable() {
        let mut rng = rppm_trace::Rng::new(1);
        let p = collect((0..50_000).map(|_| rng.chance(0.5)));
        for h in [0u32, 4, 12] {
            let m = p.miss_floor(h);
            // Finite-sample conditioning inflates apparent predictability at
            // long histories; 0.40 is a loose floor.
            assert!(m > 0.40, "h={h} m={m}");
        }
    }

    #[test]
    fn biased_bernoulli_floor_matches_minority() {
        let mut rng = rppm_trace::Rng::new(2);
        let p = collect((0..100_000).map(|_| rng.chance(0.9)));
        assert!((p.miss_floor(0) - 0.1).abs() < 0.01, "{}", p.miss_floor(0));
    }

    #[test]
    fn floors_are_monotone_in_history() {
        let mut rng = rppm_trace::Rng::new(3);
        // Mix of a loop and noise.
        let p = collect((0..50_000).map(|i| (i % 5 != 0) ^ rng.chance(0.05)));
        let mut prev = 1.0;
        for h in [0u32, 1, 2, 4, 8, 12] {
            let m = p.miss_floor(h);
            assert!(m <= prev + 1e-9, "floor increased at h={h}");
            prev = m;
        }
    }

    #[test]
    fn per_site_weighting() {
        let mut c = EntropyCollector::new();
        // Site 1: always taken (weight 3/4). Site 2: alternating longer
        // pattern — perfectly predictable with history, 50% without.
        for i in 0..40_000u32 {
            if i % 4 < 3 {
                c.record(1, true);
            } else {
                c.record(2, (i / 4) % 2 == 0);
            }
        }
        let p = c.finish();
        assert_eq!(p.static_sites, 2);
        assert!(p.miss_floor(12) < 0.01);
        let m0 = p.miss_floor(0);
        assert!(m0 > 0.05 && m0 < 0.15, "m0 {m0}");
    }

    #[test]
    fn predict_ideal_when_tables_fit() {
        let p = collect((0..10_000).map(|i| i % 4 != 3));
        let miss = predict_miss_rate(&p, &BranchPredictorConfig::tournament_4kb());
        assert!(miss < 0.01, "miss {miss}");
    }

    #[test]
    fn predict_degrades_under_aliasing() {
        let mut p = collect((0..10_000).map(|i| i % 4 != 3));
        // Pretend the workload exhibits an enormous pattern footprint.
        p.patterns = 10_000_000;
        let small = BranchPredictorConfig {
            size_bytes: 128,
            history_bits: 12,
        };
        let miss = predict_miss_rate(&p, &small);
        assert!(miss > 0.15, "aliased miss {miss}");
    }

    #[test]
    fn empty_profile_predicts_zero() {
        let p = BranchProfile::default();
        assert_eq!(
            predict_miss_rate(&p, &BranchPredictorConfig::tournament_4kb()),
            0.0
        );
        assert_eq!(p.miss_floor(12), 0.0);
    }

    #[test]
    fn merge_weights_by_count() {
        let a = collect((0..1000).map(|_| true)); // floor 0
        let mut rng = rppm_trace::Rng::new(9);
        let b = collect((0..1000).map(|_| rng.chance(0.5))); // floor ~0.5
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.branches, 2000);
        let m0 = merged.m[0];
        assert!((m0 - 0.25).abs() < 0.03, "merged m0 {m0}");
    }

    #[test]
    fn serde_round_trip() {
        let p = collect((0..100).map(|i| i % 2 == 0));
        let json = serde_json::to_string(&p).unwrap();
        let back: BranchProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

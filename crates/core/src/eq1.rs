//! Equation 1: per-epoch active execution time.
//!
//! ```text
//! C = N/Deff                                   (base)
//!   + m_bpred · (c_res + c_fr)                 (branch)
//!   + Σ m_IL_i · c_L(i+1)                      (I-cache)
//!   + m_LLC · c_mem / MLP                      (D-cache)
//! ```
//!
//! All inputs come from the microarchitecture-independent profile; all
//! machine parameters come from [`MachineConfig`]. Three mechanisms mirror
//! the structure of the paper's model:
//!
//! * **Mid-level cache latencies fold into `Deff`.** The profile carries
//!   ILP curves parameterized by load latency; at prediction time the
//!   expected per-load latency (from StatStack's miss rates: L1/L2/L3 hits,
//!   coherence interventions) selects the effective curve. This is why
//!   Equation 1 has no explicit L2/L3 terms. For CPI-stack reporting the
//!   induced slowdown over the nominal-latency curve is attributed to the
//!   `mem_l2`/`mem_l3` components.
//! * **Mispredictions truncate the effective window.** The distance to the
//!   next mispredicted branch bounds the useful instruction window for both
//!   ILP and MLP (speculation cannot proceed past an unresolved mispredicted
//!   branch).
//! * **Branch resolution time is memory-aware.** A mispredicted branch
//!   whose backward slice contains loads resolves only after those loads
//!   complete; the profile records the loads on the critical path feeding
//!   branches, and each contributes its expected cache latency to `c_res`.
//!   DRAM misses consumed this way are removed from the D-cache component
//!   (they overlap, as in Eyerman et al.'s interval analysis).
//!
//! # The split evaluation path
//!
//! The arithmetic downstream of the StatStack queries is shared between the
//! scalar entry points and the batched design-space path
//! ([`crate::prepared`]): [`predict_epoch`] builds the stack-distance models
//! and reads the calibration environment on every call, while a
//! [`crate::PreparedProfile`] computes the same [`RawRates`] once per
//! distinct cache geometry and replays them through the same inner function
//! ([`predict_epoch_rated`]) — the two paths are bit-identical by
//! construction (one arithmetic body, two rate providers).

use rppm_profiler::EpochProfile;
use rppm_statstack::StackDistanceModel;
use rppm_trace::{CpiStack, MachineConfig, OpClass};

/// Prediction for one epoch of one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochPrediction {
    /// Predicted active execution cycles.
    pub cycles: f64,
    /// Component breakdown (sync is always 0 here; it is added by the
    /// symbolic execution).
    pub stack: CpiStack,
    /// Effective dispatch rate used for the base component.
    pub deff: f64,
    /// Predicted mispredicted branches.
    pub mispredicts: f64,
    /// Predicted loads served by DRAM.
    pub dram_misses: f64,
    /// Predicted memory-level parallelism for DRAM misses.
    pub mlp: f64,
}

/// Calibration knobs, hoisted out of the per-epoch hot path.
///
/// The scalar path re-reads the environment on every [`predict_epoch`] call
/// (so ablation harnesses can flip variables between calls); the batched
/// path captures them once per [`crate::PreparedProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knobs {
    /// Path-selection factor for memory-aware branch resolution
    /// (`RPPM_KAPPA`, default 3.0).
    pub kappa: f64,
    /// Effective-MLP utilization factor (`RPPM_MLP_EFF`, default 0.85).
    pub mlp_eff: f64,
    /// MSHR-capacity fraction usable by overlapping misses
    /// (`RPPM_MLP_CAP`, default 0.75).
    pub mlp_cap: f64,
    /// Disable the in-order retirement-exposure term
    /// (`RPPM_NO_EXPOSURE=1`, ablation only).
    pub no_exposure: bool,
    /// Disable the dependence-chain lower bound
    /// (`RPPM_NO_CHAIN_BOUND=1`, ablation only).
    pub no_chain_bound: bool,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            kappa: 3.0,
            mlp_eff: 0.85,
            mlp_cap: 0.75,
            no_exposure: false,
            no_chain_bound: false,
        }
    }
}

impl Knobs {
    /// Reads the calibration environment (`RPPM_KAPPA`, `RPPM_MLP_EFF`,
    /// `RPPM_MLP_CAP`, `RPPM_NO_EXPOSURE`, `RPPM_NO_CHAIN_BOUND`).
    pub fn from_env() -> Self {
        let f = |name: &str, default: f64| -> f64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Knobs {
            kappa: f("RPPM_KAPPA", 3.0),
            mlp_eff: f("RPPM_MLP_EFF", 0.85),
            mlp_cap: f("RPPM_MLP_CAP", 0.75),
            no_exposure: std::env::var("RPPM_NO_EXPOSURE").is_ok_and(|v| v == "1"),
            no_chain_bound: std::env::var("RPPM_NO_CHAIN_BOUND").is_ok_and(|v| v == "1"),
        }
    }
}

/// Raw per-epoch StatStack / branch-model outputs for one configuration.
///
/// These are the *unclamped* model queries; [`predict_epoch_rated`] applies
/// the level-to-level monotonicity clamps (`r2 ≤ r1`, `r3 ≤ r2`) itself so
/// that providers can memoize each query independently of the others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRates {
    /// Private-histogram miss rate at the L1D geometry.
    pub r1: f64,
    /// Private-histogram miss rate at the L2 geometry (unclamped).
    pub r2: f64,
    /// LLC miss rate at the L3 geometry (global histogram for the RPPM
    /// model, private histogram for the isolated MAIN/CRIT variant;
    /// unclamped).
    pub r3: f64,
    /// Instruction-line miss rate at the L1I geometry.
    pub l1i: f64,
    /// Branch-predictor miss rate.
    pub bmiss: f64,
}

/// Source of interpolated ILP/MLP curve evaluations for one epoch.
///
/// Two implementations exist: [`EpochProfile`] itself (recomputes the
/// logarithms of the profiled grid on every call) and the precomputed
/// [`rppm_profiler::EpochCurves`] tables used by the batched path. Both
/// must return bit-identical values for identical inputs.
pub trait CurveSource {
    /// See [`EpochProfile::ilp_at`].
    fn ilp_at(&self, window: u32, load_lat: f64) -> Option<f64>;
    /// See [`EpochProfile::mlp_at`].
    fn mlp_at(&self, window: u32) -> Option<f64>;
}

impl CurveSource for EpochProfile {
    fn ilp_at(&self, window: u32, load_lat: f64) -> Option<f64> {
        EpochProfile::ilp_at(self, window, load_lat)
    }
    fn mlp_at(&self, window: u32) -> Option<f64> {
        EpochProfile::mlp_at(self, window)
    }
}

impl CurveSource for rppm_profiler::EpochCurves {
    fn ilp_at(&self, window: u32, load_lat: f64) -> Option<f64> {
        rppm_profiler::EpochCurves::ilp_at(self, window, load_lat)
    }
    fn mlp_at(&self, window: u32) -> Option<f64> {
        rppm_profiler::EpochCurves::mlp_at(self, window)
    }
}

/// An all-zero prediction for an empty epoch (MLP floor of 1.0).
pub(crate) fn empty_epoch_prediction() -> EpochPrediction {
    EpochPrediction {
        mlp: 1.0,
        ..Default::default()
    }
}

/// Equation 1 downstream of the StatStack/branch-model queries: the shared
/// arithmetic body of the scalar and batched paths.
///
/// `epoch.ops` must be nonzero (callers handle the empty-epoch early
/// return). `curves` supplies the ILP/MLP interpolations and `rates` the
/// raw model queries for this `(epoch, config)` cell; `knobs` carries the
/// calibration environment.
pub fn predict_epoch_rated<C: CurveSource + ?Sized>(
    epoch: &EpochProfile,
    config: &MachineConfig,
    curves: &C,
    rates: RawRates,
    knobs: &Knobs,
) -> EpochPrediction {
    let n = epoch.ops as f64;
    let loads = epoch.loads() as f64;

    // --- Cache miss rates (StatStack, multi-threaded extension). ---
    let r1 = rates.r1;
    let r2 = rates.r2.min(r1);
    // Shared LLC: global (interleaved) reuse distances capture inter-thread
    // interference, positive and negative. Coherence-invalidated reuses are
    // "always miss" in the private histograms but typically hit the shared
    // LLC or a remote cache, so they surface as (r2 - r3) traffic.
    let r3 = rates.r3.min(r2);

    let lat_l1 = OpClass::Load.latency() as f64;
    let lat_l2 = config.l2.latency as f64;
    // L2 misses that stay on chip are served by the LLC or, for
    // coherence-invalidated lines, by a remote private cache (intervention).
    let inval_frac = {
        let t = epoch.private_rd.total();
        if t == 0 {
            0.0
        } else {
            epoch.private_rd.invalidated as f64 / t as f64
        }
    };
    let onchip = (r2 - r3).max(1e-12);
    let remote_share = (inval_frac / onchip).clamp(0.0, 1.0);
    let lat_l3 = config.l3.latency as f64 + remote_share * config.coherence_latency as f64;
    let c_mem = config.l3.latency as f64 + config.mem_latency_cycles();

    // Expected on-chip load latency (DRAM handled separately below).
    let l_eff = lat_l1 + (r1 - r2) * (lat_l2 - lat_l1) + (r2 - r3) * (lat_l3 - lat_l1);

    // --- Branch component (memory-aware resolution). ---
    let mispredicts = rates.bmiss * epoch.branches() as f64;
    // Loads on the critical path feeding a branch each contribute their
    // expected extra latency; a DRAM miss on that path stalls resolution for
    // the full memory latency.
    let extra_per_load =
        (r1 - r2) * (lat_l2 - lat_l1) + (r2 - r3) * (lat_l3 - lat_l1) + r3 * (c_mem - lat_l1);
    // Path-selection factor: the realized critical path to a branch is the
    // *maximum* over many dependence paths, which systematically exceeds
    // the single memory-weighted path evaluated at expected latencies
    // (E[max] > max E). Calibrated once against the reference simulator.
    let c_res = epoch.branch_depth.max(OpClass::Branch.latency() as f64)
        + knobs.kappa * epoch.branch_slice_loads * extra_per_load;
    let branch = mispredicts * (c_res + config.frontend_depth as f64);

    // --- Effective window. Speculation cannot pass an unresolved
    // mispredicted branch, but only *memory-bound* resolutions actually
    // drain the pipeline (short resolutions stall the front-end briefly
    // while the ROB backlog keeps executing). Scale the truncation by the
    // probability that a mispredict's slice chains through DRAM. ---
    let p_long = (epoch.branch_slice_loads * r3).min(1.0);
    let long_mispredicts = mispredicts * p_long;
    let ops_per_drain = if long_mispredicts > 0.5 {
        n / long_mispredicts
    } else {
        f64::INFINITY
    };
    let w_eff = (config.rob_size as f64).min(ops_per_drain).max(8.0) as u32;

    // --- Base: effective dispatch rate at the effective load latency. ---
    let width = config.dispatch_width as f64;
    let ilp_nominal = curves.ilp_at(w_eff, lat_l1).unwrap_or(f64::INFINITY);
    let ilp_eff = curves.ilp_at(w_eff, l_eff).unwrap_or(f64::INFINITY);
    // Functional-unit throughput limit: the tightest ports/mix ratio,
    // grouping classes that share an issue-port pool.
    let mut pool_frac = [0.0f64; rppm_trace::op::NUM_PORT_POOLS];
    let mut pool_ports = [1.0f64; rppm_trace::op::NUM_PORT_POOLS];
    for class in OpClass::ALL {
        pool_frac[class.port_pool()] += epoch.mix_fraction(class);
        pool_ports[class.port_pool()] = config.ports_for(class) as f64;
    }
    let mut fu_limit = f64::INFINITY;
    for (frac, ports) in pool_frac.iter().zip(&pool_ports) {
        if *frac > 0.0 {
            fu_limit = fu_limit.min(ports / frac);
        }
    }
    let deff = width.min(ilp_eff).min(fu_limit).max(0.1);
    let deff_nominal = width.min(ilp_nominal).min(fu_limit).max(0.1);
    let cycles_eff = n / deff;
    let base = n / deff_nominal;
    // Slowdown induced by on-chip load latencies through dependence chains,
    // attributed to the memory components for CPI-stack reporting (split by
    // latency contribution).
    let mid_extra = (cycles_eff - base).max(0.0);
    let w_l2 = (r1 - r2) * (lat_l2 - lat_l1);
    let w_l3 = (r2 - r3) * (lat_l3 - lat_l1);
    let (chain_l2, chain_l3) = if w_l2 + w_l3 > 0.0 {
        (
            mid_extra * w_l2 / (w_l2 + w_l3),
            mid_extra * w_l3 / (w_l2 + w_l3),
        )
    } else {
        (0.0, 0.0)
    };
    // In-order retirement exposure: even fully independent loads stall the
    // window when their latency exceeds what the ROB can buffer
    // (`w_eff/Deff` cycles of run-ahead). Each window containing at least
    // one such load pays the exposure once (its peers overlap under it).
    let loads_per_window = (loads / n) * w_eff as f64;
    let windows = n / w_eff as f64;
    let drain = w_eff as f64 / deff_nominal;
    let expose = |rate: f64, lat: f64| -> f64 {
        let per_window = rate * loads_per_window;
        let exposure = (lat - drain).max(0.0);
        windows * exposure * (1.0 - (-per_window).exp())
    };
    // (RPPM_NO_EXPOSURE=1 disables the retirement-exposure term — ablation
    // harness only.)
    let win_l2 = if knobs.no_exposure {
        0.0
    } else {
        expose(r1 - r2, lat_l2)
    };
    let win_l3 = if knobs.no_exposure {
        0.0
    } else {
        expose(r2 - r3, lat_l3)
    };
    // The chain-induced and retirement-induced stalls overlap; count the
    // larger per level.
    let mem_l2 = chain_l2.max(win_l2);
    let mem_l3 = chain_l3.max(win_l3);

    // --- I-cache component. ---
    let l1i_misses = rates.l1i * epoch.code_fetches as f64;
    let icache = l1i_misses * config.l2.latency as f64;

    // --- D-cache DRAM component with MLP overlap. ---
    let dram_misses = r3 * loads;
    // Misses on mispredicted-branch slices are already paid for in the
    // branch component (the events overlap).
    let dram_in_branch = mispredicts * epoch.branch_slice_loads * r3;
    let dram_eff = (dram_misses - dram_in_branch).max(0.0);
    let p_dram = if loads > 0.0 {
        (dram_misses / loads).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let indep = curves.mlp_at(w_eff).unwrap_or(0.0);
    // Effective MSHR utilization: issue-port and dispatch gaps keep the
    // overlap below the ideal independent-miss count (calibrated once
    // against the reference simulator).
    let mlp =
        (knobs.mlp_eff * (1.0 + indep * p_dram)).clamp(1.0, knobs.mlp_cap * config.mshrs as f64);
    let mem_dram_raw = dram_eff * c_mem / mlp;
    // Misses *independent* of a mispredicted branch's slice still overlap
    // with its resolution stall (the window keeps servicing them while the
    // front-end is squashed). Credit that overlap: up to the branch
    // component's memory portion, scaled by the fraction of window loads
    // that are independent.
    let branch_mem_time = mispredicts * epoch.branch_slice_loads * extra_per_load;
    let f_indep = if loads_per_window > 0.0 {
        (indep / loads_per_window).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let mem_dram = (mem_dram_raw - branch_mem_time * f_indep).max(0.0);

    let mut stack = CpiStack {
        base,
        branch,
        icache,
        mem_l2,
        mem_l3,
        mem_dram,
        sync: 0.0,
    };

    // Chain bound: the epoch can never run faster than its data-dependence
    // critical path evaluated with the *expected* load latency including
    // DRAM misses. Pointer-chasing code (serialized misses spanning window
    // boundaries) is governed by this bound rather than by the additive
    // components; any excess is memory time. (RPPM_NO_CHAIN_BOUND=1
    // disables it — ablation harness only.)
    let l_chain = l_eff + r3 * (c_mem - lat_l1);
    if knobs.no_chain_bound {
        return EpochPrediction {
            cycles: stack.total(),
            stack,
            deff,
            mispredicts,
            dram_misses,
            mlp,
        };
    }
    if let Some(ilp_chain) = curves.ilp_at(w_eff, l_chain) {
        let chain_cycles = n / ilp_chain.min(deff_nominal).max(0.05);
        let total = stack.total();
        if chain_cycles > total {
            stack.mem_dram += chain_cycles - total;
        }
    }

    EpochPrediction {
        cycles: stack.total(),
        stack,
        deff,
        mispredicts,
        dram_misses,
        mlp,
    }
}

/// Predicts the active execution time of one epoch on `config`.
pub fn predict_epoch(epoch: &EpochProfile, config: &MachineConfig) -> EpochPrediction {
    if epoch.ops == 0 {
        return empty_epoch_prediction();
    }
    let priv_model = StackDistanceModel::new(&epoch.private_rd);
    let glob_model = StackDistanceModel::new(&epoch.global_rd);
    let icache_model = StackDistanceModel::new(&epoch.icache_rd);
    let rates = RawRates {
        r1: priv_model.miss_rate_geom(&config.l1d),
        r2: priv_model.miss_rate_geom(&config.l2),
        r3: glob_model.miss_rate_geom(&config.l3),
        l1i: icache_model.miss_rate_geom(&config.l1i),
        bmiss: rppm_branch_model::predict_miss_rate(&epoch.branch, &config.bpred),
    };
    predict_epoch_rated(epoch, config, epoch, rates, &Knobs::from_env())
}

/// Variant used by the MAIN/CRIT baselines and by the original
/// single-threaded model: the thread is modeled in isolation, so the
/// *private* reuse-distance distribution is used for every cache level
/// (no interference, no coherence awareness beyond what profiling embedded
/// in the private histogram).
pub fn predict_epoch_isolated(epoch: &EpochProfile, config: &MachineConfig) -> EpochPrediction {
    if epoch.ops == 0 {
        return empty_epoch_prediction();
    }
    let priv_model = StackDistanceModel::new(&epoch.private_rd);
    let icache_model = StackDistanceModel::new(&epoch.icache_rd);
    let rates = RawRates {
        r1: priv_model.miss_rate_geom(&config.l1d),
        r2: priv_model.miss_rate_geom(&config.l2),
        r3: priv_model.miss_rate_geom(&config.l3),
        l1i: icache_model.miss_rate_geom(&config.l1i),
        bmiss: rppm_branch_model::predict_miss_rate(&epoch.branch, &config.bpred),
    };
    predict_epoch_rated(epoch, config, epoch, rates, &Knobs::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_profiler::profile;
    use rppm_trace::{
        AddressPattern, BlockSpec, BranchPattern, DesignPoint, ProgramBuilder, Region,
    };

    fn single_epoch(spec: BlockSpec) -> EpochProfile {
        let mut b = ProgramBuilder::new("one", 1);
        b.thread(0u32).block(spec);
        let prof = profile(&b.build());
        prof.threads[0].epochs[0].clone()
    }

    #[test]
    fn empty_epoch_predicts_zero() {
        let e = EpochProfile::default();
        let p = predict_epoch(&e, &DesignPoint::Base.config());
        assert_eq!(p.cycles, 0.0);
    }

    #[test]
    fn ilp_limited_code_predicts_low_ipc() {
        let e = single_epoch(BlockSpec::new(50_000, 1).deps(1.0, 1.0).deps2(0.0));
        let p = predict_epoch(&e, &DesignPoint::Base.config());
        let ipc = e.ops as f64 / p.cycles;
        assert!(ipc < 1.5, "serial chain ipc {ipc}");
    }

    #[test]
    fn wide_code_reaches_width() {
        let e = single_epoch(BlockSpec::new(50_000, 2).deps(0.0, 1.0).deps2(0.0));
        let cfg = DesignPoint::Base.config();
        let p = predict_epoch(&e, &cfg);
        let ipc = e.ops as f64 / p.cycles;
        assert!((ipc - cfg.dispatch_width as f64).abs() < 0.5, "ipc {ipc}");
    }

    #[test]
    fn fp_heavy_code_hits_fu_limit() {
        let e = single_epoch(
            BlockSpec::new(50_000, 3)
                .fp(0.5, 0.4)
                .deps(0.0, 1.0)
                .deps2(0.0),
        );
        let cfg = DesignPoint::Base.config(); // 2 FP pipes
        let p = predict_epoch(&e, &cfg);
        // 90% FP through 2 ports: Deff <= 2/0.9 = 2.22.
        assert!(p.deff < 2.4, "deff {}", p.deff);
    }

    #[test]
    fn random_branches_cost_cycles() {
        let spec = |pat| BlockSpec::new(50_000, 4).branches(0.2).branch_pattern(pat);
        let cfg = DesignPoint::Base.config();
        let predictable = predict_epoch(&single_epoch(spec(BranchPattern::loop_every(64))), &cfg);
        let random = predict_epoch(&single_epoch(spec(BranchPattern::bernoulli(0.5))), &cfg);
        assert!(random.stack.branch > 10.0 * predictable.stack.branch.max(1.0));
        assert!(random.mispredicts > 3000.0);
    }

    #[test]
    fn streaming_loads_cost_dram_time() {
        let e = single_epoch(
            BlockSpec::new(50_000, 5)
                .loads(0.3)
                .addr(AddressPattern::stream(Region::new(0, 4 << 20)), 1.0),
        );
        let cfg = DesignPoint::Base.config();
        let p = predict_epoch(&e, &cfg);
        assert!(p.dram_misses > 1000.0);
        assert!(p.stack.mem_dram > 0.0);
        assert!(p.mlp > 1.0, "streaming should overlap misses: {}", p.mlp);
    }

    #[test]
    fn chained_loads_get_no_mlp() {
        let mk = |chain| {
            single_epoch(
                BlockSpec::new(50_000, 6)
                    .loads(0.3)
                    .deps(0.0, 1.0)
                    .load_chain(chain)
                    .addr(AddressPattern::random(Region::new(0, 4 << 20)), 1.0),
            )
        };
        let cfg = DesignPoint::Base.config();
        let indep = predict_epoch(&mk(0.0), &cfg);
        let chained = predict_epoch(&mk(1.0), &cfg);
        assert!(chained.mlp < indep.mlp, "{} vs {}", chained.mlp, indep.mlp);
        assert!(chained.stack.mem_dram > indep.stack.mem_dram);
    }

    #[test]
    fn cache_resident_data_is_cheap() {
        // A long epoch over a tiny working set: only the ~128 cold misses
        // ever reach DRAM, so the memory component amortizes away.
        let e = single_epoch(
            BlockSpec::new(500_000, 7)
                .loads(0.3)
                .addr(AddressPattern::random(Region::new(0, 128)), 1.0),
        );
        let p = predict_epoch(&e, &DesignPoint::Base.config());
        assert!(p.dram_misses < 200.0, "{}", p.dram_misses);
        assert!(p.stack.mem_dram < 0.25 * p.cycles, "{:?}", p.stack);
    }

    #[test]
    fn isolated_variant_ignores_global_hist() {
        let e = single_epoch(
            BlockSpec::new(20_000, 8)
                .loads(0.3)
                .addr(AddressPattern::random(Region::new(0, 1 << 16)), 1.0),
        );
        let cfg = DesignPoint::Base.config();
        let a = predict_epoch_isolated(&e, &cfg);
        // For a single-threaded profile global == private interleaving, so
        // both variants agree.
        let b = predict_epoch(&e, &cfg);
        assert!((a.cycles - b.cycles).abs() / b.cycles < 0.05);
    }

    #[test]
    fn isolated_variant_matches_cloned_global_histogram() {
        // The non-cloning isolated path must be bit-identical to predicting
        // an epoch whose global histogram was replaced by the private one.
        let e = single_epoch(
            BlockSpec::new(20_000, 11)
                .loads(0.3)
                .branches(0.1)
                .addr(AddressPattern::random(Region::new(0, 1 << 18)), 1.0),
        );
        for dp in DesignPoint::ALL {
            let cfg = dp.config();
            let fast = predict_epoch_isolated(&e, &cfg);
            let mut iso = e.clone();
            iso.global_rd = e.private_rd.clone();
            let slow = predict_epoch(&iso, &cfg);
            assert_eq!(fast.cycles.to_bits(), slow.cycles.to_bits(), "{dp}");
            assert_eq!(fast.mlp.to_bits(), slow.mlp.to_bits(), "{dp}");
        }
    }

    #[test]
    fn env_knobs_match_defaults() {
        // Without the RPPM_* variables set, from_env equals the defaults.
        let k = Knobs::from_env();
        assert_eq!(k, Knobs::default());
    }

    #[test]
    fn bigger_rob_extracts_more_mlp() {
        // Partially chained streaming loads: the independent-miss count in
        // the window grows with the ROB, so bigger designs overlap more.
        let e = single_epoch(
            BlockSpec::new(50_000, 20)
                .loads(0.25)
                .deps(0.0, 1.0)
                .load_chain(0.8)
                .addr(AddressPattern::stream(Region::new(0, 4 << 20)), 1.0),
        );
        let small = predict_epoch(&e, &DesignPoint::Smallest.config());
        let big = predict_epoch(&e, &DesignPoint::Biggest.config());
        assert!(
            big.mlp > small.mlp,
            "ROB 288 should overlap more than ROB 32: {} vs {}",
            big.mlp,
            small.mlp
        );
    }

    #[test]
    fn bigger_rob_hides_more_l3_latency() {
        // Working set between L2 and L3 sizes, long enough that cold misses
        // are negligible: loads mostly hit the shared L3.
        let e = single_epoch(
            BlockSpec::new(400_000, 9)
                .loads(0.3)
                .addr(AddressPattern::random(Region::new(0, 20_000)), 1.0),
        );
        let small = predict_epoch(&e, &DesignPoint::Smallest.config());
        let big = predict_epoch(&e, &DesignPoint::Biggest.config());
        // The larger window extracts more parallelism among the L3-latency
        // loads, so less of the epoch is attributed to mem-L3.
        assert!(
            big.stack.mem_l3 < small.stack.mem_l3,
            "big window should hide more: {} vs {}",
            big.stack.mem_l3,
            small.stack.mem_l3
        );
    }
}

//! Error metrics and comparison helpers used across the evaluation.

/// Absolute relative error `|predicted − actual| / actual` (0 when both are
/// zero; infinite when only `actual` is zero).
pub fn abs_pct_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - actual).abs() / actual.abs()
    }
}

/// Signed relative error `(predicted − actual) / actual`.
pub fn signed_pct_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        0.0
    } else {
        (predicted - actual) / actual.abs()
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum of a slice (0 for an empty slice).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_error_basics() {
        assert!((abs_pct_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((abs_pct_error(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(abs_pct_error(0.0, 0.0), 0.0);
        assert!(abs_pct_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn signed_error_keeps_direction() {
        assert!(signed_pct_error(90.0, 100.0) < 0.0);
        assert!(signed_pct_error(110.0, 100.0) > 0.0);
    }

    #[test]
    fn mean_and_max() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(max(&[0.2, 0.9, 0.5]), 0.9);
    }
}

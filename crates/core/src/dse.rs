//! Design-space exploration (the Table V case study).
//!
//! RPPM's purpose is fast design-space pruning: predict all design points
//! from one profile, keep those within a bound of the predicted optimum,
//! then (optionally) simulate only the survivors. `deficiency` measures the
//! cost of trusting the model: how much slower the chosen design is than the
//! true (simulated) optimum.

/// Outcome of a model-guided design choice at one bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DseChoice {
    /// Indices of the design points within the bound of the predicted
    /// optimum (the candidate set simulation would re-evaluate).
    pub candidates: Vec<usize>,
    /// Index of the design chosen: the *simulated*-best candidate.
    pub chosen: usize,
    /// Relative slowdown of the chosen design versus the true optimum
    /// (0 when the model's candidate set contains the true optimum).
    pub deficiency: f64,
}

/// Evaluates a model-guided design choice.
///
/// `predicted[i]` and `simulated[i]` are execution times of design point
/// `i`. `bound` is the relative slack around the predicted optimum
/// (e.g. `0.01` keeps every design predicted within 1% of the best
/// prediction).
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
pub fn evaluate_choice(predicted: &[f64], simulated: &[f64], bound: f64) -> DseChoice {
    assert_eq!(predicted.len(), simulated.len(), "mismatched design spaces");
    assert!(!predicted.is_empty(), "empty design space");

    let best_pred = predicted.iter().cloned().fold(f64::MAX, f64::min);
    let candidates: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, &p)| p <= best_pred * (1.0 + bound) + 1e-12)
        .map(|(i, _)| i)
        .collect();

    let chosen = candidates
        .iter()
        .copied()
        .min_by(|&a, &b| simulated[a].total_cmp(&simulated[b]))
        .expect("candidate set nonempty");

    let true_best = simulated.iter().cloned().fold(f64::MAX, f64::min);
    let deficiency = (simulated[chosen] - true_best) / true_best;

    DseChoice {
        candidates,
        chosen,
        deficiency: deficiency.max(0.0),
    }
}

/// One benchmark's row in Table V: deficiency and candidate count at each
/// bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DseRow {
    /// Benchmark name.
    pub name: String,
    /// `(bound, deficiency, candidate count)` per evaluated bound.
    pub cells: Vec<(f64, f64, usize)>,
}

/// Builds a Table V row for one benchmark.
pub fn dse_row(name: &str, predicted: &[f64], simulated: &[f64], bounds: &[f64]) -> DseRow {
    let cells = bounds
        .iter()
        .map(|&b| {
            let c = evaluate_choice(predicted, simulated, b);
            (b, c.deficiency, c.candidates.len())
        })
        .collect();
    DseRow {
        name: name.to_string(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_has_zero_deficiency() {
        let times = [5.0, 3.0, 4.0];
        let c = evaluate_choice(&times, &times, 0.0);
        assert_eq!(c.chosen, 1);
        assert_eq!(c.deficiency, 0.0);
        assert_eq!(c.candidates, vec![1]);
    }

    #[test]
    fn wrong_model_pays_deficiency() {
        let predicted = [1.0, 2.0, 3.0]; // model loves design 0
        let simulated = [2.0, 1.0, 3.0]; // reality prefers design 1
        let c = evaluate_choice(&predicted, &simulated, 0.0);
        assert_eq!(c.chosen, 0);
        assert!((c.deficiency - 1.0).abs() < 1e-12, "100% slower");
    }

    #[test]
    fn wider_bound_recovers_true_optimum() {
        let predicted = [1.0, 1.009, 3.0];
        let simulated = [2.0, 1.0, 3.0];
        let tight = evaluate_choice(&predicted, &simulated, 0.0);
        assert!(tight.deficiency > 0.9);
        let loose = evaluate_choice(&predicted, &simulated, 0.01);
        assert_eq!(loose.candidates, vec![0, 1]);
        assert_eq!(loose.chosen, 1);
        assert_eq!(loose.deficiency, 0.0);
    }

    #[test]
    fn bound_is_relative() {
        let predicted = [100.0, 104.0, 106.0];
        let simulated = [1.0, 1.0, 1.0];
        let c = evaluate_choice(&predicted, &simulated, 0.05);
        assert_eq!(c.candidates, vec![0, 1]);
    }

    #[test]
    fn row_spans_bounds() {
        let predicted = [1.0, 1.02, 2.0];
        let simulated = [1.1, 1.0, 2.0];
        let row = dse_row("bench", &predicted, &simulated, &[0.0, 0.01, 0.03, 0.05]);
        assert_eq!(row.cells.len(), 4);
        // Deficiency is non-increasing in the bound.
        for w in row.cells.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
            assert!(w[1].2 >= w[0].2);
        }
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        evaluate_choice(&[1.0], &[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_design_space_panics() {
        evaluate_choice(&[], &[], 0.0);
    }
}

//! Design-space exploration: from the Table V case study to million-point
//! sweeps.
//!
//! RPPM's purpose is fast design-space pruning: predict all design points
//! from one profile, keep those within a bound of the predicted optimum,
//! then (optionally) simulate only the survivors. This module supplies the
//! whole pipeline:
//!
//! * [`ConfigSpace`] — a cross-product enumeration of machine
//!   configurations (core family × cache sizes × MSHRs × predictor budget)
//!   that materializes points lazily, so 10⁵–10⁶-point spaces cost nothing
//!   to describe;
//! * [`area_proxy`] / [`power_proxy`] and [`Constraints`] — first-order
//!   resource proxies used as feasibility filters (silicon-accurate
//!   area/power models are out of scope; these are monotone-in-resources
//!   stand-ins, in arbitrary units);
//! * [`sweep`] — the batched evaluation of every feasible point through a
//!   [`PreparedProfile`], fanned out over worker threads, with
//!   Pareto-frontier extraction over (time, area, power);
//! * [`find_best`] — the time-optimum hunt with **early pruning**: points
//!   whose admissible lower bound already exceeds the running optimum are
//!   skipped without a full Equation-1 evaluation;
//! * [`evaluate_choice`] / [`dse_row`] — the paper's deficiency metric:
//!   how much slower the model-chosen design is than the true (simulated)
//!   optimum.

use crate::par::parallel_map;
use crate::prepared::PreparedProfile;
use rppm_trace::{BranchPredictorConfig, CacheGeometry, MachineConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Candidate-set slack: absolute epsilon added to the relative bound so a
/// design predicted *exactly* at the boundary stays a candidate despite
/// floating-point rounding of `best × (1 + bound)`.
const BOUND_EPSILON: f64 = 1e-12;

/// Typed failure of a design-space operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DseError {
    /// The design space has no points at all.
    EmptySpace,
    /// `predicted` and `simulated` describe different design spaces.
    MismatchedLengths {
        /// Number of predicted execution times.
        predicted: usize,
        /// Number of simulated execution times.
        simulated: usize,
    },
    /// The constraint filter eliminated every point of the space.
    NoFeasiblePoint {
        /// Size of the (nonempty) space that was filtered.
        points: usize,
    },
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::EmptySpace => write!(f, "empty design space"),
            DseError::MismatchedLengths {
                predicted,
                simulated,
            } => write!(
                f,
                "mismatched design spaces: {predicted} predicted vs {simulated} simulated points"
            ),
            DseError::NoFeasiblePoint { points } => write!(
                f,
                "no feasible design point: the constraints eliminated all {points} points"
            ),
        }
    }
}

impl std::error::Error for DseError {}

/// Outcome of a model-guided design choice at one bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DseChoice {
    /// Indices of the design points within the bound of the predicted
    /// optimum (the candidate set simulation would re-evaluate).
    pub candidates: Vec<usize>,
    /// Index of the design chosen: the *simulated*-best candidate.
    pub chosen: usize,
    /// Relative slowdown of the chosen design versus the true optimum
    /// (0 when the model's candidate set contains the true optimum).
    pub deficiency: f64,
}

/// Evaluates a model-guided design choice.
///
/// `predicted[i]` and `simulated[i]` are execution times of design point
/// `i`. `bound` is the relative slack around the predicted optimum
/// (e.g. `0.01` keeps every design predicted within 1% of the best
/// prediction). A design predicted exactly on the boundary is a candidate
/// (the comparison carries a `1e-12` absolute epsilon for the rounding of
/// `best × (1 + bound)`).
///
/// # Errors
///
/// [`DseError::EmptySpace`] if the slices are empty,
/// [`DseError::MismatchedLengths`] if they disagree in length.
pub fn evaluate_choice(
    predicted: &[f64],
    simulated: &[f64],
    bound: f64,
) -> Result<DseChoice, DseError> {
    if predicted.len() != simulated.len() {
        return Err(DseError::MismatchedLengths {
            predicted: predicted.len(),
            simulated: simulated.len(),
        });
    }
    if predicted.is_empty() {
        return Err(DseError::EmptySpace);
    }

    let best_pred = predicted.iter().cloned().fold(f64::MAX, f64::min);
    let candidates: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, &p)| p <= best_pred * (1.0 + bound) + BOUND_EPSILON)
        .map(|(i, _)| i)
        .collect();

    let chosen = candidates
        .iter()
        .copied()
        .min_by(|&a, &b| simulated[a].total_cmp(&simulated[b]))
        .expect("candidate set nonempty");

    let true_best = simulated.iter().cloned().fold(f64::MAX, f64::min);
    let deficiency = (simulated[chosen] - true_best) / true_best;

    Ok(DseChoice {
        candidates,
        chosen,
        deficiency: deficiency.max(0.0),
    })
}

/// One benchmark's row in Table V: deficiency and candidate count at each
/// bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DseRow {
    /// Benchmark name.
    pub name: String,
    /// `(bound, deficiency, candidate count)` per evaluated bound.
    pub cells: Vec<(f64, f64, usize)>,
}

/// Builds a Table V row for one benchmark.
///
/// # Errors
///
/// Propagates [`evaluate_choice`]'s errors.
pub fn dse_row(
    name: &str,
    predicted: &[f64],
    simulated: &[f64],
    bounds: &[f64],
) -> Result<DseRow, DseError> {
    let cells = bounds
        .iter()
        .map(|&b| {
            evaluate_choice(predicted, simulated, b).map(|c| (b, c.deficiency, c.candidates.len()))
        })
        .collect::<Result<_, _>>()?;
    Ok(DseRow {
        name: name.to_string(),
        cells,
    })
}

/// One value of the core axis: frequency, pipeline width and window size
/// vary together (the issue queue and functional-unit mix are derived from
/// the width the same way the Table IV design points derive them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreFamily {
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Dispatch width in micro-ops per cycle.
    pub width: u32,
    /// Reorder-buffer capacity in micro-ops.
    pub rob: u32,
}

/// A cross-product design space over a base [`MachineConfig`].
///
/// Points are enumerated lazily by mixed-radix index decoding
/// ([`ConfigSpace::config`]), so describing a 10⁵-point space allocates a
/// handful of axis vectors, never 10⁵ configurations. Axis values replace
/// the corresponding base-configuration fields; every other parameter is
/// inherited from the base.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    base: MachineConfig,
    /// Core-family axis (frequency × width × ROB, jointly).
    pub cores: Vec<CoreFamily>,
    /// L1 capacity axis in KiB (applied to both L1I and L1D).
    pub l1_kb: Vec<u32>,
    /// L2 capacity axis in KiB.
    pub l2_kb: Vec<u32>,
    /// L3 capacity axis in MiB.
    pub l3_mb: Vec<u32>,
    /// MSHR-count axis.
    pub mshrs: Vec<u32>,
    /// Branch-predictor budget axis in KiB.
    pub bpred_kb: Vec<u32>,
}

impl ConfigSpace {
    /// A single-point space equal to `base` (every axis has one value).
    /// Any [`MachineConfig`] works — a Table IV preset, a builder product,
    /// or a parsed `.machine` file.
    pub fn single(base: MachineConfig) -> Self {
        ConfigSpace {
            cores: vec![CoreFamily {
                freq_ghz: base.freq_ghz,
                width: base.dispatch_width,
                rob: base.rob_size,
            }],
            l1_kb: vec![(base.l1d.size_bytes >> 10) as u32],
            l2_kb: vec![(base.l2.size_bytes >> 10) as u32],
            l3_mb: vec![(base.l3.size_bytes >> 20) as u32],
            mshrs: vec![base.mshrs],
            bpred_kb: vec![base.bpred.size_bytes >> 10],
            base,
        }
    }

    /// Renamed to [`ConfigSpace::single`].
    #[deprecated(since = "0.10.0", note = "renamed to ConfigSpace::single")]
    pub fn point(base: MachineConfig) -> Self {
        Self::single(base)
    }

    /// The default exploration space of `rppm dse` around the Table IV base
    /// configuration; see [`ConfigSpace::default_space_from`].
    pub fn default_space() -> Self {
        Self::default_space_from(rppm_trace::DesignPoint::Base.config())
    }

    /// The default exploration space of `rppm dse` around an arbitrary base
    /// configuration: the five Table IV core sizings crossed with six
    /// frequencies (decoupled, unlike the constant-peak Table IV line), six
    /// L1/L2 capacities, five L3 capacities, five MSHR counts and four
    /// predictor budgets — 108 000 points. Parameters without an axis
    /// (core count, latencies, associativities, ...) come from `base`.
    pub fn default_space_from(base: MachineConfig) -> Self {
        let mut cores = Vec::new();
        for &(width, rob) in &[(2u32, 32u32), (3, 72), (4, 128), (5, 200), (6, 288)] {
            for &freq_ghz in &[1.66, 2.0, 2.5, 3.0, 3.33, 5.0] {
                cores.push(CoreFamily {
                    freq_ghz,
                    width,
                    rob,
                });
            }
        }
        ConfigSpace {
            base,
            cores,
            l1_kb: vec![8, 16, 32, 64, 128, 256],
            l2_kb: vec![128, 256, 512, 1024, 2048, 4096],
            l3_mb: vec![2, 4, 8, 16, 32],
            mshrs: vec![4, 8, 12, 16, 24],
            bpred_kb: vec![2, 4, 8, 16],
        }
    }

    /// The fixed 12-point space of the `dse` golden report around the
    /// Table IV base configuration; see [`ConfigSpace::tiny_from`].
    pub fn tiny() -> Self {
        Self::tiny_from(rppm_trace::DesignPoint::Base.config())
    }

    /// The fixed 12-point space of the `dse` golden report around an
    /// arbitrary base: three Table IV core sizings × two L3 capacities ×
    /// two MSHR counts. Small enough to simulate every point for
    /// ground-truth deficiency.
    pub fn tiny_from(base: MachineConfig) -> Self {
        ConfigSpace {
            base,
            cores: vec![
                CoreFamily {
                    freq_ghz: 5.0,
                    width: 2,
                    rob: 32,
                },
                CoreFamily {
                    freq_ghz: 2.5,
                    width: 4,
                    rob: 128,
                },
                CoreFamily {
                    freq_ghz: 1.66,
                    width: 6,
                    rob: 288,
                },
            ],
            l1_kb: vec![32],
            l2_kb: vec![256],
            l3_mb: vec![4, 8],
            mshrs: vec![8, 16],
            bpred_kb: vec![4],
        }
    }

    /// The base configuration axis values are applied onto.
    pub fn base(&self) -> &MachineConfig {
        &self.base
    }

    /// Number of points in the space (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.cores.len()
            * self.l1_kb.len()
            * self.l2_kb.len()
            * self.l3_mb.len()
            * self.mshrs.len()
            * self.bpred_kb.len()
    }

    /// Whether any axis is empty (making the space empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes point `i` (mixed-radix decoding, `i < len()`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn config(&self, i: usize) -> MachineConfig {
        assert!(i < self.len(), "design-point index out of range");
        let mut rest = i;
        let mut take = |n: usize| {
            let k = rest % n;
            rest /= n;
            k
        };
        let bpred_kb = self.bpred_kb[take(self.bpred_kb.len())];
        let mshrs = self.mshrs[take(self.mshrs.len())];
        let l3_mb = self.l3_mb[take(self.l3_mb.len())];
        let l2_kb = self.l2_kb[take(self.l2_kb.len())];
        let l1_kb = self.l1_kb[take(self.l1_kb.len())];
        let core = self.cores[take(self.cores.len())];

        let mut c = self.base.clone();
        c.name = format!("dse-{i}");
        c.freq_ghz = core.freq_ghz;
        c.dispatch_width = core.width;
        c.rob_size = core.rob;
        c.issue_queue = (core.rob / 2).max(core.width);
        c.fu = rppm_trace::FuConfig::scaled(core.width);
        c.l1i = CacheGeometry::new(
            u64::from(l1_kb) << 10,
            self.base.l1i.assoc,
            self.base.l1i.line_bytes,
            self.base.l1i.latency,
        );
        c.l1d = CacheGeometry::new(
            u64::from(l1_kb) << 10,
            self.base.l1d.assoc,
            self.base.l1d.line_bytes,
            self.base.l1d.latency,
        );
        c.l2 = CacheGeometry::new(
            u64::from(l2_kb) << 10,
            self.base.l2.assoc,
            self.base.l2.line_bytes,
            self.base.l2.latency,
        );
        c.l3 = CacheGeometry::new(
            u64::from(l3_mb) << 20,
            self.base.l3.assoc,
            self.base.l3.line_bytes,
            self.base.l3.latency,
        );
        c.mshrs = mshrs;
        c.bpred = BranchPredictorConfig {
            size_bytes: bpred_kb << 10,
            history_bits: self.base.bpred.history_bits,
        };
        c
    }
}

/// First-order area proxy in arbitrary units: quadratic in pipeline width
/// (bypass networks), linear in window structures and cache capacities,
/// with the shared L3 counted once. **Not** a silicon area model — a
/// monotone-in-resources stand-in for constraint filtering.
pub fn area_proxy(c: &MachineConfig) -> f64 {
    let window = 0.6 * (c.dispatch_width as f64).powi(2)
        + c.rob_size as f64 / 16.0
        + c.issue_queue as f64 / 16.0
        + 0.2 * c.mshrs as f64
        + c.bpred.size_bytes as f64 / 4096.0;
    let l1 = (c.l1i.size_bytes + c.l1d.size_bytes) as f64 / (32.0 * 1024.0);
    let l2 = c.l2.size_bytes as f64 / (128.0 * 1024.0);
    let l3 = c.l3.size_bytes as f64 / (1024.0 * 1024.0);
    c.cores as f64 * (window + l1 + l2) + l3
}

/// First-order power proxy in arbitrary units: dynamic power scales with
/// frequency and superlinearly with width, plus a leakage term
/// proportional to [`area_proxy`]. Same caveat: a filter, not a model.
pub fn power_proxy(c: &MachineConfig) -> f64 {
    let dynamic = c.freq_ghz
        * ((c.dispatch_width as f64).powf(1.5) + c.rob_size as f64 / 64.0 + 0.05 * c.mshrs as f64);
    c.cores as f64 * dynamic + 0.1 * area_proxy(c)
}

/// Feasibility constraints over the resource proxies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Constraints {
    /// Maximum admissible [`area_proxy`] value.
    pub max_area: Option<f64>,
    /// Maximum admissible [`power_proxy`] value.
    pub max_power: Option<f64>,
}

impl Constraints {
    /// No constraints: every point is feasible.
    pub fn none() -> Self {
        Constraints::default()
    }

    /// Whether a point with the given proxy values is feasible.
    pub fn admits(&self, area: f64, power: f64) -> bool {
        self.max_area.is_none_or(|a| area <= a) && self.max_power.is_none_or(|p| power <= p)
    }
}

/// One evaluated design point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsePoint {
    /// Index into the [`ConfigSpace`] ([`ConfigSpace::config`] rebuilds
    /// the configuration).
    pub index: usize,
    /// Predicted execution time in seconds.
    pub seconds: f64,
    /// [`area_proxy`] value.
    pub area: f64,
    /// [`power_proxy`] value.
    pub power: f64,
}

/// `a` Pareto-dominates `b` over (seconds, area, power): no worse in every
/// objective, strictly better in at least one.
fn dominates(a: &DsePoint, b: &DsePoint) -> bool {
    a.seconds <= b.seconds
        && a.area <= b.area
        && a.power <= b.power
        && (a.seconds < b.seconds || a.area < b.area || a.power < b.power)
}

/// Extracts the Pareto frontier of `points` over (seconds, area, power),
/// minimizing all three. The result is sorted by predicted time. Exact
/// duplicates (identical in all three objectives) are all kept: neither
/// strictly dominates the other.
pub fn pareto_frontier(points: &[DsePoint]) -> Vec<DsePoint> {
    let mut sorted: Vec<&DsePoint> = points.iter().collect();
    // Sorting by the objective triple guarantees any dominator of a point
    // precedes it, so one forward pass suffices.
    sorted.sort_by(|a, b| {
        a.seconds
            .total_cmp(&b.seconds)
            .then(a.area.total_cmp(&b.area))
            .then(a.power.total_cmp(&b.power))
            .then(a.index.cmp(&b.index))
    });
    let mut frontier: Vec<DsePoint> = Vec::new();
    for p in sorted {
        if !frontier.iter().any(|q| dominates(q, p)) {
            frontier.push(*p);
        }
    }
    frontier
}

/// Result of a full design-space sweep.
#[derive(Debug, Clone)]
pub struct DseSweep {
    /// Size of the enumerated space.
    pub points: usize,
    /// Points passing the constraint filter (all of them were evaluated).
    pub feasible: usize,
    /// The predicted-time optimum among feasible points (first index on
    /// ties).
    pub best: DsePoint,
    /// Pareto frontier over (time, area, power), sorted by time.
    pub frontier: Vec<DsePoint>,
    /// `(bound, candidate count)` per requested bound: feasible points
    /// predicted within `bound` of the optimum (the set simulation would
    /// re-evaluate; same epsilon rule as [`evaluate_choice`]).
    pub candidates: Vec<(f64, usize)>,
}

/// Evaluates every feasible point of `space` through `prep`'s batched
/// evaluator, fanned out over `jobs` worker threads (each worker owns one
/// [`crate::BatchedEq1`]; results are deterministic and independent of the
/// worker count). Returns the optimum, the Pareto frontier and the
/// candidate counts at each of `bounds`.
///
/// # Errors
///
/// [`DseError::EmptySpace`] if the space has no points,
/// [`DseError::NoFeasiblePoint`] if the constraints eliminate all of them.
pub fn sweep(
    prep: &PreparedProfile,
    space: &ConfigSpace,
    constraints: &Constraints,
    bounds: &[f64],
    jobs: usize,
) -> Result<DseSweep, DseError> {
    let n = space.len();
    if n == 0 {
        return Err(DseError::EmptySpace);
    }
    let jobs = jobs.clamp(1, n);
    let chunk = n.div_ceil(jobs);
    let per_worker: Vec<Vec<DsePoint>> = parallel_map(jobs, jobs, |w| {
        let mut batch = prep.batched();
        let mut out = Vec::new();
        for index in (w * chunk)..((w + 1) * chunk).min(n) {
            let config = space.config(index);
            let area = area_proxy(&config);
            let power = power_proxy(&config);
            if !constraints.admits(area, power) {
                continue;
            }
            let cycles = batch.eval(&config);
            out.push(DsePoint {
                index,
                seconds: config.cycles_to_seconds(cycles),
                area,
                power,
            });
        }
        out
    });
    let evaluated: Vec<DsePoint> = per_worker.concat();
    summarize(n, evaluated, bounds)
}

fn summarize(
    points: usize,
    evaluated: Vec<DsePoint>,
    bounds: &[f64],
) -> Result<DseSweep, DseError> {
    if evaluated.is_empty() {
        return Err(DseError::NoFeasiblePoint { points });
    }
    let best = *evaluated
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds).then(a.index.cmp(&b.index)))
        .expect("nonempty");
    let candidates = bounds
        .iter()
        .map(|&b| {
            let limit = best.seconds * (1.0 + b) + BOUND_EPSILON;
            (b, evaluated.iter().filter(|p| p.seconds <= limit).count())
        })
        .collect();
    let frontier = pareto_frontier(&evaluated);
    Ok(DseSweep {
        points,
        feasible: evaluated.len(),
        best,
        frontier,
        candidates,
    })
}

/// Result of a pruned optimum hunt ([`find_best`]).
#[derive(Debug, Clone, Copy)]
pub struct DseBest {
    /// Size of the enumerated space.
    pub points: usize,
    /// Points passing the constraint filter.
    pub feasible: usize,
    /// Feasible points fully evaluated (the rest were pruned).
    pub pruned: usize,
    /// The predicted-time optimum (identical to [`sweep`]'s: pruning never
    /// discards a potential optimum or bound-candidate).
    pub best: DsePoint,
    /// Feasible points predicted within `bound` of the optimum.
    pub candidates: usize,
    /// The bound the hunt preserved candidates for.
    pub bound: f64,
}

/// Finds the predicted-time optimum with **early pruning against a running
/// optimum**: a feasible point whose admissible lower bound (peak
/// throughput over the heaviest thread's operation count — per-epoch time
/// can never beat `ops / dispatch_width` cycles) already exceeds
/// `(1 + bound) ×` the best time seen so far is skipped without a full
/// evaluation. The returned optimum and candidate count are identical to
/// an unpruned [`sweep`] over the same space: only points that can be
/// neither the optimum nor a bound-candidate are pruned. The *amount*
/// pruned depends on evaluation order — with `jobs > 1` it varies run to
/// run; `jobs == 1` is deterministic.
///
/// # Errors
///
/// Same conditions as [`sweep`].
pub fn find_best(
    prep: &PreparedProfile,
    space: &ConfigSpace,
    constraints: &Constraints,
    bound: f64,
    jobs: usize,
) -> Result<DseBest, DseError> {
    let n = space.len();
    if n == 0 {
        return Err(DseError::EmptySpace);
    }
    // Admissible numerator: the heaviest thread's operation count. Total
    // time is at least that thread's active time, and every epoch needs at
    // least ops / dispatch_width cycles (Deff ≤ width).
    let heaviest_ops = prep
        .profile()
        .threads
        .iter()
        .map(|t| t.epochs.iter().map(|e| e.ops).sum::<u64>())
        .max()
        .unwrap_or(0) as f64;
    // Running optimum in seconds, shared across workers. For positive
    // floats the bit pattern is order-preserving as u64, so a fetch_min on
    // the bits is a fetch_min on the values.
    let running = AtomicU64::new(f64::INFINITY.to_bits());
    let jobs = jobs.clamp(1, n);
    let chunk = n.div_ceil(jobs);
    let per_worker: Vec<(Vec<DsePoint>, usize, usize)> = parallel_map(jobs, jobs, |w| {
        let mut batch = prep.batched();
        let mut out = Vec::new();
        let mut feasible = 0usize;
        let mut pruned = 0usize;
        for index in (w * chunk)..((w + 1) * chunk).min(n) {
            let config = space.config(index);
            let area = area_proxy(&config);
            let power = power_proxy(&config);
            if !constraints.admits(area, power) {
                continue;
            }
            feasible += 1;
            let current = f64::from_bits(running.load(Ordering::Relaxed));
            let lower = heaviest_ops / config.peak_ops_per_second();
            if lower > current * (1.0 + bound) + BOUND_EPSILON {
                pruned += 1;
                continue;
            }
            let seconds = config.cycles_to_seconds(batch.eval(&config));
            running.fetch_min(seconds.to_bits(), Ordering::Relaxed);
            out.push(DsePoint {
                index,
                seconds,
                area,
                power,
            });
        }
        (out, feasible, pruned)
    });
    let feasible: usize = per_worker.iter().map(|(_, f, _)| f).sum();
    let pruned: usize = per_worker.iter().map(|(_, _, p)| p).sum();
    let evaluated: Vec<DsePoint> = per_worker.into_iter().flat_map(|(v, _, _)| v).collect();
    if evaluated.is_empty() {
        return Err(DseError::NoFeasiblePoint { points: n });
    }
    let best = *evaluated
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds).then(a.index.cmp(&b.index)))
        .expect("nonempty");
    let limit = best.seconds * (1.0 + bound) + BOUND_EPSILON;
    let candidates = evaluated.iter().filter(|p| p.seconds <= limit).count();
    Ok(DseBest {
        points: n,
        feasible,
        pruned,
        best,
        candidates,
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rppm_profiler::profile;
    use rppm_trace::{BlockSpec, DesignPoint, ProgramBuilder};
    use std::sync::Arc;

    fn prepared() -> PreparedProfile {
        let mut b = ProgramBuilder::new("dse-test", 2);
        b.spawn_workers();
        b.thread(1u32)
            .block(BlockSpec::new(20_000, 1).loads(0.2).deps(0.3, 4.0));
        b.join_workers();
        PreparedProfile::new(Arc::new(profile(&b.build())))
    }

    fn small_space() -> ConfigSpace {
        let mut s = ConfigSpace::tiny();
        s.mshrs = vec![8];
        s // 3 cores × 2 l3 = 6 points
    }

    #[test]
    fn perfect_model_has_zero_deficiency() {
        let times = [5.0, 3.0, 4.0];
        let c = evaluate_choice(&times, &times, 0.0).unwrap();
        assert_eq!(c.chosen, 1);
        assert_eq!(c.deficiency, 0.0);
        assert_eq!(c.candidates, vec![1]);
    }

    #[test]
    fn wrong_model_pays_deficiency() {
        let predicted = [1.0, 2.0, 3.0]; // model loves design 0
        let simulated = [2.0, 1.0, 3.0]; // reality prefers design 1
        let c = evaluate_choice(&predicted, &simulated, 0.0).unwrap();
        assert_eq!(c.chosen, 0);
        assert!((c.deficiency - 1.0).abs() < 1e-12, "100% slower");
    }

    #[test]
    fn wider_bound_recovers_true_optimum() {
        let predicted = [1.0, 1.009, 3.0];
        let simulated = [2.0, 1.0, 3.0];
        let tight = evaluate_choice(&predicted, &simulated, 0.0).unwrap();
        assert!(tight.deficiency > 0.9);
        let loose = evaluate_choice(&predicted, &simulated, 0.01).unwrap();
        assert_eq!(loose.candidates, vec![0, 1]);
        assert_eq!(loose.chosen, 1);
        assert_eq!(loose.deficiency, 0.0);
    }

    #[test]
    fn bound_is_relative() {
        let predicted = [100.0, 104.0, 106.0];
        let simulated = [1.0, 1.0, 1.0];
        let c = evaluate_choice(&predicted, &simulated, 0.05).unwrap();
        assert_eq!(c.candidates, vec![0, 1]);
    }

    #[test]
    fn boundary_tie_is_a_candidate() {
        // A design predicted at exactly best × (1 + bound) stays in the
        // candidate set even when the product rounds below the exact value:
        // the 1e-12 epsilon absorbs one ulp of rounding.
        let best = 1.0;
        let bound = 0.03;
        let exactly_on = best * (1.0 + bound);
        let predicted = [best, exactly_on, exactly_on + 1e-9];
        let simulated = [3.0, 1.0, 0.5];
        let c = evaluate_choice(&predicted, &simulated, bound).unwrap();
        assert_eq!(c.candidates, vec![0, 1], "boundary point included");
        assert_eq!(c.chosen, 1);
        // Just past the epsilon: excluded.
        let c = evaluate_choice(&[best, exactly_on + 1e-9], &[1.0, 0.5], bound).unwrap();
        assert_eq!(c.candidates, vec![0]);
    }

    #[test]
    fn row_spans_bounds() {
        let predicted = [1.0, 1.02, 2.0];
        let simulated = [1.1, 1.0, 2.0];
        let row = dse_row("bench", &predicted, &simulated, &[0.0, 0.01, 0.03, 0.05]).unwrap();
        assert_eq!(row.cells.len(), 4);
        // Deficiency is non-increasing in the bound.
        for w in row.cells.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
            assert!(w[1].2 >= w[0].2);
        }
    }

    #[test]
    fn mismatched_lengths_are_a_typed_error() {
        assert_eq!(
            evaluate_choice(&[1.0], &[1.0, 2.0], 0.0),
            Err(DseError::MismatchedLengths {
                predicted: 1,
                simulated: 2
            })
        );
    }

    #[test]
    fn empty_design_space_is_a_typed_error() {
        assert_eq!(evaluate_choice(&[], &[], 0.0), Err(DseError::EmptySpace));
        let err = evaluate_choice(&[], &[], 0.0).unwrap_err();
        assert!(err.to_string().contains("empty design space"));
    }

    #[test]
    #[allow(deprecated)]
    fn single_point_space_wraps_any_config() {
        let base = MachineConfig::builder("custom")
            .dispatch_width(3)
            .rob_size(72)
            .issue_queue(36)
            .build()
            .expect("valid");
        let s = ConfigSpace::single(base.clone());
        assert_eq!(s.len(), 1);
        let c = s.config(0);
        assert_eq!(c.dispatch_width, 3);
        assert_eq!(c.rob_size, 72);
        assert!(c.validate().is_ok());
        // The deprecated alias behaves identically.
        assert_eq!(ConfigSpace::point(base).config(0), c);
    }

    #[test]
    fn spaces_inherit_an_arbitrary_base() {
        let mut base = DesignPoint::Base.config();
        base.cores = 8;
        base.mem_latency_ns = 120.0;
        for space in [
            ConfigSpace::tiny_from(base.clone()),
            ConfigSpace::default_space_from(base.clone()),
        ] {
            assert_eq!(space.base(), &base);
            let c = space.config(0);
            assert_eq!(c.cores, 8, "axis-free parameters come from the base");
            assert_eq!(c.mem_latency_ns, 120.0);
        }
    }

    #[test]
    fn default_space_has_at_least_1e5_points() {
        let s = ConfigSpace::default_space();
        assert!(s.len() >= 100_000, "{} points", s.len());
    }

    #[test]
    fn every_point_of_the_small_spaces_validates() {
        for space in [ConfigSpace::tiny(), small_space()] {
            for i in 0..space.len() {
                let c = space.config(i);
                assert!(c.validate().is_ok(), "point {i}: {:?}", c.validate());
            }
        }
        // Spot-check the big space (all corners + a stride).
        let s = ConfigSpace::default_space();
        for i in (0..s.len()).step_by(7919).chain([0, s.len() - 1]) {
            assert!(s.config(i).validate().is_ok(), "point {i}");
        }
    }

    #[test]
    fn config_decoding_round_trips_every_axis_value() {
        let s = small_space();
        let mut names = std::collections::HashSet::new();
        let mut widths = std::collections::HashSet::new();
        let mut l3s = std::collections::HashSet::new();
        for i in 0..s.len() {
            let c = s.config(i);
            names.insert(c.name.clone());
            widths.insert(c.dispatch_width);
            l3s.insert(c.l3.size_bytes);
        }
        assert_eq!(names.len(), s.len(), "every point distinct");
        assert_eq!(widths.len(), s.cores.len());
        assert_eq!(l3s.len(), s.l3_mb.len());
    }

    #[test]
    fn proxies_grow_with_resources() {
        let small = DesignPoint::Smallest.config();
        let big = DesignPoint::Biggest.config();
        assert!(area_proxy(&big) > area_proxy(&small));
        // Power: the small design runs at 5 GHz vs 1.66 GHz, so compare
        // same-frequency variants instead.
        let mut big_at_5 = big.clone();
        big_at_5.freq_ghz = 5.0;
        assert!(power_proxy(&big_at_5) > power_proxy(&small));
    }

    #[test]
    fn sweep_matches_scalar_predictions_and_finds_optimum() {
        let prep = prepared();
        let space = small_space();
        let out = sweep(&prep, &space, &Constraints::none(), &[0.0, 0.05], 2).unwrap();
        assert_eq!(out.points, space.len());
        assert_eq!(out.feasible, space.len());
        // The best point's time matches the scalar prediction of the same
        // configuration bit for bit.
        let cfg = space.config(out.best.index);
        let scalar = crate::predict(prep.profile(), &cfg);
        assert_eq!(out.best.seconds.to_bits(), scalar.total_seconds.to_bits());
        // Candidate counts are monotone in the bound and include the best.
        assert!(out.candidates[0].1 >= 1);
        assert!(out.candidates[1].1 >= out.candidates[0].1);
    }

    #[test]
    fn constraints_filter_and_can_empty_the_space() {
        let prep = prepared();
        let space = small_space();
        let unconstrained = sweep(&prep, &space, &Constraints::none(), &[], 1).unwrap();
        let tight = Constraints {
            max_area: Some(area_proxy(&space.config(unconstrained.best.index)) - 1.0),
            max_power: None,
        };
        match sweep(&prep, &space, &tight, &[], 1) {
            Ok(s) => assert!(s.feasible < space.len(), "filter removed something"),
            Err(DseError::NoFeasiblePoint { points }) => assert_eq!(points, space.len()),
            Err(e) => panic!("unexpected error {e}"),
        }
        let impossible = Constraints {
            max_area: Some(-1.0),
            max_power: None,
        };
        assert_eq!(
            sweep(&prep, &space, &impossible, &[], 1).unwrap_err(),
            DseError::NoFeasiblePoint {
                points: space.len()
            }
        );
    }

    #[test]
    fn find_best_agrees_with_sweep_and_prunes_soundly() {
        let prep = prepared();
        // A space with genuinely different peak throughputs so the lower
        // bound can prune: the fast-wide family enumerates first (the core
        // axis varies slowest), seeding the running optimum the slow-narrow
        // family's lower bound cannot beat.
        let mut space = small_space();
        space.cores = vec![
            CoreFamily {
                freq_ghz: 5.0,
                width: 6,
                rob: 288,
            },
            CoreFamily {
                freq_ghz: 0.5,
                width: 2,
                rob: 64,
            },
        ];
        for bound in [0.0, 0.05] {
            let full = sweep(&prep, &space, &Constraints::none(), &[bound], 1).unwrap();
            let fast = find_best(&prep, &space, &Constraints::none(), bound, 1).unwrap();
            assert_eq!(fast.best.index, full.best.index);
            assert_eq!(fast.best.seconds.to_bits(), full.best.seconds.to_bits());
            assert_eq!(fast.candidates, full.candidates[0].1, "bound {bound}");
            assert_eq!(fast.feasible, full.feasible);
        }
        let fast = find_best(&prep, &space, &Constraints::none(), 0.0, 1).unwrap();
        assert!(fast.pruned > 0, "10x peak gap should prune");
    }

    #[test]
    fn frontier_on_known_points() {
        let p = |index, seconds, area, power| DsePoint {
            index,
            seconds,
            area,
            power,
        };
        let pts = [
            p(0, 1.0, 10.0, 10.0), // fastest
            p(1, 2.0, 5.0, 10.0),  // cheaper area
            p(2, 3.0, 5.0, 10.0),  // dominated by 1
            p(3, 2.5, 10.0, 4.0),  // cheapest power
            p(4, 4.0, 20.0, 20.0), // dominated by everything
        ];
        let f = pareto_frontier(&pts);
        let idx: Vec<usize> = f.iter().map(|q| q.index).collect();
        assert_eq!(idx, vec![0, 1, 3]);
        // Sorted by seconds.
        for w in f.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
    }

    #[test]
    fn duplicate_points_both_stay_on_frontier() {
        let p = DsePoint {
            index: 0,
            seconds: 1.0,
            area: 2.0,
            power: 3.0,
        };
        let q = DsePoint { index: 1, ..p };
        let f = pareto_frontier(&[p, q]);
        assert_eq!(f.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn frontier_dominance_invariants(
            raw in proptest::collection::vec((0.1f64..100.0, 0.1f64..100.0, 0.1f64..100.0), 1..60)
        ) {
            let pts: Vec<DsePoint> = raw
                .iter()
                .enumerate()
                .map(|(index, &(seconds, area, power))| DsePoint { index, seconds, area, power })
                .collect();
            let frontier = pareto_frontier(&pts);
            prop_assert!(!frontier.is_empty());
            // No frontier point is dominated by any point of the space.
            for f in &frontier {
                for p in &pts {
                    prop_assert!(!dominates(p, f), "{p:?} dominates frontier {f:?}");
                }
            }
            // Every dropped point is dominated by some frontier point.
            for p in &pts {
                if !frontier.iter().any(|f| f.index == p.index) {
                    prop_assert!(
                        frontier.iter().any(|f| dominates(f, p)),
                        "dropped {p:?} undominated"
                    );
                }
            }
        }

        #[test]
        fn candidate_set_respects_the_bound(
            times in proptest::collection::vec(0.1f64..10.0, 1..30),
            bound in 0.0f64..0.2,
        ) {
            let c = evaluate_choice(&times, &times, bound).unwrap();
            let best = times.iter().cloned().fold(f64::MAX, f64::min);
            for (i, &t) in times.iter().enumerate() {
                let inside = t <= best * (1.0 + bound) + 1e-12;
                prop_assert_eq!(c.candidates.contains(&i), inside, "point {}", i);
            }
            // Self-evaluation: deficiency 0 (candidates contain the true optimum).
            prop_assert_eq!(c.deficiency, 0.0);
        }
    }
}

//! The precompute/evaluate split: profile-side work hoisted out of the
//! per-configuration loop.
//!
//! A scalar [`predict`](crate::predict()) call rebuilds three
//! [`StackDistanceModel`]s per epoch, re-reads the calibration environment
//! and re-derives the ILP/MLP interpolation tables on every invocation —
//! irrelevant for one prediction, dominant when a design-space sweep
//! evaluates 10⁵ configurations from one profile. [`PreparedProfile`]
//! performs all of that **once**:
//!
//! * deduplicates identical epochs across threads and iterations (iterative
//!   kernels repeat the same per-epoch profile many times),
//! * builds the private/global/instruction stack-distance models and the
//!   precomputed [`EpochCurves`] interpolation tables per *distinct* epoch,
//! * captures the calibration [`Knobs`] from the environment,
//! * flattens the thread timelines and precomputes the barrier-participant
//!   counts consumed by the symbolic execution.
//!
//! [`BatchedEq1`] is the matching evaluator: a structure-of-arrays sweep
//! loop that memoizes StatStack and branch-predictor queries per distinct
//! cache geometry (design spaces reuse a handful of axis values across
//! thousands of points) and reuses one flat cycle buffer plus one
//! `SymScratch` across configurations, so steady-state evaluation
//! performs **no per-point allocation**.
//!
//! **Bit-identity contract**: every path through this module reproduces the
//! scalar pipeline exactly — the same [`predict_epoch_rated`] arithmetic
//! body, curve tables proven bit-identical to the profile methods, and the
//! same symbolic-execution engine. With no `RPPM_*` calibration variables
//! set between preparation and evaluation, [`BatchedEq1::eval`] equals
//! [`predict`](crate::predict())`(...).total_cycles` to the last bit (pinned by the
//! `dse_equivalence` differential property suite).
//!
//! # Example: prepare once, evaluate many
//!
//! ```
//! use rppm_trace::{ProgramBuilder, BlockSpec, DesignPoint};
//! use rppm_profiler::profile;
//! use rppm_core::{predict, PreparedProfile};
//! use std::sync::Arc;
//!
//! let mut b = ProgramBuilder::new("demo", 1);
//! b.thread(0u32).block(BlockSpec::new(10_000, 1).deps(0.3, 4.0));
//! let prof = profile(&b.build());
//!
//! let prepared = PreparedProfile::new(Arc::new(prof)); // heavy work here
//! let mut batch = prepared.batched();                  // cheap, reusable
//! for dp in DesignPoint::ALL {
//!     let cfg = dp.config();
//!     let fast = batch.eval(&cfg);                     // microseconds
//!     let slow = predict(prepared.profile(), &cfg).total_cycles;
//!     assert_eq!(fast.to_bits(), slow.to_bits());
//! }
//! ```

use crate::eq1::{empty_epoch_prediction, predict_epoch_rated, EpochPrediction, Knobs, RawRates};
use crate::predict::{assemble, Prediction};
use crate::symexec::{
    barrier_participants, execute, execute_total, FlatTimelines, SymScratch, ThreadTimeline,
};
use rppm_profiler::{ApplicationProfile, EpochCurves, EpochProfile};
use rppm_statstack::StackDistanceModel;
use rppm_trace::{CacheGeometry, MachineConfig, SyncOp};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel in the flat-epoch → cell map for empty (zero-op) epochs, whose
/// prediction is always the zero prediction.
const EMPTY_CELL: usize = usize::MAX;

/// One distinct epoch's precomputed state: the stack-distance models and
/// interpolation tables every configuration evaluation reuses.
#[derive(Debug)]
struct PreparedEpoch {
    /// Location of the representative epoch in the profile.
    thread: usize,
    epoch: usize,
    priv_model: StackDistanceModel,
    glob_model: StackDistanceModel,
    icache_model: StackDistanceModel,
    curves: EpochCurves,
}

/// A profile with all configuration-independent prediction work done.
///
/// Construction cost is a few scalar predictions; each subsequent
/// evaluation through [`PreparedProfile::batched`] costs microseconds (see
/// the module docs for the bit-identity contract with the scalar path).
#[derive(Debug)]
pub struct PreparedProfile {
    profile: Arc<ApplicationProfile>,
    knobs: Knobs,
    /// One entry per distinct nonempty epoch.
    cells: Vec<PreparedEpoch>,
    /// Per flat epoch (thread-major): index into `cells`, or [`EMPTY_CELL`].
    cell_of: Vec<usize>,
    /// Per-thread `(offset, len)` into the flat epoch order.
    ranges: Vec<(usize, usize)>,
    /// Barrier participant counts (pure profile property).
    participants: HashMap<u32, usize>,
}

impl PreparedProfile {
    /// Performs the one-time precomputation for `profile`: epoch
    /// deduplication, stack-distance model and curve-table construction,
    /// calibration capture (the `RPPM_*` environment is read **here**, not
    /// per evaluation) and timeline flattening.
    ///
    /// # Panics
    ///
    /// Panics if the profile is structurally inconsistent.
    pub fn new(profile: Arc<ApplicationProfile>) -> Self {
        assert!(profile.is_consistent(), "inconsistent profile");
        let mut cells: Vec<PreparedEpoch> = Vec::new();
        let mut reps: Vec<&EpochProfile> = Vec::new();
        let mut cell_of = Vec::new();
        let mut ranges = Vec::new();
        for (t, thread) in profile.threads.iter().enumerate() {
            ranges.push((cell_of.len(), thread.epochs.len()));
            for (e, epoch) in thread.epochs.iter().enumerate() {
                if epoch.ops == 0 {
                    cell_of.push(EMPTY_CELL);
                    continue;
                }
                let cell = match reps.iter().position(|r| *r == epoch) {
                    Some(i) => i,
                    None => {
                        reps.push(epoch);
                        cells.push(PreparedEpoch {
                            thread: t,
                            epoch: e,
                            priv_model: StackDistanceModel::new(&epoch.private_rd),
                            glob_model: StackDistanceModel::new(&epoch.global_rd),
                            icache_model: StackDistanceModel::new(&epoch.icache_rd),
                            curves: EpochCurves::new(epoch),
                        });
                        cells.len() - 1
                    }
                };
                cell_of.push(cell);
            }
        }
        let participants =
            barrier_participants(profile.threads.iter().map(|t| t.events.as_slice()));
        drop(reps);
        PreparedProfile {
            profile,
            knobs: Knobs::from_env(),
            cells,
            cell_of,
            ranges,
            participants,
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &Arc<ApplicationProfile> {
        &self.profile
    }

    /// Number of distinct nonempty epochs (the per-configuration Equation-1
    /// workload of one batched evaluation).
    pub fn distinct_epochs(&self) -> usize {
        self.cells.len()
    }

    /// Total number of epochs across all threads.
    pub fn total_epochs(&self) -> usize {
        self.cell_of.len()
    }

    /// Creates a reusable batched evaluator borrowing this preparation.
    ///
    /// The evaluator owns the mutable sweep state (rate memos, cycle
    /// buffer, symbolic-execution scratch); create one per worker thread
    /// for parallel sweeps — they share the preparation read-only.
    pub fn batched(&self) -> BatchedEq1<'_> {
        BatchedEq1 {
            prep: self,
            events: self
                .profile
                .threads
                .iter()
                .map(|t| t.events.as_slice())
                .collect(),
            priv_rates: HashMap::new(),
            glob_rates: HashMap::new(),
            icache_rates: HashMap::new(),
            bpred_rates: HashMap::new(),
            cell_cycles: vec![0.0; self.cells.len()],
            cycles: vec![0.0; self.cell_of.len()],
            scratch: SymScratch::default(),
        }
    }

    fn epoch(&self, cell: &PreparedEpoch) -> &EpochProfile {
        &self.profile.threads[cell.thread].epochs[cell.epoch]
    }

    fn rates(&self, cell: &PreparedEpoch, config: &MachineConfig) -> RawRates {
        RawRates {
            r1: cell.priv_model.miss_rate_geom(&config.l1d),
            r2: cell.priv_model.miss_rate_geom(&config.l2),
            r3: cell.glob_model.miss_rate_geom(&config.l3),
            l1i: cell.icache_model.miss_rate_geom(&config.l1i),
            bmiss: rppm_branch_model::predict_miss_rate(&self.epoch(cell).branch, &config.bpred),
        }
    }

    fn rates_isolated(&self, cell: &PreparedEpoch, config: &MachineConfig) -> RawRates {
        RawRates {
            r1: cell.priv_model.miss_rate_geom(&config.l1d),
            r2: cell.priv_model.miss_rate_geom(&config.l2),
            r3: cell.priv_model.miss_rate_geom(&config.l3),
            l1i: cell.icache_model.miss_rate_geom(&config.l1i),
            bmiss: rppm_branch_model::predict_miss_rate(&self.epoch(cell).branch, &config.bpred),
        }
    }

    /// Per-cell epoch predictions for `config` (full RPPM rates).
    fn cell_predictions(&self, config: &MachineConfig) -> Vec<EpochPrediction> {
        self.cells
            .iter()
            .map(|c| {
                predict_epoch_rated(
                    self.epoch(c),
                    config,
                    &c.curves,
                    self.rates(c, config),
                    &self.knobs,
                )
            })
            .collect()
    }

    /// Full prediction for one configuration, reusing the precomputed
    /// models — bit-identical to [`predict`](crate::predict()) when no `RPPM_*`
    /// variable changed since preparation.
    pub fn predict(&self, config: &MachineConfig) -> Prediction {
        let cell_preds = self.cell_predictions(config);
        let epoch_preds: Vec<Vec<EpochPrediction>> = self
            .ranges
            .iter()
            .map(|&(off, len)| {
                self.cell_of[off..off + len]
                    .iter()
                    .map(|&c| {
                        if c == EMPTY_CELL {
                            empty_epoch_prediction()
                        } else {
                            cell_preds[c].clone()
                        }
                    })
                    .collect()
            })
            .collect();
        let timelines: Vec<ThreadTimeline> = self
            .profile
            .threads
            .iter()
            .zip(&epoch_preds)
            .map(|(t, preds)| ThreadTimeline {
                epochs: preds.iter().map(|p| p.cycles).collect(),
                events: t.events.clone(),
            })
            .collect();
        let schedule = execute(&timelines, config);
        assemble(&self.profile, config, epoch_preds, schedule)
    }

    /// The MAIN baseline ([`crate::predict_main`]) from the prepared
    /// models; bit-identical to the scalar function under the same
    /// environment caveat as [`PreparedProfile::predict`].
    pub fn predict_main(&self, config: &MachineConfig) -> f64 {
        self.isolated_thread_active(0, config)
    }

    /// The CRIT baseline ([`crate::predict_crit`]) from the prepared
    /// models.
    pub fn predict_crit(&self, config: &MachineConfig) -> f64 {
        (0..self.ranges.len())
            .map(|t| self.isolated_thread_active(t, config))
            .fold(0.0, f64::max)
    }

    /// Sum of isolated-model epoch times for one thread. Matches the
    /// scalar baselines' per-epoch iteration exactly: equal epochs produce
    /// bit-equal predictions, so summing shared cell results in flat-epoch
    /// order reproduces the scalar sum bit for bit.
    fn isolated_thread_active(&self, thread: usize, config: &MachineConfig) -> f64 {
        let mut memo: Vec<Option<f64>> = vec![None; self.cells.len()];
        let (off, len) = self.ranges[thread];
        self.cell_of[off..off + len]
            .iter()
            .map(|&c| {
                if c == EMPTY_CELL {
                    return 0.0;
                }
                *memo[c].get_or_insert_with(|| {
                    let cell = &self.cells[c];
                    predict_epoch_rated(
                        self.epoch(cell),
                        config,
                        &cell.curves,
                        self.rates_isolated(cell, config),
                        &self.knobs,
                    )
                    .cycles
                })
            })
            .sum()
    }
}

/// Memo key for a cache-geometry-dependent miss-rate column: everything
/// [`StackDistanceModel::miss_rate_geom`] reads from the geometry.
type GeomKey = (u64, u32, u32);

fn geom_key(g: &CacheGeometry) -> GeomKey {
    (g.size_bytes, g.assoc, g.line_bytes)
}

/// Which stack-distance model a rate column is drawn from.
#[derive(Clone, Copy)]
enum ModelKind {
    Private,
    Global,
    Icache,
}

/// Structure-of-arrays Equation-1 evaluator over a [`PreparedProfile`].
///
/// Owns the per-sweep mutable state: miss-rate columns memoized per
/// distinct cache geometry (and branch-predictor miss rates per distinct
/// predictor), the flat cycle buffer and the symbolic-execution scratch.
/// After the first evaluation of each distinct axis value, an evaluation
/// allocates nothing.
///
/// Not `Sync` by design: create one evaluator per worker thread (they
/// share the read-only [`PreparedProfile`]). Memoized values are pure
/// functions of (epoch, geometry), so every worker computes identical
/// bits.
#[derive(Debug)]
pub struct BatchedEq1<'p> {
    prep: &'p PreparedProfile,
    /// Per-thread event slices for the borrowed flat-timeline view.
    events: Vec<&'p [SyncOp]>,
    /// Miss-rate columns (one `f64` per cell) per distinct geometry.
    priv_rates: HashMap<GeomKey, Box<[f64]>>,
    glob_rates: HashMap<GeomKey, Box<[f64]>>,
    icache_rates: HashMap<GeomKey, Box<[f64]>>,
    /// Branch miss-rate columns per distinct predictor configuration.
    bpred_rates: HashMap<(u32, u32), Box<[f64]>>,
    /// Per-cell predicted cycles for the configuration being evaluated.
    cell_cycles: Vec<f64>,
    /// Flat per-epoch cycle buffer fed to the symbolic execution.
    cycles: Vec<f64>,
    scratch: SymScratch,
}

impl BatchedEq1<'_> {
    /// The preparation this evaluator sweeps over.
    pub fn prepared(&self) -> &PreparedProfile {
        self.prep
    }

    fn ensure_column(&mut self, kind: ModelKind, geom: &CacheGeometry) {
        let (map, cells) = match kind {
            ModelKind::Private => (&mut self.priv_rates, &self.prep.cells),
            ModelKind::Global => (&mut self.glob_rates, &self.prep.cells),
            ModelKind::Icache => (&mut self.icache_rates, &self.prep.cells),
        };
        map.entry(geom_key(geom)).or_insert_with(|| {
            cells
                .iter()
                .map(|c| {
                    match kind {
                        ModelKind::Private => &c.priv_model,
                        ModelKind::Global => &c.glob_model,
                        ModelKind::Icache => &c.icache_model,
                    }
                    .miss_rate_geom(geom)
                })
                .collect()
        });
    }

    fn ensure_bpred(&mut self, config: &MachineConfig) {
        let key = (config.bpred.size_bytes, config.bpred.history_bits);
        self.bpred_rates.entry(key).or_insert_with(|| {
            self.prep
                .cells
                .iter()
                .map(|c| {
                    rppm_branch_model::predict_miss_rate(&self.prep.epoch(c).branch, &config.bpred)
                })
                .collect()
        });
    }

    /// Predicted end-to-end execution time in **cycles** for `config` —
    /// bit-identical to [`predict`](crate::predict())`(profile, config).total_cycles`
    /// under the module-level environment caveat. Seconds follow as
    /// [`MachineConfig::cycles_to_seconds`], the same conversion the scalar
    /// path applies.
    pub fn eval(&mut self, config: &MachineConfig) -> f64 {
        self.ensure_column(ModelKind::Private, &config.l1d);
        self.ensure_column(ModelKind::Private, &config.l2);
        self.ensure_column(ModelKind::Global, &config.l3);
        self.ensure_column(ModelKind::Icache, &config.l1i);
        self.ensure_bpred(config);
        let r1 = &self.priv_rates[&geom_key(&config.l1d)];
        let r2 = &self.priv_rates[&geom_key(&config.l2)];
        let r3 = &self.glob_rates[&geom_key(&config.l3)];
        let l1i = &self.icache_rates[&geom_key(&config.l1i)];
        let bmiss = &self.bpred_rates[&(config.bpred.size_bytes, config.bpred.history_bits)];

        for (i, cell) in self.prep.cells.iter().enumerate() {
            let rates = RawRates {
                r1: r1[i],
                r2: r2[i],
                r3: r3[i],
                l1i: l1i[i],
                bmiss: bmiss[i],
            };
            self.cell_cycles[i] = predict_epoch_rated(
                self.prep.epoch(cell),
                config,
                &cell.curves,
                rates,
                &self.prep.knobs,
            )
            .cycles;
        }
        for (slot, &c) in self.cycles.iter_mut().zip(&self.prep.cell_of) {
            *slot = if c == EMPTY_CELL {
                0.0
            } else {
                self.cell_cycles[c]
            };
        }
        execute_total(
            FlatTimelines {
                cycles: &self.cycles,
                ranges: &self.prep.ranges,
                events: &self.events,
            },
            &self.prep.participants,
            config.sync_overhead_cycles as f64,
            config.spawn_latency_cycles as f64,
            &mut self.scratch,
        )
    }

    /// Evaluates a vector of configurations, writing predicted cycles into
    /// `out` (cleared first). `out`'s capacity is reused across calls.
    pub fn eval_into(&mut self, configs: &[MachineConfig], out: &mut Vec<f64>) {
        out.clear();
        out.extend(configs.iter().map(|c| self.eval(c)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{predict, predict_crit, predict_main};
    use rppm_profiler::profile;
    use rppm_trace::{AddressPattern, BlockSpec, DesignPoint, ProgramBuilder};

    fn parallel_profile() -> Arc<ApplicationProfile> {
        let mut b = ProgramBuilder::new("prep-test", 4);
        let bar = b.alloc_barrier();
        let r = b.alloc_region(1 << 20);
        b.spawn_workers();
        for t in 0..4u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(20_000, 3 + (t % 2) as u64)
                        .loads(0.25)
                        .branches(0.1)
                        .addr(AddressPattern::stream(r.chunk((t % 2) as u64, 2)), 1.0),
                )
                .barrier(bar)
                .block(
                    BlockSpec::new(10_000, 3 + (t % 2) as u64)
                        .loads(0.25)
                        .branches(0.1)
                        .addr(AddressPattern::stream(r.chunk((t % 2) as u64, 2)), 1.0),
                );
        }
        b.join_workers();
        Arc::new(profile(&b.build()))
    }

    #[test]
    fn deduplicates_identical_epochs() {
        let prof = parallel_profile();
        let prep = PreparedProfile::new(Arc::clone(&prof));
        let total: usize = prof.threads.iter().map(|t| t.epochs.len()).sum();
        assert_eq!(prep.total_epochs(), total);
        // Workers 0/2 and 1/3 run identical blocks: their epochs collapse.
        assert!(
            prep.distinct_epochs() * 2 <= total,
            "{} distinct of {total}",
            prep.distinct_epochs()
        );
    }

    #[test]
    fn batched_eval_matches_scalar_predict_bitwise() {
        let prof = parallel_profile();
        let prep = PreparedProfile::new(Arc::clone(&prof));
        let mut batch = prep.batched();
        for dp in DesignPoint::ALL {
            let cfg = dp.config();
            let fast = batch.eval(&cfg);
            let slow = predict(&prof, &cfg).total_cycles;
            assert_eq!(fast.to_bits(), slow.to_bits(), "{dp}");
        }
        // Second pass through the same evaluator (memos warm, scratch
        // reused): still identical.
        for dp in DesignPoint::ALL {
            let cfg = dp.config();
            assert_eq!(
                batch.eval(&cfg).to_bits(),
                predict(&prof, &cfg).total_cycles.to_bits(),
                "{dp} (warm)"
            );
        }
    }

    #[test]
    fn prepared_predict_matches_scalar_fully() {
        let prof = parallel_profile();
        let prep = PreparedProfile::new(Arc::clone(&prof));
        let cfg = DesignPoint::Big.config();
        let fast = prep.predict(&cfg);
        let slow = predict(&prof, &cfg);
        assert_eq!(fast.total_cycles.to_bits(), slow.total_cycles.to_bits());
        assert_eq!(fast.total_seconds.to_bits(), slow.total_seconds.to_bits());
        assert_eq!(fast.threads.len(), slow.threads.len());
        for (f, s) in fast.threads.iter().zip(&slow.threads) {
            assert_eq!(f.active_cycles.to_bits(), s.active_cycles.to_bits());
            assert_eq!(f.sync_cycles.to_bits(), s.sync_cycles.to_bits());
            assert_eq!(f.epochs, s.epochs);
        }
        assert_eq!(fast.intervals, slow.intervals);
    }

    #[test]
    fn prepared_baselines_match_scalar_bitwise() {
        let prof = parallel_profile();
        let prep = PreparedProfile::new(Arc::clone(&prof));
        for dp in DesignPoint::ALL {
            let cfg = dp.config();
            assert_eq!(
                prep.predict_main(&cfg).to_bits(),
                predict_main(&prof, &cfg).to_bits(),
                "{dp} main"
            );
            assert_eq!(
                prep.predict_crit(&cfg).to_bits(),
                predict_crit(&prof, &cfg).to_bits(),
                "{dp} crit"
            );
        }
    }

    #[test]
    fn eval_into_reuses_output_buffer() {
        let prof = parallel_profile();
        let prep = PreparedProfile::new(prof);
        let mut batch = prep.batched();
        let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
        let mut out = Vec::new();
        batch.eval_into(&configs, &mut out);
        assert_eq!(out.len(), configs.len());
        let first = out.clone();
        batch.eval_into(&configs, &mut out);
        assert_eq!(out, first);
    }

    #[test]
    fn extreme_cache_geometries_stay_identical() {
        let prof = parallel_profile();
        let prep = PreparedProfile::new(Arc::clone(&prof));
        let mut batch = prep.batched();
        let mut tiny = DesignPoint::Base.config();
        tiny.name = "tiny".into();
        tiny.l1d = rppm_trace::CacheGeometry::new(64, 1, 64, 3);
        tiny.l1i = rppm_trace::CacheGeometry::new(64, 1, 64, 3);
        tiny.l2 = rppm_trace::CacheGeometry::new(128, 2, 64, 12);
        tiny.l3 = rppm_trace::CacheGeometry::new(256, 4, 64, 35);
        let mut huge = DesignPoint::Base.config();
        huge.name = "huge".into();
        huge.l3 = rppm_trace::CacheGeometry::new(1 << 30, 16, 64, 35);
        for cfg in [tiny, huge] {
            assert_eq!(
                batch.eval(&cfg).to_bits(),
                predict(&prof, &cfg).total_cycles.to_bits(),
                "{}",
                cfg.name
            );
        }
    }
}

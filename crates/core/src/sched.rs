//! Discrete-event ready queue shared by the execution engines.
//!
//! Algorithm 2 (symbolic execution), the golden simulator engine and the
//! naive reference core all schedule the same way: *run the ready thread
//! with the smallest clock next*. The historical implementation rescanned
//! every thread on every scheduling step, which is O(threads) per step —
//! harmless at the paper's 4–8 threads, but the dominant cost for
//! hundreds-to-thousands-of-thread scenarios where almost every thread is
//! blocked or finished at any given moment.
//!
//! [`EventQueue`] replaces the scan with a binary min-heap of
//! `(wake_key, thread)` events. Threads are *posted* when they become
//! runnable (creation, wake-up from a barrier/lock/queue, or re-posting
//! after a scheduling quantum) and popped in global time order; blocked and
//! finished threads simply are not in the heap and cost nothing.
//!
//! # Bit-identity with the scan
//!
//! The linear scan picked the **first** thread with the strictly smallest
//! key — i.e. the lowest index among ties. Popping the minimum of the
//! lexicographic pair `(key, thread_index)` selects exactly the same
//! thread, so engines ported to this queue reproduce their previous
//! schedules bit for bit (pinned by the golden suite, the sim-equivalence
//! suite and the scheduler differential tests).
//!
//! Clocks are `f64` cycles in the engines; [`time_key`] maps a
//! non-negative, non-NaN `f64` to a `u64` whose integer order matches the
//! float order (IEEE-754 bit patterns of non-negative floats are monotone),
//! so the heap never compares floats directly.
//!
//! # Invariant
//!
//! Each thread has **at most one** live entry in the queue: only the
//! engine-side transitions *into* the ready state post, and a thread
//! already in the queue never changes its wake key (a blocked thread is
//! not in the queue; the running thread has been popped). This is what
//! makes lazy deletion and sequence numbers unnecessary.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maps a non-negative, non-NaN time in cycles to a heap key whose `u64`
/// ordering matches the `f64` ordering.
///
/// `-0.0` is normalized to `+0.0` so both spellings of zero share a key.
#[inline]
pub fn time_key(t: f64) -> u64 {
    debug_assert!(t >= 0.0, "simulated time must be non-negative, got {t}");
    if t == 0.0 {
        0
    } else {
        t.to_bits()
    }
}

/// Min-heap of `(wake_key, thread)` scheduling events.
///
/// See the [module docs](self) for the single-live-entry invariant and the
/// bit-identity argument.
#[derive(Debug, Default, Clone)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Removes every pending event, keeping the allocation (for scratch
    /// reuse across design-space sweep evaluations).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no thread is currently runnable.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Posts a wake-up for `thread` at `key` (see [`time_key`] for `f64`
    /// clocks; tick-based engines pass the tick directly).
    #[inline]
    pub fn post(&mut self, key: u64, thread: usize) {
        self.heap.push(Reverse((key, thread)));
    }

    /// Posts a wake-up for `thread` at `f64` time `t`.
    #[inline]
    pub fn post_at(&mut self, t: f64, thread: usize) {
        self.post(time_key(t), thread);
    }

    /// Pops the earliest event: the smallest `(key, thread)` pair, i.e. the
    /// lowest-index thread among those sharing the minimum key.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.post_at(30.0, 1);
        q.post_at(10.0, 2);
        q.post_at(20.0, 0);
        assert_eq!(q.pop(), Some((time_key(10.0), 2)));
        assert_eq!(q.pop(), Some((time_key(20.0), 0)));
        assert_eq!(q.pop(), Some((time_key(30.0), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_to_lowest_thread_index() {
        let mut q = EventQueue::new();
        for i in [3usize, 0, 2, 1] {
            q.post_at(42.0, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, i)| i).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "scan picked the first min index");
    }

    #[test]
    fn time_key_is_monotone_on_representative_values() {
        let mut times = [
            0.0,
            1e-9,
            0.5,
            1.0,
            1.0 + f64::EPSILON,
            QUANTUMISH,
            1e18,
            f64::MAX,
        ];
        times.sort_by(f64::total_cmp);
        for w in times.windows(2) {
            assert!(time_key(w[0]) <= time_key(w[1]), "{} vs {}", w[0], w[1]);
            if w[0] < w[1] {
                assert!(time_key(w[0]) < time_key(w[1]));
            }
        }
    }
    const QUANTUMISH: f64 = 500.0;

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(time_key(-0.0), time_key(0.0));
    }

    #[test]
    fn clear_keeps_reusability() {
        let mut q = EventQueue::new();
        q.post_at(1.0, 0);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.post_at(2.0, 7);
        assert_eq!(q.pop(), Some((time_key(2.0), 7)));
    }
}

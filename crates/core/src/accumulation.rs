//! The accumulating-error micro-benchmark (Table I).
//!
//! A loop of `iterations` identical-duration iterations is parallelized over
//! `n` threads with a barrier after each round. Suppose the per-thread,
//! per-epoch prediction is unbiased but noisy: `T̂ = T·(1 + U)` with
//! `U ~ Uniform(−e, +e)`. A single thread's errors cancel over many epochs,
//! but with `n` threads each inter-barrier epoch is predicted as the *max*
//! of `n` noisy values — a positively biased statistic — so the program-level
//! prediction error accumulates instead of canceling. Analytically the bias
//! is `e·(n−1)/(n+1)` (the mean of the maximum of `n` centered uniforms),
//! which reproduces Table I exactly: 0.33% for 2 threads at 1%, 0.60% for
//! 4, 0.78% for 8, 0.88% for 16.

use rppm_trace::Rng;

/// Simulates the Table I micro-benchmark.
///
/// Returns the relative error of the predicted total execution time for a
/// barrier-synchronized loop of `iterations` unit-time iterations run by
/// `threads` threads, when each thread's inter-barrier time prediction
/// carries independent uniform noise of amplitude `error` (e.g. `0.01` for
/// ±1%).
///
/// # Panics
///
/// Panics if `threads == 0` or `iterations == 0`.
pub fn accumulation_error(threads: u32, error: f64, iterations: u64, seed: u64) -> f64 {
    assert!(threads > 0, "need at least one thread");
    assert!(iterations > 0, "need at least one iteration");
    let n = threads as u64;
    let epochs = iterations / n;
    assert!(epochs > 0, "fewer iterations than threads");

    let mut rng = Rng::new(seed);
    let mut predicted = 0.0f64;
    for _ in 0..epochs {
        let mut epoch_max = f64::MIN;
        for _ in 0..n {
            let noise = (rng.next_f64() * 2.0 - 1.0) * error;
            epoch_max = epoch_max.max(1.0 + noise);
        }
        predicted += epoch_max;
    }
    let actual = epochs as f64;
    (predicted - actual) / actual
}

/// The closed-form expectation of the accumulation bias:
/// `E[max of n Uniform(−e, e)] = e·(n−1)/(n+1)`.
pub fn accumulation_bias(threads: u32, error: f64) -> f64 {
    let n = threads as f64;
    error * (n - 1.0) / (n + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_error_cancels() {
        let e = accumulation_error(1, 0.10, 1_000_000, 42);
        assert!(e.abs() < 0.001, "single-thread error {e}");
    }

    #[test]
    fn matches_closed_form_for_table_i() {
        // Reproduce every cell of Table I within Monte-Carlo noise.
        let cases = [
            (2u32, 0.01, 0.0033),
            (4, 0.01, 0.0060),
            (8, 0.01, 0.0078),
            (16, 0.01, 0.0088),
            (2, 0.05, 0.0167),
            (4, 0.05, 0.0300),
            (8, 0.05, 0.0389),
            (16, 0.05, 0.0441),
            (2, 0.10, 0.0334),
            (4, 0.10, 0.0601),
            (8, 0.10, 0.0779),
            (16, 0.10, 0.0883),
        ];
        for (n, e, expected) in cases {
            let got = accumulation_error(n, e, 1_000_000, 7);
            assert!(
                (got - expected).abs() < 0.0015,
                "n={n} e={e}: got {got}, Table I says {expected}"
            );
            let analytic = accumulation_bias(n, e);
            assert!(
                (analytic - expected).abs() < 0.0005,
                "closed form n={n} e={e}: {analytic} vs {expected}"
            );
        }
    }

    #[test]
    fn error_grows_with_thread_count() {
        let mut prev = 0.0;
        for n in [1u32, 2, 4, 8, 16] {
            let e = accumulation_error(n, 0.05, 1 << 20, 3);
            assert!(e >= prev - 0.002, "error at n={n} dropped: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn error_scales_linearly_with_noise() {
        let e1 = accumulation_error(4, 0.01, 1 << 20, 9);
        let e10 = accumulation_error(4, 0.10, 1 << 20, 9);
        assert!((e10 / e1 - 10.0).abs() < 0.5, "ratio {}", e10 / e1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        accumulation_error(0, 0.01, 100, 1);
    }
}

//! RPPM: Rapid Performance Prediction of Multithreaded Workloads on
//! Multicore Processors (De Pestel et al., ISPASS 2019).
//!
//! This crate is the paper's primary contribution: a *mechanistic
//! analytical* model that takes a microarchitecture-independent workload
//! profile (collected once by `rppm-profiler`) and predicts multi-threaded
//! execution time on any multicore configuration, in two phases:
//!
//! 1. **Per-epoch active times** ([`predict_epoch`]) — the single-threaded
//!    interval model (Equation 1: base + branch + I-cache + D-cache
//!    components), extended with the multi-threaded StatStack distributions
//!    so shared-cache interference and cache-coherence invalidations are
//!    reflected in per-thread memory components.
//! 2. **Synchronization** ([`execute`], Algorithm 2) — symbolic execution of
//!    the synchronization events (barriers, critical sections, condition
//!    variables, creation/join) over the predicted epoch times, yielding
//!    idle-time, total execution time and the predicted parallel schedule.
//!
//! The naive baselines the paper compares against ([`predict_main`],
//! [`predict_crit`]), bottlegraph analysis ([`Bottlegraph`]), design-space
//! exploration helpers ([`evaluate_choice`]) and the Table I
//! error-accumulation study ([`accumulation_error`]) are all here too.
//!
//! # Example
//!
//! ```
//! use rppm_trace::{ProgramBuilder, BlockSpec, DesignPoint};
//! use rppm_profiler::profile;
//! use rppm_core::predict;
//!
//! let mut b = ProgramBuilder::new("demo", 2);
//! b.spawn_workers();
//! b.thread(1u32).block(BlockSpec::new(20_000, 1).deps(0.3, 4.0));
//! b.join_workers();
//!
//! let prof = profile(&b.build());          // profile once...
//! for dp in DesignPoint::ALL {             // ...predict many architectures
//!     let p = predict(&prof, &dp.config());
//!     assert!(p.total_cycles > 0.0);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulation;
pub mod bottlegraph;
pub mod dse;
pub mod eq1;
pub mod predict;
pub mod prepared;
pub mod report;
pub mod sched;
pub mod symexec;

pub use accumulation::{accumulation_bias, accumulation_error};
pub use bottlegraph::{BottleBox, Bottlegraph};
pub use dse::{
    area_proxy, dse_row, evaluate_choice, find_best, pareto_frontier, power_proxy, sweep,
    ConfigSpace, Constraints, CoreFamily, DseBest, DseChoice, DseError, DsePoint, DseRow, DseSweep,
};
pub use eq1::{predict_epoch, predict_epoch_isolated, EpochPrediction};
pub use predict::{predict, predict_crit, predict_main, Prediction, ThreadPrediction};
pub use prepared::{BatchedEq1, PreparedProfile};
pub use report::{abs_pct_error, max, mean, signed_pct_error};
pub use rppm_trace::par;
pub use rppm_trace::par::{default_jobs, parallel_for, parallel_map};
pub use sched::EventQueue;
pub use symexec::{execute, Schedule, ThreadSchedule, ThreadTimeline};

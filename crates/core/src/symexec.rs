//! Algorithm 2: symbolic execution of synchronization.
//!
//! Phase 2 of RPPM: given each thread's predicted per-epoch active times and
//! its synchronization-event sequence, the symbolic execution repeatedly
//! picks the unblocked thread with the smallest accumulated time and
//! advances it to its next synchronization event, emulating barrier,
//! critical-section, condition-variable, creation and join semantics. The
//! slowest thread determines each event's timing; faster threads accumulate
//! idle (sync) time. The critical path through this schedule is the
//! predicted execution time.
//!
//! Two entry points share one engine: [`execute`] (the scalar path —
//! records per-thread active intervals for bottlegraphs) and the
//! crate-internal `execute_total` used by the batched design-space sweep,
//! which borrows the epoch/event slices, reuses a `SymScratch` across
//! configurations and skips interval recording. Both produce bit-identical
//! times: the interval bookkeeping never feeds back into the schedule.

use crate::sched::EventQueue;
use rppm_trace::{MachineConfig, SyncOp};
use std::collections::{HashMap, VecDeque};

/// One thread's input to the symbolic execution: predicted active cycles per
/// epoch, and the events separating them (`epochs.len() == events.len() + 1`).
#[derive(Debug, Clone, Default)]
pub struct ThreadTimeline {
    /// Predicted active cycles per epoch.
    pub epochs: Vec<f64>,
    /// Synchronization events between epochs.
    pub events: Vec<SyncOp>,
}

/// Borrowed, flat view of all thread timelines: one shared cycle buffer
/// plus per-thread `(offset, len)` ranges and event slices. This shape lets
/// the batched path overwrite the cycle buffer between evaluations without
/// rebuilding any per-thread structure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlatTimelines<'a> {
    /// Predicted active cycles for every epoch of every thread,
    /// thread-major.
    pub cycles: &'a [f64],
    /// Per-thread `(offset, len)` into `cycles`.
    pub ranges: &'a [(usize, usize)],
    /// Per-thread synchronization events (`len == ranges[i].1 - 1`).
    pub events: &'a [&'a [SyncOp]],
}

/// Outcome of the symbolic execution for one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadSchedule {
    /// Time the thread started (cycles).
    pub start: f64,
    /// Time the thread finished (cycles).
    pub finish: f64,
    /// Total active cycles (sum of epochs + sync-library overhead).
    pub active: f64,
    /// Idle cycles spent waiting on synchronization.
    pub idle: f64,
    /// Active intervals for bottlegraph construction.
    pub intervals: Vec<(f64, f64)>,
}

/// Result of the symbolic execution.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Predicted end-to-end execution time (cycles).
    pub total: f64,
    /// Per-thread schedules.
    pub threads: Vec<ThreadSchedule>,
}

impl Schedule {
    /// Per-thread active intervals (bottlegraph input).
    pub fn intervals(&self) -> Vec<Vec<(f64, f64)>> {
        self.threads.iter().map(|t| t.intervals.clone()).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Ready,
    Blocked,
    Done,
}

/// Mutable per-thread execution state (the timeline itself is borrowed).
#[derive(Debug)]
struct ThreadState {
    /// Next element to execute: epoch `idx` if `at_epoch`, else event `idx`.
    idx: usize,
    at_epoch: bool,
    time: f64,
    status: Status,
    start: f64,
    active: f64,
    idle: f64,
    block_time: f64,
    intervals: Vec<(f64, f64)>,
    open: f64,
}

impl ThreadState {
    fn reset(&mut self, main: bool) {
        self.idx = 0;
        self.at_epoch = true;
        self.time = 0.0;
        self.status = if main {
            Status::Ready
        } else {
            Status::NotStarted
        };
        self.start = 0.0;
        self.active = 0.0;
        self.idle = 0.0;
        self.block_time = 0.0;
        self.intervals.clear();
        self.open = 0.0;
    }
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
    max_time: f64,
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    queue: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<f64>,
    waiting: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct RwLockState {
    writer: Option<usize>,
    readers: usize,
    /// Blocked acquirers in arrival order: `(thread, wants_write)`.
    queue: VecDeque<(usize, bool)>,
}

impl RwLockState {
    /// Admits queued acquirers after a release, FIFO by arrival: a run of
    /// consecutive readers at the front enters together; a writer at the
    /// front enters alone once the lock is fully free. Appends the threads
    /// to wake to `wake`.
    fn admit(&mut self, wake: &mut Vec<usize>) {
        if self.writer.is_some() {
            return;
        }
        if let Some(&(_, true)) = self.queue.front() {
            if self.readers == 0 {
                let (w, _) = self.queue.pop_front().expect("nonempty");
                self.writer = Some(w);
                wake.push(w);
            }
            return;
        }
        while let Some(&(_, false)) = self.queue.front() {
            let (w, _) = self.queue.pop_front().expect("nonempty");
            self.readers += 1;
            wake.push(w);
        }
    }
}

/// Reusable state for repeated symbolic executions of the *same* profile
/// under different configurations: all maps and vectors retain their
/// allocations between runs, so a design-space sweep performs no per-point
/// allocation here after the first evaluation.
#[derive(Debug, Default)]
pub(crate) struct SymScratch {
    threads: Vec<ThreadState>,
    barriers: HashMap<u32, BarrierState>,
    mutexes: HashMap<u32, MutexState>,
    queues: HashMap<u32, QueueState>,
    rwlocks: HashMap<u32, RwLockState>,
    /// Semaphores reuse queue bookkeeping: posted permits carry the time
    /// they became available, exactly like produced items.
    sems: HashMap<u32, QueueState>,
    joiners: HashMap<usize, Vec<usize>>,
    finish: Vec<f64>,
    wake: Vec<usize>,
    wake_items: Vec<(usize, f64)>,
    queue: EventQueue,
}

impl SymScratch {
    fn reset(&mut self, n_threads: usize) {
        if self.threads.len() > n_threads {
            self.threads.truncate(n_threads);
        }
        for (i, th) in self.threads.iter_mut().enumerate() {
            th.reset(i == 0);
        }
        while self.threads.len() < n_threads {
            let mut th = ThreadState {
                idx: 0,
                at_epoch: true,
                time: 0.0,
                status: Status::NotStarted,
                start: 0.0,
                active: 0.0,
                idle: 0.0,
                block_time: 0.0,
                intervals: Vec::new(),
                open: 0.0,
            };
            th.reset(self.threads.is_empty());
            self.threads.push(th);
        }
        for b in self.barriers.values_mut() {
            b.arrived.clear();
            b.max_time = 0.0;
        }
        for m in self.mutexes.values_mut() {
            m.held_by = None;
            m.queue.clear();
        }
        for q in self.queues.values_mut() {
            q.items.clear();
            q.waiting.clear();
        }
        for rw in self.rwlocks.values_mut() {
            rw.writer = None;
            rw.readers = 0;
            rw.queue.clear();
        }
        for s in self.sems.values_mut() {
            s.items.clear();
            s.waiting.clear();
        }
        self.joiners.clear();
        self.finish.clear();
        self.finish.resize(n_threads, 0.0);
        self.queue.clear();
    }
}

/// Computes, per barrier id, the number of participating threads (threads
/// whose event stream contains that barrier). This is a pure function of
/// the profile, independent of the machine configuration, so batched
/// evaluation hoists it out of the per-point loop.
pub(crate) fn barrier_participants<'a>(
    events_per_thread: impl IntoIterator<Item = &'a [SyncOp]>,
) -> HashMap<u32, usize> {
    let mut participants: HashMap<u32, usize> = HashMap::new();
    for events in events_per_thread {
        let mut seen = std::collections::HashSet::new();
        for ev in events {
            if let SyncOp::Barrier { id, .. } = ev {
                if seen.insert(id.0) {
                    *participants.entry(id.0).or_insert(0) += 1;
                }
            }
        }
    }
    participants
}

/// Runs Algorithm 2 over the thread timelines.
///
/// `config` supplies the synchronization constants (library overhead per
/// event, thread-spawn latency) — the same values the simulator uses.
///
/// # Panics
///
/// Panics on structurally inconsistent timelines
/// (`epochs.len() != events.len() + 1`) or a deadlocked schedule.
pub fn execute(timelines: &[ThreadTimeline], config: &MachineConfig) -> Schedule {
    for (i, tl) in timelines.iter().enumerate() {
        assert_eq!(
            tl.epochs.len(),
            tl.events.len() + 1,
            "thread {i}: inconsistent timeline"
        );
    }
    let mut cycles = Vec::new();
    let mut ranges = Vec::with_capacity(timelines.len());
    let mut events: Vec<&[SyncOp]> = Vec::with_capacity(timelines.len());
    for tl in timelines {
        ranges.push((cycles.len(), tl.epochs.len()));
        cycles.extend_from_slice(&tl.epochs);
        events.push(&tl.events);
    }
    let flat = FlatTimelines {
        cycles: &cycles,
        ranges: &ranges,
        events: &events,
    };
    let participants = barrier_participants(timelines.iter().map(|tl| tl.events.as_slice()));
    let mut scratch = SymScratch::default();
    let total = run_symexec(
        flat,
        &participants,
        config.sync_overhead_cycles as f64,
        config.spawn_latency_cycles as f64,
        &mut scratch,
        true,
    );
    let threads = scratch
        .threads
        .iter_mut()
        .enumerate()
        .map(|(i, th)| ThreadSchedule {
            start: th.start,
            finish: scratch.finish[i],
            active: th.active,
            idle: th.idle,
            intervals: std::mem::take(&mut th.intervals),
        })
        .collect();
    Schedule { total, threads }
}

/// Lean entry for the batched path: borrowed timelines, precomputed barrier
/// participants, reusable scratch, no interval recording. Returns the
/// predicted end-to-end execution time in cycles.
///
/// Produces exactly the same total as [`execute`] on equivalent inputs.
pub(crate) fn execute_total(
    tl: FlatTimelines<'_>,
    participants: &HashMap<u32, usize>,
    overhead: f64,
    spawn: f64,
    scratch: &mut SymScratch,
) -> f64 {
    run_symexec(tl, participants, overhead, spawn, scratch, false)
}

fn run_symexec(
    tl: FlatTimelines<'_>,
    participants: &HashMap<u32, usize>,
    overhead: f64,
    spawn: f64,
    scratch: &mut SymScratch,
    record: bool,
) -> f64 {
    scratch.reset(tl.ranges.len());
    SymExec {
        overhead,
        spawn,
        record,
        tl,
        participants,
        st: scratch,
    }
    .run()
}

struct SymExec<'e, 's> {
    overhead: f64,
    spawn: f64,
    record: bool,
    tl: FlatTimelines<'e>,
    participants: &'e HashMap<u32, usize>,
    st: &'s mut SymScratch,
}

impl SymExec<'_, '_> {
    /// Arrival time of thread `i` at its next synchronization event (its
    /// accumulated time plus the pending epoch, if any) — the wake key the
    /// old linear scan minimized.
    fn eta(&self, i: usize) -> f64 {
        let th = &self.st.threads[i];
        let (off, len) = self.tl.ranges[i];
        if th.at_epoch && th.idx < len {
            th.time + self.tl.cycles[off + th.idx]
        } else {
            th.time
        }
    }

    /// Posts a wake-up for thread `i`, which must have just become ready.
    /// Called on every transition into `Status::Ready` (and only there), so
    /// each thread has at most one live event in the queue.
    fn post(&mut self, i: usize) {
        let eta = self.eta(i);
        self.st.queue.post_at(eta, i);
    }

    fn block(&mut self, i: usize) {
        let th = &mut self.st.threads[i];
        th.status = Status::Blocked;
        th.block_time = th.time;
        if self.record && th.time > th.open {
            th.intervals.push((th.open, th.time));
        }
    }

    fn resume(&mut self, i: usize, t: f64) {
        let th = &mut self.st.threads[i];
        if t > th.time {
            th.idle += t - th.time;
            th.time = t;
        }
        th.status = Status::Ready;
        th.open = th.time;
        self.post(i);
    }

    /// Thread `i`, while running, waits in place until `t`.
    fn wait_running(&mut self, i: usize, t: f64) {
        let th = &mut self.st.threads[i];
        if t > th.time {
            if self.record && th.time > th.open {
                th.intervals.push((th.open, th.time));
            }
            th.idle += t - th.time;
            th.time = t;
            th.open = t;
        }
    }

    fn finish_thread(&mut self, i: usize) {
        let t = self.st.threads[i].time;
        {
            let th = &mut self.st.threads[i];
            th.status = Status::Done;
            if self.record && t > th.open {
                th.intervals.push((th.open, t));
            }
        }
        self.st.finish[i] = t;
        if let Some(ws) = self.st.joiners.remove(&i) {
            for w in ws {
                self.resume(w, t);
            }
        }
    }

    /// Handles the event; returns `true` if the thread blocked.
    fn handle_event(&mut self, i: usize, ev: SyncOp) -> bool {
        // Library overhead: active time.
        {
            let th = &mut self.st.threads[i];
            th.time += self.overhead;
            th.active += self.overhead;
        }
        let t = self.st.threads[i].time;
        match ev {
            SyncOp::Create { child } => {
                let c = child.index();
                let start = t + self.spawn;
                let ch = &mut self.st.threads[c];
                debug_assert_eq!(ch.status, Status::NotStarted);
                ch.status = Status::Ready;
                ch.time = start;
                ch.start = start;
                ch.open = start;
                self.post(c);
                false
            }
            SyncOp::Join { child } => {
                let c = child.index();
                if self.st.threads[c].status == Status::Done {
                    let fin = self.st.finish[c];
                    self.wait_running(i, fin);
                    false
                } else {
                    self.st.joiners.entry(c).or_default().push(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Barrier { id, .. } => {
                let need = *self.participants.get(&id.0).expect("known barrier");
                let bar = self.st.barriers.entry(id.0).or_default();
                bar.arrived.push(i);
                bar.max_time = bar.max_time.max(t);
                if bar.arrived.len() >= need {
                    let release = bar.max_time;
                    // Reuse the wake buffer (keeps the barrier's own arrival
                    // vector allocated for the next configuration).
                    let mut wake = std::mem::take(&mut self.st.wake);
                    {
                        let bar = self.st.barriers.get_mut(&id.0).expect("entry");
                        wake.clear();
                        wake.extend(bar.arrived.iter().copied());
                        bar.arrived.clear();
                        bar.max_time = 0.0;
                    }
                    for &w in &wake {
                        if w != i {
                            self.resume(w, release);
                        }
                    }
                    wake.clear();
                    self.st.wake = wake;
                    self.wait_running(i, release);
                    false
                } else {
                    self.block(i);
                    true
                }
            }
            SyncOp::Lock { id } => {
                let m = self.st.mutexes.entry(id.0).or_default();
                if m.held_by.is_none() && m.queue.is_empty() {
                    m.held_by = Some(i);
                    false
                } else {
                    m.queue.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Unlock { id } => {
                let m = self.st.mutexes.entry(id.0).or_default();
                m.held_by = None;
                if let Some(w) = m.queue.pop_front() {
                    m.held_by = Some(w);
                    self.resume(w, t);
                }
                false
            }
            SyncOp::Produce { queue, count } => {
                let mut wake = std::mem::take(&mut self.st.wake_items);
                {
                    let q = self.st.queues.entry(queue.0).or_default();
                    for _ in 0..count {
                        q.items.push_back(t);
                    }
                    wake.clear();
                    while !q.items.is_empty() && !q.waiting.is_empty() {
                        let item = q.items.pop_front().expect("nonempty");
                        let w = q.waiting.pop_front().expect("nonempty");
                        wake.push((w, item));
                    }
                }
                for &(w, item) in &wake {
                    let at = item.max(self.st.threads[w].block_time);
                    self.resume(w, at);
                }
                wake.clear();
                self.st.wake_items = wake;
                false
            }
            SyncOp::Consume { queue } => {
                let q = self.st.queues.entry(queue.0).or_default();
                if let Some(item) = q.items.pop_front() {
                    if item > t {
                        self.wait_running(i, item);
                    }
                    false
                } else {
                    q.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::RwLock { id, write } => {
                let rw = self.st.rwlocks.entry(id.0).or_default();
                let free = rw.writer.is_none() && rw.queue.is_empty();
                let grant = if write { free && rw.readers == 0 } else { free };
                if grant {
                    if write {
                        rw.writer = Some(i);
                    } else {
                        rw.readers += 1;
                    }
                    false
                } else {
                    rw.queue.push_back((i, write));
                    self.block(i);
                    true
                }
            }
            SyncOp::RwUnlock { id } => {
                let mut wake = std::mem::take(&mut self.st.wake);
                {
                    let rw = self.st.rwlocks.entry(id.0).or_default();
                    if rw.writer == Some(i) {
                        rw.writer = None;
                    } else {
                        rw.readers = rw.readers.saturating_sub(1);
                    }
                    wake.clear();
                    rw.admit(&mut wake);
                }
                for &w in &wake {
                    self.resume(w, t);
                }
                wake.clear();
                self.st.wake = wake;
                false
            }
            SyncOp::SemWait { id } => {
                let s = self.st.sems.entry(id.0).or_default();
                if let Some(item) = s.items.pop_front() {
                    if item > t {
                        self.wait_running(i, item);
                    }
                    false
                } else {
                    s.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::SemPost { id, count } => {
                let mut wake = std::mem::take(&mut self.st.wake_items);
                {
                    let s = self.st.sems.entry(id.0).or_default();
                    for _ in 0..count {
                        s.items.push_back(t);
                    }
                    wake.clear();
                    while !s.items.is_empty() && !s.waiting.is_empty() {
                        let item = s.items.pop_front().expect("nonempty");
                        let w = s.waiting.pop_front().expect("nonempty");
                        wake.push((w, item));
                    }
                }
                for &(w, item) in &wake {
                    let at = item.max(self.st.threads[w].block_time);
                    self.resume(w, at);
                }
                wake.clear();
                self.st.wake_items = wake;
                false
            }
        }
    }

    fn run(mut self) -> f64 {
        // Algorithm 2 picks the unblocked thread with the shortest
        // accumulated time. We schedule by *arrival time at the next
        // synchronization event* (time + pending epoch), the discrete-event
        // refinement: every synchronization state change is processed in
        // globally nondecreasing time order, so untimed lock/queue state is
        // always consistent with wall-clock order. Ready threads live in a
        // min-heap keyed by that arrival time (ties to the lowest thread
        // index, matching the old scan); blocked and finished threads cost
        // nothing per scheduling step.
        if !self.st.threads.is_empty() {
            self.post(0); // main thread starts ready at t=0
        }
        loop {
            let Some((_, i)) = self.st.queue.pop() else {
                if self.st.threads.iter().all(|t| t.status == Status::Done) {
                    break;
                }
                panic!("symbolic execution deadlocked");
            };
            debug_assert_eq!(self.st.threads[i].status, Status::Ready);

            // Proceed thread i to its next synchronization event (or end).
            loop {
                let (off, len) = self.tl.ranges[i];
                let events = self.tl.events[i];
                let th = &mut self.st.threads[i];
                if th.at_epoch {
                    if th.idx >= len {
                        self.finish_thread(i);
                        break;
                    }
                    let dur = self.tl.cycles[off + th.idx];
                    th.time += dur;
                    th.active += dur;
                    th.at_epoch = false;
                    if th.idx >= events.len() {
                        // Last epoch: thread ends.
                        th.idx += 1;
                        self.finish_thread(i);
                        break;
                    }
                } else {
                    let ev = events[th.idx];
                    th.idx += 1;
                    th.at_epoch = true;
                    // Whether or not the thread blocked, reschedule: another
                    // thread may now have the smallest accumulated time.
                    self.handle_event(i, ev);
                    break;
                }
            }
            // Re-post the thread if it is still runnable after its event
            // (blocked threads are re-posted by whoever wakes them).
            if self.st.threads[i].status == Status::Ready {
                self.post(i);
            }
        }

        self.st.finish.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BarrierId, DesignPoint, MutexId, QueueId, ThreadId};

    fn cfg() -> MachineConfig {
        let mut c = DesignPoint::Base.config();
        // Zero constants make the arithmetic of tests exact.
        c.sync_overhead_cycles = 0;
        c.spawn_latency_cycles = 0;
        c
    }

    fn barrier(id: u32) -> SyncOp {
        SyncOp::Barrier {
            id: BarrierId(id),
            via_cond: false,
        }
    }

    #[test]
    fn single_thread_sums_epochs() {
        let tl = vec![ThreadTimeline {
            epochs: vec![100.0],
            events: vec![],
        }];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 100.0);
        assert_eq!(s.threads[0].active, 100.0);
        assert_eq!(s.threads[0].idle, 0.0);
    }

    #[test]
    fn barrier_waits_for_slowest() {
        // Two threads: 100 vs 300 to the barrier, then 50 each.
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 50.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }, barrier(0)],
            },
            ThreadTimeline {
                epochs: vec![300.0, 50.0],
                events: vec![barrier(0)],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 350.0);
        assert_eq!(s.threads[0].idle, 200.0, "fast thread waits 200");
        assert_eq!(s.threads[1].idle, 0.0, "slow thread never waits");
    }

    #[test]
    fn inter_barrier_criticality_switches() {
        // Epoch 1: thread 1 slower; epoch 2: thread 0 slower. Total is the
        // sum of per-epoch maxima (the paper's Figure 3(c)).
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 400.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }, barrier(0)],
            },
            ThreadTimeline {
                epochs: vec![300.0, 100.0],
                events: vec![barrier(0)],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 700.0); // max(100,300) + max(400,100)
    }

    #[test]
    fn mutex_serializes_and_orders_by_arrival() {
        // Two threads reach a 100-cycle critical section at times 0 and 10.
        let mk = |lead: f64| ThreadTimeline {
            epochs: vec![lead, 100.0, 0.0],
            events: vec![
                SyncOp::Lock { id: MutexId(0) },
                SyncOp::Unlock { id: MutexId(0) },
            ],
        };
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 0.0, 100.0, 0.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    SyncOp::Lock { id: MutexId(0) },
                    SyncOp::Unlock { id: MutexId(0) },
                ],
            },
            mk(10.0),
        ];
        let s = execute(&tl, &cfg());
        // Thread 0 holds [0,100); thread 1 arrives at 10, waits until 100,
        // leaves at 200.
        assert_eq!(s.threads[1].idle, 90.0);
        assert_eq!(s.total, 200.0);
    }

    #[test]
    fn producer_consumer_starves_consumer() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 500.0, 0.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    SyncOp::Produce {
                        queue: QueueId(0),
                        count: 1,
                    },
                ],
            },
            ThreadTimeline {
                epochs: vec![0.0, 10.0],
                events: vec![SyncOp::Consume { queue: QueueId(0) }],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.threads[1].idle, 500.0);
        assert_eq!(s.total, 510.0);
    }

    #[test]
    fn join_extends_main() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 10.0, 0.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    SyncOp::Join { child: ThreadId(1) },
                ],
            },
            ThreadTimeline {
                epochs: vec![1000.0],
                events: vec![],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 1000.0);
        assert_eq!(s.threads[0].idle, 990.0);
    }

    #[test]
    fn spawn_latency_delays_child() {
        let mut c = cfg();
        c.spawn_latency_cycles = 500;
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 0.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }],
            },
            ThreadTimeline {
                epochs: vec![100.0],
                events: vec![],
            },
        ];
        let s = execute(&tl, &c);
        assert_eq!(s.threads[1].start, 500.0);
        assert_eq!(s.total, 600.0);
    }

    #[test]
    fn overhead_counts_as_active() {
        let mut c = cfg();
        c.sync_overhead_cycles = 40;
        let tl = vec![ThreadTimeline {
            epochs: vec![100.0, 100.0],
            events: vec![barrier(0)],
        }];
        let s = execute(&tl, &c);
        assert_eq!(s.total, 240.0);
        assert_eq!(s.threads[0].active, 240.0);
    }

    #[test]
    fn intervals_partition_active_time() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 50.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }, barrier(0)],
            },
            ThreadTimeline {
                epochs: vec![300.0, 50.0],
                events: vec![barrier(0)],
            },
        ];
        let s = execute(&tl, &cfg());
        for (i, th) in s.threads.iter().enumerate() {
            let covered: f64 = th.intervals.iter().map(|(a, b)| b - a).sum();
            assert!(
                (covered - th.active).abs() < 1e-9,
                "thread {i}: intervals {covered} vs active {}",
                th.active
            );
            assert!((th.finish - th.start - th.active - th.idle).abs() < 1e-9);
        }
    }

    #[test]
    fn lean_path_matches_execute_and_reuses_scratch() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 50.0, 7.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    barrier(0),
                    SyncOp::Join { child: ThreadId(1) },
                ],
            },
            ThreadTimeline {
                epochs: vec![300.0, 50.0],
                events: vec![barrier(0)],
            },
        ];
        let mut c = cfg();
        c.sync_overhead_cycles = 40;
        c.spawn_latency_cycles = 1500;
        let full = execute(&tl, &c);

        let mut cycles = Vec::new();
        let mut ranges = Vec::new();
        let mut events: Vec<&[SyncOp]> = Vec::new();
        for t in &tl {
            ranges.push((cycles.len(), t.epochs.len()));
            cycles.extend_from_slice(&t.epochs);
            events.push(&t.events);
        }
        let participants = barrier_participants(tl.iter().map(|t| t.events.as_slice()));
        let mut scratch = SymScratch::default();
        // Run twice through the same scratch: results must be identical
        // (state fully reset between runs).
        for _ in 0..2 {
            let total = execute_total(
                FlatTimelines {
                    cycles: &cycles,
                    ranges: &ranges,
                    events: &events,
                },
                &participants,
                c.sync_overhead_cycles as f64,
                c.spawn_latency_cycles as f64,
                &mut scratch,
            );
            assert_eq!(total.to_bits(), full.total.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent timeline")]
    fn inconsistent_timeline_panics() {
        let tl = vec![ThreadTimeline {
            epochs: vec![1.0, 2.0],
            events: vec![],
        }];
        execute(&tl, &cfg());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn consume_without_produce_deadlocks() {
        let tl = vec![ThreadTimeline {
            epochs: vec![0.0, 0.0],
            events: vec![SyncOp::Consume { queue: QueueId(0) }],
        }];
        execute(&tl, &cfg());
    }
}

//! Algorithm 2: symbolic execution of synchronization.
//!
//! Phase 2 of RPPM: given each thread's predicted per-epoch active times and
//! its synchronization-event sequence, the symbolic execution repeatedly
//! picks the unblocked thread with the smallest accumulated time and
//! advances it to its next synchronization event, emulating barrier,
//! critical-section, condition-variable, creation and join semantics. The
//! slowest thread determines each event's timing; faster threads accumulate
//! idle (sync) time. The critical path through this schedule is the
//! predicted execution time.

use rppm_trace::{MachineConfig, SyncOp};
use std::collections::{HashMap, VecDeque};

/// One thread's input to the symbolic execution: predicted active cycles per
/// epoch, and the events separating them (`epochs.len() == events.len() + 1`).
#[derive(Debug, Clone, Default)]
pub struct ThreadTimeline {
    /// Predicted active cycles per epoch.
    pub epochs: Vec<f64>,
    /// Synchronization events between epochs.
    pub events: Vec<SyncOp>,
}

/// Outcome of the symbolic execution for one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadSchedule {
    /// Time the thread started (cycles).
    pub start: f64,
    /// Time the thread finished (cycles).
    pub finish: f64,
    /// Total active cycles (sum of epochs + sync-library overhead).
    pub active: f64,
    /// Idle cycles spent waiting on synchronization.
    pub idle: f64,
    /// Active intervals for bottlegraph construction.
    pub intervals: Vec<(f64, f64)>,
}

/// Result of the symbolic execution.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Predicted end-to-end execution time (cycles).
    pub total: f64,
    /// Per-thread schedules.
    pub threads: Vec<ThreadSchedule>,
}

impl Schedule {
    /// Per-thread active intervals (bottlegraph input).
    pub fn intervals(&self) -> Vec<Vec<(f64, f64)>> {
        self.threads.iter().map(|t| t.intervals.clone()).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Ready,
    Blocked,
    Done,
}

struct Thread {
    epochs: Vec<f64>,
    events: Vec<SyncOp>,
    /// Next element to execute: epoch `idx` if `at_epoch`, else event `idx`.
    idx: usize,
    at_epoch: bool,
    time: f64,
    status: Status,
    start: f64,
    active: f64,
    idle: f64,
    block_time: f64,
    intervals: Vec<(f64, f64)>,
    open: f64,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
    max_time: f64,
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    queue: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<f64>,
    waiting: VecDeque<usize>,
}

/// Runs Algorithm 2 over the thread timelines.
///
/// `config` supplies the synchronization constants (library overhead per
/// event, thread-spawn latency) — the same values the simulator uses.
///
/// # Panics
///
/// Panics on structurally inconsistent timelines
/// (`epochs.len() != events.len() + 1`) or a deadlocked schedule.
pub fn execute(timelines: &[ThreadTimeline], config: &MachineConfig) -> Schedule {
    for (i, tl) in timelines.iter().enumerate() {
        assert_eq!(
            tl.epochs.len(),
            tl.events.len() + 1,
            "thread {i}: inconsistent timeline"
        );
    }
    SymExec::new(timelines, config).run()
}

struct SymExec<'a> {
    overhead: f64,
    spawn: f64,
    threads: Vec<Thread>,
    barriers: HashMap<u32, BarrierState>,
    participants: HashMap<u32, usize>,
    mutexes: HashMap<u32, MutexState>,
    queues: HashMap<u32, QueueState>,
    joiners: HashMap<usize, Vec<usize>>,
    finish: Vec<f64>,
    _cfg: &'a MachineConfig,
}

impl<'a> SymExec<'a> {
    fn new(timelines: &[ThreadTimeline], config: &'a MachineConfig) -> Self {
        let threads = timelines
            .iter()
            .enumerate()
            .map(|(i, tl)| Thread {
                epochs: tl.epochs.clone(),
                events: tl.events.clone(),
                idx: 0,
                at_epoch: true,
                time: 0.0,
                status: if i == 0 {
                    Status::Ready
                } else {
                    Status::NotStarted
                },
                start: 0.0,
                active: 0.0,
                idle: 0.0,
                block_time: 0.0,
                intervals: Vec::new(),
                open: 0.0,
            })
            .collect();

        let mut participants: HashMap<u32, usize> = HashMap::new();
        for tl in timelines {
            let mut seen = std::collections::HashSet::new();
            for ev in &tl.events {
                if let SyncOp::Barrier { id, .. } = ev {
                    if seen.insert(id.0) {
                        *participants.entry(id.0).or_insert(0) += 1;
                    }
                }
            }
        }

        SymExec {
            overhead: config.sync_overhead_cycles as f64,
            spawn: config.spawn_latency_cycles as f64,
            threads,
            barriers: HashMap::new(),
            participants,
            mutexes: HashMap::new(),
            queues: HashMap::new(),
            joiners: HashMap::new(),
            finish: vec![0.0; timelines.len()],
            _cfg: config,
        }
    }

    fn block(&mut self, i: usize) {
        let th = &mut self.threads[i];
        th.status = Status::Blocked;
        th.block_time = th.time;
        if th.time > th.open {
            th.intervals.push((th.open, th.time));
        }
    }

    fn resume(&mut self, i: usize, t: f64) {
        let th = &mut self.threads[i];
        if t > th.time {
            th.idle += t - th.time;
            th.time = t;
        }
        th.status = Status::Ready;
        th.open = th.time;
    }

    /// Thread `i`, while running, waits in place until `t`.
    fn wait_running(&mut self, i: usize, t: f64) {
        let th = &mut self.threads[i];
        if t > th.time {
            if th.time > th.open {
                th.intervals.push((th.open, th.time));
            }
            th.idle += t - th.time;
            th.time = t;
            th.open = t;
        }
    }

    fn finish_thread(&mut self, i: usize) {
        let t = self.threads[i].time;
        {
            let th = &mut self.threads[i];
            th.status = Status::Done;
            if t > th.open {
                th.intervals.push((th.open, t));
            }
        }
        self.finish[i] = t;
        if let Some(ws) = self.joiners.remove(&i) {
            for w in ws {
                self.resume(w, t);
            }
        }
    }

    /// Handles the event; returns `true` if the thread blocked.
    fn handle_event(&mut self, i: usize, ev: SyncOp) -> bool {
        // Library overhead: active time.
        {
            let th = &mut self.threads[i];
            th.time += self.overhead;
            th.active += self.overhead;
        }
        let t = self.threads[i].time;
        match ev {
            SyncOp::Create { child } => {
                let c = child.index();
                let start = t + self.spawn;
                let ch = &mut self.threads[c];
                debug_assert_eq!(ch.status, Status::NotStarted);
                ch.status = Status::Ready;
                ch.time = start;
                ch.start = start;
                ch.open = start;
                false
            }
            SyncOp::Join { child } => {
                let c = child.index();
                if self.threads[c].status == Status::Done {
                    let fin = self.finish[c];
                    self.wait_running(i, fin);
                    false
                } else {
                    self.joiners.entry(c).or_default().push(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Barrier { id, .. } => {
                let need = *self.participants.get(&id.0).expect("known barrier");
                let bar = self.barriers.entry(id.0).or_default();
                bar.arrived.push(i);
                bar.max_time = bar.max_time.max(t);
                if bar.arrived.len() >= need {
                    let release = bar.max_time;
                    let arrived = std::mem::take(&mut bar.arrived);
                    bar.max_time = 0.0;
                    for w in arrived {
                        if w != i {
                            self.resume(w, release);
                        }
                    }
                    self.wait_running(i, release);
                    false
                } else {
                    self.block(i);
                    true
                }
            }
            SyncOp::Lock { id } => {
                let m = self.mutexes.entry(id.0).or_default();
                if m.held_by.is_none() && m.queue.is_empty() {
                    m.held_by = Some(i);
                    false
                } else {
                    m.queue.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Unlock { id } => {
                let m = self.mutexes.entry(id.0).or_default();
                m.held_by = None;
                if let Some(w) = m.queue.pop_front() {
                    m.held_by = Some(w);
                    self.resume(w, t);
                }
                false
            }
            SyncOp::Produce { queue, count } => {
                let q = self.queues.entry(queue.0).or_default();
                for _ in 0..count {
                    q.items.push_back(t);
                }
                let mut wake = Vec::new();
                while !q.items.is_empty() && !q.waiting.is_empty() {
                    let item = q.items.pop_front().expect("nonempty");
                    let w = q.waiting.pop_front().expect("nonempty");
                    wake.push((w, item));
                }
                for (w, item) in wake {
                    let at = item.max(self.threads[w].block_time);
                    self.resume(w, at);
                }
                false
            }
            SyncOp::Consume { queue } => {
                let q = self.queues.entry(queue.0).or_default();
                if let Some(item) = q.items.pop_front() {
                    if item > t {
                        self.wait_running(i, item);
                    }
                    false
                } else {
                    q.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
        }
    }

    fn run(mut self) -> Schedule {
        loop {
            // Algorithm 2 picks the unblocked thread with the shortest
            // accumulated time. We schedule by *arrival time at the next
            // synchronization event* (time + pending epoch), the
            // discrete-event refinement: every synchronization state change
            // is then processed in globally nondecreasing time order, so
            // untimed lock/queue state is always consistent with wall-clock
            // order.
            let mut best: Option<(usize, f64)> = None;
            for (i, th) in self.threads.iter().enumerate() {
                if th.status == Status::Ready {
                    let eta = if th.at_epoch && th.idx < th.epochs.len() {
                        th.time + th.epochs[th.idx]
                    } else {
                        th.time
                    };
                    if best.is_none_or(|(_, bt)| eta < bt) {
                        best = Some((i, eta));
                    }
                }
            }
            let Some((i, _)) = best else {
                if self.threads.iter().all(|t| t.status == Status::Done) {
                    break;
                }
                panic!("symbolic execution deadlocked");
            };

            // Proceed thread i to its next synchronization event (or end).
            loop {
                let th = &mut self.threads[i];
                if th.at_epoch {
                    if th.idx >= th.epochs.len() {
                        self.finish_thread(i);
                        break;
                    }
                    let dur = th.epochs[th.idx];
                    th.time += dur;
                    th.active += dur;
                    th.at_epoch = false;
                    if th.idx >= th.events.len() {
                        // Last epoch: thread ends.
                        th.idx += 1;
                        self.finish_thread(i);
                        break;
                    }
                } else {
                    let ev = th.events[th.idx];
                    th.idx += 1;
                    th.at_epoch = true;
                    // Whether or not the thread blocked, reschedule: another
                    // thread may now have the smallest accumulated time.
                    self.handle_event(i, ev);
                    break;
                }
            }
        }

        let total = self.finish.iter().cloned().fold(0.0, f64::max);
        let threads = self
            .threads
            .into_iter()
            .enumerate()
            .map(|(i, th)| ThreadSchedule {
                start: th.start,
                finish: self.finish[i],
                active: th.active,
                idle: th.idle,
                intervals: th.intervals,
            })
            .collect();
        Schedule { total, threads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BarrierId, DesignPoint, MutexId, QueueId, ThreadId};

    fn cfg() -> MachineConfig {
        let mut c = DesignPoint::Base.config();
        // Zero constants make the arithmetic of tests exact.
        c.sync_overhead_cycles = 0;
        c.spawn_latency_cycles = 0;
        c
    }

    fn barrier(id: u32) -> SyncOp {
        SyncOp::Barrier {
            id: BarrierId(id),
            via_cond: false,
        }
    }

    #[test]
    fn single_thread_sums_epochs() {
        let tl = vec![ThreadTimeline {
            epochs: vec![100.0],
            events: vec![],
        }];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 100.0);
        assert_eq!(s.threads[0].active, 100.0);
        assert_eq!(s.threads[0].idle, 0.0);
    }

    #[test]
    fn barrier_waits_for_slowest() {
        // Two threads: 100 vs 300 to the barrier, then 50 each.
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 50.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }, barrier(0)],
            },
            ThreadTimeline {
                epochs: vec![300.0, 50.0],
                events: vec![barrier(0)],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 350.0);
        assert_eq!(s.threads[0].idle, 200.0, "fast thread waits 200");
        assert_eq!(s.threads[1].idle, 0.0, "slow thread never waits");
    }

    #[test]
    fn inter_barrier_criticality_switches() {
        // Epoch 1: thread 1 slower; epoch 2: thread 0 slower. Total is the
        // sum of per-epoch maxima (the paper's Figure 3(c)).
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 400.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }, barrier(0)],
            },
            ThreadTimeline {
                epochs: vec![300.0, 100.0],
                events: vec![barrier(0)],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 700.0); // max(100,300) + max(400,100)
    }

    #[test]
    fn mutex_serializes_and_orders_by_arrival() {
        // Two threads reach a 100-cycle critical section at times 0 and 10.
        let mk = |lead: f64| ThreadTimeline {
            epochs: vec![lead, 100.0, 0.0],
            events: vec![
                SyncOp::Lock { id: MutexId(0) },
                SyncOp::Unlock { id: MutexId(0) },
            ],
        };
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 0.0, 100.0, 0.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    SyncOp::Lock { id: MutexId(0) },
                    SyncOp::Unlock { id: MutexId(0) },
                ],
            },
            mk(10.0),
        ];
        let s = execute(&tl, &cfg());
        // Thread 0 holds [0,100); thread 1 arrives at 10, waits until 100,
        // leaves at 200.
        assert_eq!(s.threads[1].idle, 90.0);
        assert_eq!(s.total, 200.0);
    }

    #[test]
    fn producer_consumer_starves_consumer() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 500.0, 0.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    SyncOp::Produce {
                        queue: QueueId(0),
                        count: 1,
                    },
                ],
            },
            ThreadTimeline {
                epochs: vec![0.0, 10.0],
                events: vec![SyncOp::Consume { queue: QueueId(0) }],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.threads[1].idle, 500.0);
        assert_eq!(s.total, 510.0);
    }

    #[test]
    fn join_extends_main() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 10.0, 0.0],
                events: vec![
                    SyncOp::Create { child: ThreadId(1) },
                    SyncOp::Join { child: ThreadId(1) },
                ],
            },
            ThreadTimeline {
                epochs: vec![1000.0],
                events: vec![],
            },
        ];
        let s = execute(&tl, &cfg());
        assert_eq!(s.total, 1000.0);
        assert_eq!(s.threads[0].idle, 990.0);
    }

    #[test]
    fn spawn_latency_delays_child() {
        let mut c = cfg();
        c.spawn_latency_cycles = 500;
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 0.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }],
            },
            ThreadTimeline {
                epochs: vec![100.0],
                events: vec![],
            },
        ];
        let s = execute(&tl, &c);
        assert_eq!(s.threads[1].start, 500.0);
        assert_eq!(s.total, 600.0);
    }

    #[test]
    fn overhead_counts_as_active() {
        let mut c = cfg();
        c.sync_overhead_cycles = 40;
        let tl = vec![ThreadTimeline {
            epochs: vec![100.0, 100.0],
            events: vec![barrier(0)],
        }];
        let s = execute(&tl, &c);
        assert_eq!(s.total, 240.0);
        assert_eq!(s.threads[0].active, 240.0);
    }

    #[test]
    fn intervals_partition_active_time() {
        let tl = vec![
            ThreadTimeline {
                epochs: vec![0.0, 100.0, 50.0],
                events: vec![SyncOp::Create { child: ThreadId(1) }, barrier(0)],
            },
            ThreadTimeline {
                epochs: vec![300.0, 50.0],
                events: vec![barrier(0)],
            },
        ];
        let s = execute(&tl, &cfg());
        for (i, th) in s.threads.iter().enumerate() {
            let covered: f64 = th.intervals.iter().map(|(a, b)| b - a).sum();
            assert!(
                (covered - th.active).abs() < 1e-9,
                "thread {i}: intervals {covered} vs active {}",
                th.active
            );
            assert!((th.finish - th.start - th.active - th.idle).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent timeline")]
    fn inconsistent_timeline_panics() {
        let tl = vec![ThreadTimeline {
            epochs: vec![1.0, 2.0],
            events: vec![],
        }];
        execute(&tl, &cfg());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn consume_without_produce_deadlocks() {
        let tl = vec![ThreadTimeline {
            epochs: vec![0.0, 0.0],
            events: vec![SyncOp::Consume { queue: QueueId(0) }],
        }];
        execute(&tl, &cfg());
    }
}

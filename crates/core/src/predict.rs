//! Top-level prediction: RPPM and the naive MAIN / CRIT baselines.

use crate::eq1::{predict_epoch, predict_epoch_isolated, EpochPrediction};
use crate::symexec::{execute, Schedule, ThreadTimeline};
use rppm_profiler::ApplicationProfile;
use rppm_trace::{CpiStack, MachineConfig};

/// Per-thread prediction outcome.
#[derive(Debug, Clone, Default)]
pub struct ThreadPrediction {
    /// Predicted active cycles (Phase 1, summed over epochs).
    pub active_cycles: f64,
    /// Predicted idle cycles from synchronization (Phase 2).
    pub sync_cycles: f64,
    /// Predicted finish time.
    pub finish: f64,
    /// Predicted CPI stack (epoch components + sync idle).
    pub cpi: CpiStack,
    /// Per-epoch predictions (exposed for analysis; C-INTERMEDIATE).
    pub epochs: Vec<EpochPrediction>,
}

/// Full RPPM prediction for one workload on one machine configuration.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Workload name.
    pub program: String,
    /// Configuration name.
    pub config: String,
    /// Predicted end-to-end execution time in cycles.
    pub total_cycles: f64,
    /// Predicted end-to-end execution time in seconds.
    pub total_seconds: f64,
    /// Per-thread predictions.
    pub threads: Vec<ThreadPrediction>,
    /// Predicted active intervals per thread (bottlegraph input).
    pub intervals: Vec<Vec<(f64, f64)>>,
}

impl Prediction {
    /// Average per-thread CPI stack (Figure 5 aggregation).
    pub fn mean_cpi_stack(&self) -> CpiStack {
        let mut acc = CpiStack::default();
        for t in &self.threads {
            acc.add(&t.cpi);
        }
        acc.scaled(1.0 / self.threads.len().max(1) as f64)
    }
}

fn predict_with(
    profile: &ApplicationProfile,
    config: &MachineConfig,
    per_epoch: impl Fn(&rppm_profiler::EpochProfile, &MachineConfig) -> EpochPrediction,
) -> (Vec<Vec<EpochPrediction>>, Schedule) {
    let epoch_preds: Vec<Vec<EpochPrediction>> = profile
        .threads
        .iter()
        .map(|t| t.epochs.iter().map(|e| per_epoch(e, config)).collect())
        .collect();
    let timelines: Vec<ThreadTimeline> = profile
        .threads
        .iter()
        .zip(&epoch_preds)
        .map(|(t, preds)| ThreadTimeline {
            epochs: preds.iter().map(|p| p.cycles).collect(),
            events: t.events.clone(),
        })
        .collect();
    let schedule = execute(&timelines, config);
    (epoch_preds, schedule)
}

/// Predicts multi-threaded execution time with the full RPPM model:
/// per-epoch active times from Equation 1 (using the multi-threaded
/// StatStack extension for shared-cache and coherence effects), then
/// synchronization overhead via symbolic execution (Algorithm 2).
///
/// # Panics
///
/// Panics if the profile is structurally inconsistent.
pub fn predict(profile: &ApplicationProfile, config: &MachineConfig) -> Prediction {
    assert!(profile.is_consistent(), "inconsistent profile");
    let (epoch_preds, schedule) = predict_with(profile, config, predict_epoch);
    assemble(profile, config, epoch_preds, schedule)
}

/// Builds the full [`Prediction`] from per-epoch predictions plus the
/// symbolic-execution schedule — shared by [`predict`] and
/// `PreparedProfile::predict`.
pub(crate) fn assemble(
    profile: &ApplicationProfile,
    config: &MachineConfig,
    epoch_preds: Vec<Vec<EpochPrediction>>,
    schedule: Schedule,
) -> Prediction {
    let threads: Vec<ThreadPrediction> = epoch_preds
        .into_iter()
        .zip(&schedule.threads)
        .map(|(preds, sched)| {
            let mut cpi = CpiStack::default();
            for p in &preds {
                cpi.add(&p.stack);
            }
            cpi.sync = sched.idle + (sched.active - preds.iter().map(|p| p.cycles).sum::<f64>());
            ThreadPrediction {
                active_cycles: sched.active,
                sync_cycles: sched.idle,
                finish: sched.finish,
                cpi,
                epochs: preds,
            }
        })
        .collect();

    Prediction {
        program: profile.name.clone(),
        config: config.name.clone(),
        total_cycles: schedule.total,
        total_seconds: config.cycles_to_seconds(schedule.total),
        threads,
        intervals: schedule.intervals(),
    }
}

/// The MAIN baseline (Section II-C): apply the single-threaded model to the
/// main thread only and use its active time as the program prediction.
/// No synchronization, no interference, no coherence.
pub fn predict_main(profile: &ApplicationProfile, config: &MachineConfig) -> f64 {
    let main = profile.threads.first().expect("profile has a main thread");
    main.epochs
        .iter()
        .map(|e| predict_epoch_isolated(e, config).cycles)
        .sum()
}

/// The CRIT baseline (Section II-C): apply the single-threaded model to
/// every thread in isolation and take the slowest (critical) thread's
/// active time as the program prediction.
pub fn predict_crit(profile: &ApplicationProfile, config: &MachineConfig) -> f64 {
    profile
        .threads
        .iter()
        .map(|t| {
            t.epochs
                .iter()
                .map(|e| predict_epoch_isolated(e, config).cycles)
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_profiler::profile as run_profiler;
    use rppm_trace::{AddressPattern, BlockSpec, DesignPoint, ProgramBuilder, Region};

    fn balanced_program() -> rppm_trace::Program {
        let mut b = ProgramBuilder::new("balanced", 4);
        let bar = b.alloc_barrier();
        let r = b.alloc_region(4096);
        b.spawn_workers();
        for t in 0..4u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(20_000, 3 + t as u64)
                        .loads(0.25)
                        .branches(0.1)
                        .addr(AddressPattern::stream(r.chunk(t as u64, 4)), 1.0),
                )
                .barrier(bar);
        }
        b.join_workers();
        b.build()
    }

    fn imbalanced_program() -> rppm_trace::Program {
        let mut b = ProgramBuilder::new("imbalanced", 3);
        b.spawn_workers();
        // Main does nothing; worker 1 does 10x the work of worker 2.
        b.thread(1u32)
            .block(BlockSpec::new(100_000, 1).deps(0.3, 4.0));
        b.thread(2u32)
            .block(BlockSpec::new(10_000, 2).deps(0.3, 4.0));
        b.join_workers();
        b.build()
    }

    #[test]
    fn rppm_prediction_is_positive_and_consistent() {
        let prof = run_profiler(&balanced_program());
        let pred = predict(&prof, &DesignPoint::Base.config());
        assert!(pred.total_cycles > 0.0);
        assert_eq!(pred.threads.len(), 4);
        for t in &pred.threads {
            assert!(t.finish <= pred.total_cycles + 1e-9);
            assert!(t.cpi.total() > 0.0);
        }
    }

    #[test]
    fn total_at_least_slowest_thread_active() {
        let prof = run_profiler(&balanced_program());
        let pred = predict(&prof, &DesignPoint::Base.config());
        let max_active = pred
            .threads
            .iter()
            .map(|t| t.active_cycles)
            .fold(0.0, f64::max);
        assert!(pred.total_cycles >= max_active - 1e-9);
    }

    #[test]
    fn main_underestimates_when_main_is_idle() {
        let prof = run_profiler(&imbalanced_program());
        let cfg = DesignPoint::Base.config();
        let main = predict_main(&prof, &cfg);
        let rppm = predict(&prof, &cfg).total_cycles;
        // The main thread does almost nothing: MAIN must grossly
        // underestimate (the Parsec failure mode from Figure 4).
        assert!(main < 0.2 * rppm, "main {main} vs rppm {rppm}");
    }

    #[test]
    fn crit_between_main_and_rppm_for_imbalance() {
        let prof = run_profiler(&imbalanced_program());
        let cfg = DesignPoint::Base.config();
        let main = predict_main(&prof, &cfg);
        let crit = predict_crit(&prof, &cfg);
        let rppm = predict(&prof, &cfg).total_cycles;
        assert!(crit > main, "crit picks the heavy worker");
        // CRIT ignores spawn/join structure but captures the critical
        // thread; it should be within 2x of RPPM here.
        assert!(
            crit <= rppm * 1.5 && crit >= rppm * 0.3,
            "crit {crit} rppm {rppm}"
        );
    }

    #[test]
    fn prediction_time_scales_with_frequency() {
        // Same cycle behaviour, different frequency: compute-bound work
        // takes proportionally less wall time at higher frequency.
        let mut b = ProgramBuilder::new("freq", 1);
        b.thread(0u32)
            .block(BlockSpec::new(50_000, 5).deps(0.2, 6.0));
        let prof = run_profiler(&b.build());

        let base = DesignPoint::Base.config();
        let mut fast = base.clone();
        fast.freq_ghz = 5.0;
        fast.name = "fast".into();
        let t_base = predict(&prof, &base).total_seconds;
        let t_fast = predict(&prof, &fast).total_seconds;
        assert!(
            (t_base / t_fast - 2.0).abs() < 0.05,
            "2x frequency halves compute-bound time: {t_base} vs {t_fast}"
        );
    }

    #[test]
    fn profile_once_predict_many_configs() {
        let prof = run_profiler(&balanced_program());
        let mut last = 0.0;
        for dp in DesignPoint::ALL {
            let p = predict(&prof, &dp.config());
            assert!(p.total_cycles > 0.0, "{dp} predicts nonzero");
            last = p.total_cycles;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn memory_bound_chained_work_prefers_big_windows() {
        // All five design points have equal peak ops/s and the DRAM latency
        // in ns is constant. With partially chained misses the small-ROB
        // design cannot overlap them (low MLP) while the big-ROB one can,
        // so the wide/slow design wins in *time* despite its low frequency.
        let mut b = ProgramBuilder::new("membound", 1);
        let r = Region::new(0, 4 << 20);
        b.thread(0u32).block(
            BlockSpec::new(100_000, 6)
                .loads(0.25)
                .deps(0.0, 1.0)
                .load_chain(0.8)
                .addr(AddressPattern::stream(r), 1.0),
        );
        let prof = run_profiler(&b.build());
        let t_small = predict(&prof, &DesignPoint::Smallest.config()).total_seconds;
        let t_big = predict(&prof, &DesignPoint::Biggest.config()).total_seconds;
        assert!(
            t_big < t_small,
            "large-window design should win for chained memory-bound work: {t_big} vs {t_small}"
        );
    }

    #[test]
    fn single_epoch_profile_predicts() {
        // A profile with one thread and one epoch (no sync at all).
        let mut b = ProgramBuilder::new("solo", 1);
        b.thread(0u32)
            .block(BlockSpec::new(5_000, 3).deps(0.3, 4.0));
        let prof = run_profiler(&b.build());
        let p = predict(&prof, &DesignPoint::Base.config());
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.threads[0].sync_cycles, 0.0);
        assert!(p.total_cycles > 1_000.0);
    }

    #[test]
    fn baselines_equal_rppm_for_single_thread_no_sync() {
        // With one thread and no synchronization, MAIN == CRIT and RPPM's
        // active time matches them (phase 2 adds nothing).
        let mut b = ProgramBuilder::new("solo", 1);
        b.thread(0u32).block(
            BlockSpec::new(20_000, 9)
                .loads(0.2)
                .addr(AddressPattern::random(Region::new(0, 2_000)), 1.0),
        );
        let prof = run_profiler(&b.build());
        let cfg = DesignPoint::Base.config();
        let main = predict_main(&prof, &cfg);
        let crit = predict_crit(&prof, &cfg);
        let rppm = predict(&prof, &cfg);
        assert!((main - crit).abs() < 1e-9);
        let active = rppm.threads[0].active_cycles;
        assert!(
            (active - main).abs() / main < 0.05,
            "active {active} vs single-threaded model {main}"
        );
    }

    #[test]
    fn cpi_stack_components_cover_active_time() {
        let prof = run_profiler(&balanced_program());
        let pred = predict(&prof, &DesignPoint::Base.config());
        for t in &pred.threads {
            let explained = t.cpi.total();
            let wall = t.finish; // thread 0 starts at 0; workers later
            assert!(explained > 0.0 && explained <= wall * 1.5);
        }
    }
}

//! Bottle graphs (Du Bois et al., OOPSLA 2013): visualizing parallelism and
//! criticality per thread.
//!
//! Each thread is a box: its *height* is the thread's share of total
//! execution time (time integral of `1/k(t)` while the thread is active,
//! where `k(t)` is the number of active threads — heights therefore sum to
//! the total execution time), and its *width* is the thread's average
//! parallelism while active. Stacking boxes widest-at-the-bottom makes the
//! scalability bottleneck visually pop out at the top.

use serde::{Deserialize, Serialize};

/// One thread's box in a bottlegraph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BottleBox {
    /// Thread index.
    pub thread: usize,
    /// Thread's share of total execution time, normalized to `[0, 1]`.
    pub height: f64,
    /// Average number of concurrently active threads while this thread is
    /// active (including itself); 0 for a thread that never ran.
    pub parallelism: f64,
}

/// A bottlegraph: one box per thread, heights summing to ~1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bottlegraph {
    /// Boxes sorted widest (most parallel) first — bottom-up stacking order.
    pub boxes: Vec<BottleBox>,
    /// Total execution time the heights are normalized by (cycles).
    pub total: f64,
}

impl Bottlegraph {
    /// Builds a bottlegraph from per-thread active intervals.
    ///
    /// `intervals[t]` lists disjoint, ordered `(start, end)` spans during
    /// which thread `t` was active. `total` is the end-to-end execution
    /// time; if zero, it is inferred from the latest interval end.
    pub fn from_intervals(intervals: &[Vec<(f64, f64)>], total: f64) -> Bottlegraph {
        let n = intervals.len();
        let inferred = intervals
            .iter()
            .flat_map(|iv| iv.iter().map(|&(_, e)| e))
            .fold(0.0, f64::max);
        let total = if total > 0.0 { total } else { inferred };

        // Event sweep over all interval edges.
        let mut events: Vec<(f64, i32, usize)> = Vec::new();
        for (t, iv) in intervals.iter().enumerate() {
            for &(s, e) in iv {
                if e > s {
                    events.push((s, 1, t));
                    events.push((e, -1, t));
                }
            }
        }
        // At equal timestamps, process interval ends before starts so that
        // back-to-back intervals of one thread do not look like an overlap.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut active = vec![false; n];
        let mut k = 0i64;
        let mut share = vec![0.0f64; n];
        let mut par_weighted = vec![0.0f64; n];
        let mut active_time = vec![0.0f64; n];
        let mut prev = events.first().map(|e| e.0).unwrap_or(0.0);

        for (t, delta, thread) in events {
            let dt = t - prev;
            if dt > 0.0 && k > 0 {
                for (i, &a) in active.iter().enumerate() {
                    if a {
                        share[i] += dt / k as f64;
                        par_weighted[i] += dt * k as f64;
                        active_time[i] += dt;
                    }
                }
            }
            prev = t;
            if delta > 0 {
                debug_assert!(!active[thread], "overlapping intervals for thread {thread}");
                active[thread] = true;
                k += 1;
            } else {
                active[thread] = false;
                k -= 1;
            }
        }

        let mut boxes: Vec<BottleBox> = (0..n)
            .map(|t| BottleBox {
                thread: t,
                height: if total > 0.0 { share[t] / total } else { 0.0 },
                parallelism: if active_time[t] > 0.0 {
                    par_weighted[t] / active_time[t]
                } else {
                    0.0
                },
            })
            .collect();
        boxes.sort_by(|a, b| b.parallelism.total_cmp(&a.parallelism));
        Bottlegraph { boxes, total }
    }

    /// Sum of box heights; ≈1 when some thread is active at every instant,
    /// less when the schedule has fully idle gaps.
    pub fn covered(&self) -> f64 {
        self.boxes.iter().map(|b| b.height).sum()
    }

    /// The bottleneck: the tallest (least parallel) box.
    pub fn bottleneck(&self) -> Option<&BottleBox> {
        self.boxes
            .iter()
            .max_by(|a, b| a.height.total_cmp(&b.height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_balanced_four_threads() {
        // Four threads active [0,100]: each has height 1/4, parallelism 4.
        let iv: Vec<Vec<(f64, f64)>> = (0..4).map(|_| vec![(0.0, 100.0)]).collect();
        let g = Bottlegraph::from_intervals(&iv, 100.0);
        for b in &g.boxes {
            assert!((b.height - 0.25).abs() < 1e-9, "{b:?}");
            assert!((b.parallelism - 4.0).abs() < 1e-9);
        }
        assert!((g.covered() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_thread_dominates() {
        // Thread 0 alone [0,50]; threads 0..2 together [50,100].
        let iv = vec![vec![(0.0, 100.0)], vec![(50.0, 100.0)]];
        let g = Bottlegraph::from_intervals(&iv, 100.0);
        let t0 = g.boxes.iter().find(|b| b.thread == 0).expect("exists");
        let t1 = g.boxes.iter().find(|b| b.thread == 1).expect("exists");
        // t0: 50 alone + 25 shared = 75; t1: 25.
        assert!((t0.height - 0.75).abs() < 1e-9);
        assert!((t1.height - 0.25).abs() < 1e-9);
        // t0 parallelism: (50*1 + 50*2)/100 = 1.5; t1: 2.
        assert!((t0.parallelism - 1.5).abs() < 1e-9);
        assert!((t1.parallelism - 2.0).abs() < 1e-9);
        // Stacking: widest first.
        assert_eq!(g.boxes[0].thread, 1);
        // Bottleneck is the serial thread.
        assert_eq!(g.bottleneck().expect("nonempty").thread, 0);
    }

    #[test]
    fn idle_gaps_reduce_coverage() {
        let iv = vec![vec![(0.0, 40.0), (60.0, 100.0)]];
        let g = Bottlegraph::from_intervals(&iv, 100.0);
        assert!((g.covered() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_thread_gets_zero_box() {
        let iv = vec![vec![(0.0, 10.0)], vec![]];
        let g = Bottlegraph::from_intervals(&iv, 10.0);
        let t1 = g.boxes.iter().find(|b| b.thread == 1).expect("exists");
        assert_eq!(t1.height, 0.0);
        assert_eq!(t1.parallelism, 0.0);
    }

    #[test]
    fn total_inferred_when_zero() {
        let iv = vec![vec![(0.0, 200.0)]];
        let g = Bottlegraph::from_intervals(&iv, 0.0);
        assert_eq!(g.total, 200.0);
        assert!((g.covered() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heights_sum_to_one_for_gapless_schedules() {
        // Staggered but gapless.
        let iv = vec![
            vec![(0.0, 30.0), (30.0, 60.0)],
            vec![(10.0, 50.0)],
            vec![(20.0, 60.0)],
        ];
        let g = Bottlegraph::from_intervals(&iv, 60.0);
        assert!((g.covered() - 1.0).abs() < 1e-9, "covered {}", g.covered());
    }
}

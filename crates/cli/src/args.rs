//! Shared argument-parsing helpers for the `rppm` subcommands.
//!
//! Deliberately tiny (the workspace builds offline, so no `clap`): each
//! subcommand walks its argument vector with [`ArgStream`], which handles
//! `--flag value` / `--flag=value` spellings, typed value parsing, and
//! turns every malformed invocation into a [`CliError`] instead of a
//! panic.

use std::fmt::Display;
use std::str::FromStr;

/// A user-facing CLI failure. Both variants exit with status 2; `Usage`
/// additionally reprints the offending subcommand's usage text.
#[derive(Debug)]
pub enum CliError {
    /// Malformed invocation: message plus the usage text to show.
    Usage {
        /// What was wrong.
        message: String,
        /// The subcommand usage text.
        usage: &'static str,
    },
    /// A user-level failure (missing file, bad magic, unknown workload...),
    /// rendered as a one-line message.
    User(String),
}

impl CliError {
    /// A malformed-invocation error carrying `usage`.
    pub fn usage(message: impl Into<String>, usage: &'static str) -> Self {
        CliError::Usage {
            message: message.into(),
            usage,
        }
    }

    /// A user-level failure from anything displayable (e.g. `rppm::Error`).
    pub fn user(message: impl Display) -> Self {
        CliError::User(message.to_string())
    }
}

impl From<rppm::Error> for CliError {
    fn from(e: rppm::Error) -> Self {
        CliError::user(e)
    }
}

/// Walks a subcommand's argument vector.
pub struct ArgStream {
    items: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl ArgStream {
    /// Wraps `argv` (without the program or subcommand name); `usage` is
    /// attached to every parse error.
    pub fn new(argv: Vec<String>, usage: &'static str) -> Self {
        ArgStream {
            items: argv.into_iter(),
            usage,
        }
    }

    /// Next raw argument, if any. A `--flag=value` spelling is split: the
    /// flag is returned and the value is pushed back for [`value_of`].
    ///
    /// [`value_of`]: ArgStream::value_of
    pub fn next(&mut self) -> Option<Arg> {
        let raw = self.items.next()?;
        if let Some(flag) = raw.strip_prefix("--") {
            if let Some((name, value)) = flag.split_once('=') {
                return Some(Arg {
                    raw: format!("--{name}"),
                    inline_value: Some(value.to_string()),
                });
            }
        }
        Some(Arg {
            raw,
            inline_value: None,
        })
    }

    /// The value for flag `arg`: its inline `=value` if present, otherwise
    /// the next argument. Errors if neither exists.
    pub fn value_of(&mut self, arg: &Arg) -> Result<String, CliError> {
        if let Some(v) = &arg.inline_value {
            return Ok(v.clone());
        }
        self.items
            .next()
            .ok_or_else(|| CliError::usage(format!("{} needs a value", arg.raw), self.usage))
    }

    /// The value for flag `arg`, parsed as `T`.
    pub fn parse_of<T>(&mut self, arg: &Arg) -> Result<T, CliError>
    where
        T: FromStr,
        T::Err: Display,
    {
        let raw = self.value_of(arg)?;
        parse_with(&raw, &arg.raw, self.usage)
    }

    /// An "unknown flag" error for `arg`.
    pub fn unknown(&self, arg: &Arg) -> CliError {
        CliError::usage(format!("unknown flag `{}`", arg.raw), self.usage)
    }

    /// A usage error with this stream's usage text.
    pub fn error(&self, message: impl Into<String>) -> CliError {
        CliError::usage(message, self.usage)
    }
}

/// One argument as seen by [`ArgStream::next`].
pub struct Arg {
    raw: String,
    inline_value: Option<String>,
}

impl Arg {
    /// The argument text (for `--flag=value` spellings, just `--flag`).
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Whether this looks like a flag (leading `--`).
    pub fn is_flag(&self) -> bool {
        self.raw.starts_with("--")
    }

    /// Consumes the argument as a positional value.
    ///
    /// # Panics
    ///
    /// Panics if the argument carried an inline `=value` (flags must be
    /// checked with [`Arg::is_flag`] first).
    pub fn into_positional(self) -> String {
        assert!(
            self.inline_value.is_none(),
            "flag treated as positional argument"
        );
        self.raw
    }
}

/// Parses `raw` as `T`, attributing failures to `what`.
pub fn parse_with<T>(raw: &str, what: &str, usage: &'static str) -> Result<T, CliError>
where
    T: FromStr,
    T::Err: Display,
{
    raw.parse()
        .map_err(|e| CliError::usage(format!("{what}: cannot parse `{raw}`: {e}"), usage))
}

//! The unified `rppm` command-line interface.
//!
//! One binary drives every workflow the old per-report binaries covered:
//!
//! ```text
//! rppm report <name> [args]   # one table/figure of the paper
//! rppm run-all [...]          # regenerate everything under results/
//! rppm import [...]           # predict trace files / export workloads
//! rppm convert IN OUT         # JSON <-> RPT1 container conversion
//! rppm dse WORKLOAD [...]     # million-point design-space exploration
//! rppm golden diff|update     # accuracy-regression gate / baselines
//! rppm bench guard FRESH.json # perf-regression gate
//! ```
//!
//! User errors (missing files, bad magic, unknown workloads, malformed
//! flags) exit with status 2 and a one-line `error: ...` message — never a
//! panic or a backtrace. Regression gates that detect drift exit 1.

mod args;
mod commands;

use args::CliError;

const USAGE: &str = "rppm — RPPM: profile once, predict many (ISPASS 2019 reproduction)

usage: rppm <command> [args]

commands:
  report <name> [args]    print one report: table1|table2|table3|table4|table5|
                          fig4|fig5|fig6|ablation (old per-report binaries)
  run-all [args]          regenerate every report under results/ in-process
  import [args]           predict trace files across all design points, or
                          export a catalog workload as a trace file
  convert IN OUT          convert a trace between the JSON and RPT1 containers
                          (--ops records a replayable micro-op stream)
  trace-info FILE...      inspect RPT1 containers: version, per-section byte
                          counts, recorded op-stream totals
  dse WORKLOAD [args]     sweep a 10^5-point design space from one profile:
                          batched Eq.1, constraint filters, Pareto frontier
  sim-profile [args]      the simulator profiling itself: op mix, hot op
                          pairs, fusion/dispatch stats (PGO observation)
  serve [args]            long-lived HTTP prediction service over the
                          profile-once cache (bounded memory, job queue)
  load-gen [args]         benchmark client for `rppm serve`; emits a
                          CRITERION_JSON capture for `rppm bench guard`
  golden diff|update      accuracy-regression gate over results/golden/
  bench guard FRESH.json  perf-regression gate over BENCH_speed.json ratios
  bench rss [args]        peak-RSS of in-memory vs out-of-core profiling,
                          merged into the same capture as rss/* rows
  help                    show this message

run `rppm <command> --help` for each command's usage.";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        println!("{USAGE}");
        return 0;
    }
    let command = argv.remove(0);
    let result = match command.as_str() {
        "report" => commands::report::run(argv),
        "run-all" => commands::run_all::run(argv),
        "import" => commands::import::run(argv),
        "convert" => commands::convert::run(argv),
        "trace-info" => commands::trace_info::run(argv),
        "dse" => commands::dse::run(argv),
        "sim-profile" => commands::sim_profile::run(argv),
        "serve" => commands::serve::run(argv),
        "load-gen" => commands::load_gen::run(argv),
        "golden" => commands::golden::run(argv),
        "bench" => commands::bench_guard::run(argv),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(CliError::usage(format!("unknown command `{other}`"), USAGE)),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Usage { message, usage }) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{usage}");
            2
        }
        Err(CliError::User(message)) => {
            eprintln!("error: {message}");
            2
        }
    }
}

//! `rppm serve` — run the long-lived prediction service.

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm::CacheBudget;
use rppm_serve::{ServeConfig, Server};

const USAGE: &str = "usage: rppm serve [--addr HOST:PORT] [--workers N] [--runners N] [--jobs N]
       [--max-entries N] [--max-bytes BYTES] [--max-body BYTES]
       [--spool-bytes BYTES] [--max-uploads N]

Serves the profile-once session over HTTP/1.1 until POST /shutdown:

  GET  /healthz              liveness probe
  GET  /stats                cache + job-queue counters
  POST /traces               upload an RPT1/JSON trace -> profiling job id
  GET  /jobs/<id>            poll a profiling job
  GET  /predict?workload=N   one prediction (&design=, &scale=, &seed=, or &trace=FP)
  GET  /sweep?workload=N     all five Table IV design points
  GET  /dse?workload=N       design-space sweep, byte-identical to `rppm dse --json`
  POST /shutdown             drain and exit

--max-entries / --max-bytes bound the profile cache (LRU eviction; default
unbounded like the offline tools — long-lived deployments should set one).
--max-body caps trace uploads (default 64 MiB); uploads above --spool-bytes
(default 1 MiB) are spooled to disk and imported through the out-of-core
streaming reader instead of being held in memory. --workers sizes the HTTP
pool, --runners the profiling-job pool, --jobs the threads per sweep.";

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut config = ServeConfig {
        addr: "127.0.0.1:7077".to_string(),
        ..ServeConfig::default()
    };
    let mut budget = CacheBudget::unbounded();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut config.jobs)? {
            continue;
        }
        match arg.as_str() {
            "--addr" => config.addr = args.value_of(&arg)?,
            "--workers" => {
                let n: usize = args.parse_of(&arg)?;
                if n == 0 {
                    return Err(args.error("--workers must be at least 1, got 0"));
                }
                config.workers = n;
            }
            "--runners" => {
                let n: usize = args.parse_of(&arg)?;
                if n == 0 {
                    return Err(args.error("--runners must be at least 1, got 0"));
                }
                config.runners = n;
            }
            "--max-entries" => budget = budget.with_entries(args.parse_of(&arg)?),
            "--max-bytes" => budget = budget.with_bytes(args.parse_of(&arg)?),
            "--max-body" => config.max_body_bytes = args.parse_of(&arg)?,
            "--spool-bytes" => config.spool_bytes = args.parse_of(&arg)?,
            "--max-uploads" => config.max_uploads = args.parse_of(&arg)?,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }
    config.budget = budget;

    let addr = config.addr.clone();
    let server =
        Server::bind(config).map_err(|e| CliError::user(format!("cannot bind {addr}: {e}")))?;
    println!("rppm serve listening on http://{}", server.local_addr());
    server.wait();
    println!("rppm serve: shut down cleanly");
    Ok(0)
}

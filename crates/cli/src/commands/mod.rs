//! One module per `rppm` subcommand.

pub mod bench_guard;
pub mod convert;
pub mod dse;
pub mod golden;
pub mod import;
pub mod load_gen;
pub mod report;
pub mod run_all;
pub mod serve;
pub mod sim_profile;
pub mod trace_info;

use crate::args::{Arg, ArgStream, CliError};

/// Handles the shared `--help` / `-h` spelling: prints `usage` and signals
/// the caller to return successfully.
pub fn is_help(arg: &Arg) -> bool {
    matches!(arg.as_str(), "--help" | "-h" | "help")
}

/// Parses the shared `--jobs N` / `-j N` flag into `jobs`; returns whether
/// the flag matched. Zero workers cannot run anything, so `--jobs 0` is a
/// usage error rather than a silent clamp.
pub fn take_jobs(args: &mut ArgStream, arg: &Arg, jobs: &mut usize) -> Result<bool, CliError> {
    if matches!(arg.as_str(), "--jobs" | "-j") {
        let n: usize = args.parse_of(arg)?;
        if n == 0 {
            return Err(args.error(format!("{} must be at least 1, got 0", arg.as_str())));
        }
        *jobs = n;
        Ok(true)
    } else {
        Ok(false)
    }
}

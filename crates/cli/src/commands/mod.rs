//! One module per `rppm` subcommand.

pub mod bench_guard;
pub mod convert;
pub mod dse;
pub mod golden;
pub mod import;
pub mod report;
pub mod run_all;
pub mod sim_profile;

use crate::args::{Arg, ArgStream, CliError};

/// Handles the shared `--help` / `-h` spelling: prints `usage` and signals
/// the caller to return successfully.
pub fn is_help(arg: &Arg) -> bool {
    matches!(arg.as_str(), "--help" | "-h" | "help")
}

/// Parses the shared `--jobs N` / `-j N` flag into `jobs`; returns whether
/// the flag matched.
pub fn take_jobs(args: &mut ArgStream, arg: &Arg, jobs: &mut usize) -> Result<bool, CliError> {
    if matches!(arg.as_str(), "--jobs" | "-j") {
        *jobs = args.parse_of(arg)?;
        Ok(true)
    } else {
        Ok(false)
    }
}

//! `rppm sim-profile` — the simulator profiling itself.
//!
//! The PGO loop's observation half: runs a workload (or the whole catalog)
//! through the golden simulator with the self-profiling probe attached and
//! prints what the engine executed — op-class frequencies, the dynamic
//! op-pair histogram that nominates superinstruction candidates, the sync
//! mix and the dispatch/fusion statistics. `--reference` swaps in the naive
//! one-op-at-a-time reference engine, whose profile is the "before" picture
//! (every op is its own dispatch, nothing fuses).

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm::sim::{simulate_profiled, simulate_reference_profiled, SimProfile};
use rppm::trace::{DesignPoint, MachineConfig, Program};
use rppm::workloads::Params;
use serde_json::Value;

const USAGE: &str = "usage: rppm sim-profile [WORKLOAD] [--catalog] [--scale S] [--seed N]
       [--point smallest|small|base|big|biggest] [--machine FILE] [--top N]
       [--reference] [--json] [--out FILE]

Runs WORKLOAD (or, with --catalog, every catalog workload, merging the
profiles) through the golden simulator with the self-profiling probe
attached and reports the engine's own execution profile: op-class mix,
hot dynamic op pairs (the superinstruction-fusion candidates), sync-op
mix, per-thread block shape and dispatch/fusion statistics.

--reference profiles the naive one-op-at-a-time reference engine instead
(the PGO \"before\": one dispatch per op, zero fusion). --point picks the
machine (default base); --machine FILE simulates the `.machine`
description in FILE instead and overrides --point. --top N sets how many
op pairs are listed (default 8). --json prints the machine-readable
document instead of text; --out FILE additionally writes that document
to FILE.";

fn parse_point(s: &str) -> Result<DesignPoint, String> {
    Ok(match s {
        "smallest" => DesignPoint::Smallest,
        "small" => DesignPoint::Small,
        "base" => DesignPoint::Base,
        "big" => DesignPoint::Big,
        "biggest" => DesignPoint::Biggest,
        other => return Err(format!("unknown design point `{other}`")),
    })
}

/// Simulates one program under the chosen engine, returning its profile.
fn profile_one(program: &Program, config: &MachineConfig, reference: bool) -> SimProfile {
    if reference {
        simulate_reference_profiled(program, config).1
    } else {
        simulate_profiled(program, config).1
    }
}

fn render_text(scope: &str, engine: &str, point: &str, p: &SimProfile, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{scope}: {} ops through the {engine} engine @ {point}\n\n",
        p.total_ops()
    ));
    let total = p.total_ops().max(1);
    out.push_str("op mix:\n");
    for (k, class) in rppm::trace::OpClass::ALL.iter().enumerate() {
        let n = p.op_freq[k];
        if n > 0 {
            out.push_str(&format!(
                "  {class:<8} {:>6.2}%  {n}\n",
                n as f64 * 100.0 / total as f64
            ));
        }
    }
    out.push_str(&format!("\ntop {top} dynamic op pairs:\n"));
    for (a, b, n) in p.top_pairs(top) {
        out.push_str(&format!(
            "  {a:<8}-> {b:<8} {n:>10}  ({:.2}%)\n",
            n as f64 * 100.0 / total as f64
        ));
    }
    out.push_str(&format!(
        "\ndispatch: {} actions for {} ops | {} fused pairs | {:.2}% of ops fused | {:.2}% dispatch reduction\n",
        p.dispatches,
        p.total_ops(),
        p.fused_pairs,
        p.fused_fraction() * 100.0,
        p.dispatch_reduction() * 100.0
    ));
    let s = &p.sync;
    out.push_str(&format!(
        "sync mix: {} creates, {} joins, {} barriers ({} via cond), {} locks, {} unlocks, {} produces, {} consumes\n",
        s.creates, s.joins, s.barriers, s.cond_barriers, s.locks, s.unlocks, s.produces, s.consumes
    ));
    out.push_str("\nthreads (ops / uninterrupted runs / longest run / syncs):\n");
    for (i, t) in p.threads.iter().enumerate() {
        out.push_str(&format!(
            "  t{i:<3} {:>10} {:>8} {:>10} {:>6}\n",
            t.ops, t.runs, t.longest_run, t.syncs
        ));
    }
    out
}

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut workload: Option<String> = None;
    let mut catalog = false;
    let mut scale = 1.0f64;
    let mut seed = 0x5EEDu64;
    let mut point = DesignPoint::Base;
    let mut machine: Option<String> = None;
    let mut top = 8usize;
    let mut reference = false;
    let mut json = false;
    let mut out_file: Option<String> = None;
    let mut jobs = rppm_bench::default_jobs();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        match arg.as_str() {
            "--catalog" => catalog = true,
            "--scale" => scale = args.parse_of(&arg)?,
            "--seed" => seed = args.parse_of(&arg)?,
            "--point" => {
                let s: String = args.value_of(&arg)?;
                point = parse_point(&s).map_err(|e| args.error(e))?;
            }
            "--machine" => machine = Some(args.value_of(&arg)?),
            "--top" => top = args.parse_of(&arg)?,
            "--reference" => reference = true,
            "--json" => json = true,
            "--out" => out_file = Some(args.value_of(&arg)?),
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ if workload.is_none() => workload = Some(arg.into_positional()),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }
    if catalog && workload.is_some() {
        return Err(args.error("pass either WORKLOAD or --catalog, not both"));
    }
    if !catalog && workload.is_none() {
        return Err(args.error("missing the workload name (or pass --catalog)"));
    }

    let params = Params { scale, seed };
    let (config, point_name) = match &machine {
        Some(path) => {
            let cfg = rppm::trace::read_machine(path).map_err(CliError::user)?;
            let name = cfg.name.clone();
            (cfg, name)
        }
        None => (point.config(), format!("{point:?}").to_lowercase()),
    };
    let engine = if reference { "reference" } else { "optimized" };

    let (scope, profile, per_workload) = if catalog {
        let mut merged = SimProfile::default();
        let mut rows = Vec::new();
        for bench in rppm::workloads::all() {
            let program = bench.build(&params);
            let p = profile_one(&program, &config, reference);
            rows.push(Value::Object(vec![
                ("name".into(), Value::String(bench.name.to_string())),
                ("ops".into(), Value::U64(p.total_ops())),
                ("dispatches".into(), Value::U64(p.dispatches)),
                ("fused_pairs".into(), Value::U64(p.fused_pairs)),
            ]));
            merged.merge(&p);
        }
        (format!("catalog ({} workloads)", rows.len()), merged, rows)
    } else {
        let name = workload.unwrap();
        let bench = rppm::workloads::all()
            .into_iter()
            .find(|b| b.name == name)
            .ok_or_else(|| args.error(format!("unknown workload `{name}`")))?;
        let program = bench.build(&params);
        let p = profile_one(&program, &config, reference);
        (name, p, Vec::new())
    };

    let mut doc_entries = vec![
        ("scope".into(), Value::String(scope.clone())),
        ("engine".into(), Value::String(engine.to_string())),
        ("point".into(), Value::String(point_name.clone())),
        ("scale".into(), Value::F64(scale)),
        ("seed".into(), Value::U64(seed)),
        (
            "profile".into(),
            serde_json::from_str(&profile.to_json_string()).expect("SimProfile JSON parses"),
        ),
    ];
    if !per_workload.is_empty() {
        doc_entries.push(("workloads".into(), Value::Array(per_workload)));
    }
    let doc = Value::Object(doc_entries);

    if let Some(path) = &out_file {
        let body = serde_json::to_string(&doc).expect("doc serializes");
        std::fs::write(path, body).map_err(|e| {
            CliError::user(rppm::Error::Io {
                path: path.into(),
                source: e,
            })
        })?;
        eprintln!("wrote {path}");
    }
    if json {
        println!("{}", serde_json::to_string(&doc).expect("doc serializes"));
    } else {
        print!(
            "{}",
            render_text(&scope, engine, &point_name, &profile, top)
        );
    }
    Ok(0)
}

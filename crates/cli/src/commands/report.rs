//! `rppm report <name> [args]` — print one table/figure of the paper.

use super::{is_help, take_jobs};
use crate::args::{parse_with, ArgStream, CliError};
use rppm_bench::{reports, ProfileCache, RunCtx};

const USAGE: &str = "usage: rppm report <name> [args] [--jobs N] [--machine FILE]

reports (and their optional positional arguments):
  table1 [iterations]     error accumulation study      (default 1000000)
  table2 [scale]          per-suite error summary       (default 1.0)
  table3 [scale]          synchronization behaviour     (default 1.0)
  table4                  design-space design points
  table5 [scale]          DSE: predicted vs actual      (default 0.3)
  fig4   [scale]          MAIN/CRIT/RPPM error per benchmark (default 0.5)
  fig5   [scale] [bench]  predicted vs simulated CPI stacks  (default 0.5)
  fig6   [scale]          scaling behaviour categories  (default 0.3)
  ablation [scale]        model-component ablation      (default 0.2)
  dse    [scale]          batched DSE engine: optimum, frontier,
                          deficiency on the tiny space (default 0.3)
  sim_profile [scale]     simulator self-profile: op mix, hot pairs,
                          fusion/dispatch statistics (default 0.3)

--machine FILE evaluates single-configuration reports (and the dse
report's space base) on the `.machine` description in FILE instead of
the paper's base design point; reports about the five Table IV points
themselves (table4, table5) ignore it.

The report text is printed to stdout, byte-identical to the retired
per-report binaries.";

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut jobs = rppm_bench::default_jobs();
    let mut machine: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        if arg.as_str() == "--machine" {
            machine = Some(args.value_of(&arg)?);
            continue;
        }
        if arg.is_flag() {
            return Err(args.unknown(&arg));
        }
        positional.push(arg.into_positional());
    }
    let Some((name, rest)) = positional.split_first() else {
        return Err(args.error("missing report name"));
    };
    // fig5 takes [scale] [benchmark]; every other report at most [scale].
    let max_args = match name.as_str() {
        "fig5" => 2,
        "table4" => 0,
        _ => 1,
    };
    if let Some(surplus) = rest.get(max_args) {
        return Err(args.error(format!("unexpected argument `{surplus}`")));
    }

    let scale_arg = |default: f64| -> Result<f64, CliError> {
        rest.first()
            .map(|s| parse_with(s, "scale", USAGE))
            .unwrap_or(Ok(default))
    };

    let cache = ProfileCache::new();
    let mut ctx = RunCtx::new(&cache, jobs);
    if let Some(path) = &machine {
        ctx = ctx.with_base(rppm::trace::read_machine(path).map_err(CliError::user)?);
    }
    let report = match name.as_str() {
        "table1" => {
            let iterations = rest
                .first()
                .map(|s| parse_with(s, "iterations", USAGE))
                .unwrap_or(Ok(1_000_000))?;
            reports::table1(iterations)
        }
        "table2" => reports::table2(scale_arg(1.0)?),
        "table3" => reports::table3(scale_arg(1.0)?, &ctx),
        "table4" => reports::table4(),
        "table5" => reports::table5(scale_arg(0.3)?, &ctx),
        "fig4" => reports::fig4(scale_arg(0.5)?, &ctx),
        "fig5" => reports::fig5(scale_arg(0.5)?, rest.get(1).map(String::as_str), &ctx),
        "fig6" => reports::fig6(scale_arg(0.3)?, &ctx),
        "ablation" => reports::ablation(scale_arg(0.2)?, &ctx),
        "dse" => reports::dse(scale_arg(0.3)?, &ctx),
        "sim_profile" => reports::sim_profile(scale_arg(0.3)?, &ctx),
        other => return Err(args.error(format!("unknown report `{other}`"))),
    };
    print!("{}", report.text);
    Ok(0)
}

//! `rppm run-all` — regenerate every report under `results/`, in-process
//! and in parallel, sharing one profile cache across all reports.

use super::{is_help, take_jobs};
use crate::args::{parse_with, ArgStream, CliError};
use rppm_bench::reports::{self, Report};
use rppm_bench::{ImportedTrace, ProfileCache, RunCtx};

const USAGE: &str = "usage: rppm run-all [scale] [dse_scale] [--jobs N] [--import FILE]...

Regenerates every table/figure (text + machine-readable JSON twin) under
results/. All reports share one profile cache, so each (workload, params)
pair is profiled exactly once per invocation. Defaults: scale 0.5,
dse_scale 0.3, one worker per core.

Each --import names a trace file (JSON interchange or RPT1 binary,
auto-detected by magic bytes); imported workloads join every
workload-running report as first-class rows.";

/// A named, deferred report job.
type ReportJob<'a> = (&'a str, Box<dyn FnOnce() -> Report + 'a>);

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut positional = Vec::new();
    let mut jobs = rppm_bench::default_jobs();
    let mut imports = Vec::new();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        if arg.as_str() == "--import" {
            let path = args.value_of(&arg)?;
            let t = ImportedTrace::from_file(&path).map_err(CliError::user)?;
            eprintln!("imported {path} as workload `{}`", t.name());
            imports.push(t);
            continue;
        }
        if arg.is_flag() {
            return Err(args.unknown(&arg));
        }
        positional.push(arg.into_positional());
    }
    if positional.len() > 2 {
        return Err(args.error(format!("unexpected argument `{}`", positional[2])));
    }
    let scale: f64 = positional
        .first()
        .map(|s| parse_with(s, "scale", USAGE))
        .unwrap_or(Ok(0.5))?;
    let dse_scale: f64 = positional
        .get(1)
        .map(|s| parse_with(s, "dse_scale", USAGE))
        .unwrap_or(Ok(0.3))?;

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| {
        CliError::user(rppm::Error::Io {
            path: dir.to_path_buf(),
            source: e,
        })
    })?;

    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, jobs).with_imports(imports);
    let t0 = std::time::Instant::now();
    let profiles_before = rppm::profiler::profile_call_count();

    let jobs_list: Vec<ReportJob<'_>> = vec![
        ("table1", Box::new(|| reports::table1(1_000_000))),
        ("table2", Box::new(|| reports::table2(1.0))),
        ("table3", Box::new(|| reports::table3(1.0, &ctx))),
        ("table4", Box::new(reports::table4)),
        ("fig4", Box::new(|| reports::fig4(scale, &ctx))),
        ("fig5", Box::new(|| reports::fig5(scale, None, &ctx))),
        ("table5", Box::new(|| reports::table5(dse_scale, &ctx))),
        ("fig6", Box::new(|| reports::fig6(dse_scale, &ctx))),
        ("ablation", Box::new(|| reports::ablation(dse_scale, &ctx))),
        ("dse", Box::new(|| reports::dse(dse_scale, &ctx))),
        (
            "sim_profile",
            Box::new(|| reports::sim_profile(dse_scale, &ctx)),
        ),
    ];
    for (name, job) in jobs_list {
        eprintln!("running {name} ({jobs} jobs)...");
        let report = job();
        assert_eq!(report.name, name, "report name matches job list");
        report.write_into(dir).map_err(|e| {
            CliError::user(rppm::Error::Io {
                path: dir.join(name),
                source: e,
            })
        })?;
        eprintln!("  -> results/{name}.txt + results/{name}.json");
    }

    eprintln!(
        "all experiments regenerated under results/ in {:.1?} \
         ({} workloads profiled once each, {} profile() calls)",
        t0.elapsed(),
        cache.len(),
        rppm::profiler::profile_call_count() - profiles_before,
    );
    Ok(0)
}

//! `rppm golden diff|update` — the golden accuracy-regression gate.

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm_bench::golden::{self, GOLDEN_RTOL};
use rppm_bench::{ProfileCache, RunCtx};
use serde_json::Value;
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: rppm golden diff [--jobs N] [--golden DIR] [--out FILE]
       rppm golden update [--jobs N] [--golden DIR]

`diff` checks the current tree against the committed baselines (exit 1 on
drift) and always writes the delta report (default results/golden_delta.txt).
`update` regenerates the baselines after an intentional accuracy change.
The baselines (default results/golden/) pin the JSON twins of fig4, table3,
table5 and dse at the golden scale.";

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut mode: Option<String> = None;
    let mut jobs = rppm_bench::default_jobs();
    let mut golden_dir = PathBuf::from("results/golden");
    let mut out_path = PathBuf::from("results/golden_delta.txt");
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        match arg.as_str() {
            "--golden" => golden_dir = args.value_of(&arg)?.into(),
            "--out" => out_path = args.value_of(&arg)?.into(),
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ if mode.is_none() => mode = Some(arg.into_positional()),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }

    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, jobs);
    match mode.as_deref() {
        Some("update") => update(&golden_dir, &ctx),
        Some("diff") => diff(&golden_dir, &out_path, &ctx),
        Some(other) => Err(args.error(format!(
            "unknown golden action `{other}` (expected diff or update)"
        ))),
        None => Err(args.error("missing golden action (expected diff or update)")),
    }
}

fn write(path: &Path, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|e| {
        CliError::user(rppm::Error::Io {
            path: path.to_path_buf(),
            source: e,
        })
    })
}

fn update(golden_dir: &Path, ctx: &RunCtx<'_>) -> Result<i32, CliError> {
    std::fs::create_dir_all(golden_dir).map_err(|e| {
        CliError::user(rppm::Error::Io {
            path: golden_dir.to_path_buf(),
            source: e,
        })
    })?;
    for r in &golden::golden_reports(ctx) {
        let path = golden_dir.join(format!("{}.json", r.name));
        let text = serde_json::to_string(&r.json).expect("report JSON serializes");
        write(&path, &text)?;
        eprintln!("updated {}", path.display());
    }
    Ok(0)
}

fn diff(golden_dir: &Path, out_path: &Path, ctx: &RunCtx<'_>) -> Result<i32, CliError> {
    let mut report_text = String::new();
    let mut drifted = false;
    for r in &golden::golden_reports(ctx) {
        let path = golden_dir.join(format!("{}.json", r.name));
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let baseline: Value = serde_json::from_str(&text).map_err(|e| {
                    CliError::user(format!("{} is not valid JSON: {e}", path.display()))
                })?;
                let deltas = golden::diff(&baseline, &r.json, GOLDEN_RTOL);
                drifted |= !deltas.is_empty();
                report_text.push_str(&golden::render_deltas(r.name, &deltas));
            }
            Err(e) => {
                drifted = true;
                report_text.push_str(&format!(
                    "{}: missing baseline {} ({e}); run `rppm golden update`\n",
                    r.name,
                    path.display()
                ));
            }
        }
    }

    if let Some(parent) = out_path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| {
            CliError::user(rppm::Error::Io {
                path: parent.to_path_buf(),
                source: e,
            })
        })?;
    }
    write(out_path, &report_text)?;
    print!("{report_text}");
    eprintln!("delta report written to {}", out_path.display());
    if drifted {
        eprintln!(
            "accuracy drift detected; if intentional, regenerate baselines with \
             `cargo run --release -p rppm-cli -- golden update`"
        );
        return Ok(1);
    }
    Ok(0)
}

//! `rppm trace-info` — inspect an `RPT1` container without decoding it.

use super::is_help;
use crate::args::{ArgStream, CliError};

const USAGE: &str = "usage: rppm trace-info FILE.rpt... [--check-replay]
                      [--chunk-ops N] [--pool-bytes N] [--no-mmap]

Scans each RPT1 container and prints its format version, workload identity
and a per-section breakdown: tag, kind, section count and payload bytes.
Version-3 containers written by `rppm convert --ops` additionally report
the recorded op stream (op-run / op-sync / op-meta sections). Malformed or
truncated files exit 2 with a one-line error.

--check-replay opens each file's op stream out-of-core (under the given
chunk/pool memory budget), profiles the replayed stream and the in-memory
program, and diffs the two profiles; any divergence exits 1.";

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut files = Vec::new();
    let mut check_replay = false;
    let mut options = rppm::trace::StreamOptions::default();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        match arg.as_str() {
            "--check-replay" => check_replay = true,
            "--chunk-ops" => options.chunk_ops = args.parse_of(&arg)?,
            "--pool-bytes" => options.pool_bytes = args.parse_of(&arg)?,
            "--no-mmap" => options.mmap = false,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ => files.push(arg.into_positional()),
        }
    }
    if files.is_empty() {
        return Err(args.error("expected at least one RPT1 trace file"));
    }

    for (i, file) in files.iter().enumerate() {
        let info = rppm::trace::container_info(file)
            .map_err(|e| CliError::user(format!("{file}: {e}")))?;
        if i > 0 {
            println!();
        }
        println!(
            "{file}: RPT1 v{} `{}`, {} threads, {} bytes",
            info.version, info.name, info.num_threads, info.file_bytes
        );
        let stream = if info.has_op_stream {
            format!(
                "{} recorded ops, {} sync events",
                info.recorded_ops, info.recorded_syncs
            )
        } else {
            "none (plain program container)".to_string()
        };
        println!("  program segments: {}; op stream: {stream}", info.segments);
        for s in &info.sections {
            println!(
                "  tag {} {:<8} {:>7} section{} {:>12} bytes",
                s.tag,
                s.label,
                s.count,
                if s.count == 1 { " " } else { "s" },
                s.bytes
            );
        }
        if check_replay && !check(file, options)? {
            return Ok(1);
        }
    }
    Ok(0)
}

/// Profiles `file`'s op stream out-of-core under `options` and diffs the
/// result against profiling the in-memory program; `Ok(false)` on any
/// divergence (the caller exits 1).
fn check(file: &str, options: rppm::trace::StreamOptions) -> Result<bool, CliError> {
    let replay = rppm::trace::OpReplay::open_with(file, options)
        .map_err(|e| CliError::user(format!("{file}: {e}")))?;
    let replayed = rppm::profiler::profile_replay(&replay);
    let expanded = rppm::profiler::profile(replay.program());
    let a = serde_json::to_string(&replayed).map_err(CliError::user)?;
    let b = serde_json::to_string(&expanded).map_err(CliError::user)?;
    if a == b {
        println!(
            "  replay check: {} ops via chunks of {} — profile identical to in-memory expansion",
            replay.total_ops(),
            options.chunk_ops.max(1)
        );
        Ok(true)
    } else {
        eprintln!("error: {file}: replayed profile diverges from in-memory expansion");
        Ok(false)
    }
}

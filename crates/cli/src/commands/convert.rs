//! `rppm convert IN OUT` — convert a trace file between the JSON
//! interchange format and the `RPT1` binary streaming container.

use super::is_help;
use crate::args::{ArgStream, CliError};
use std::path::Path;

const USAGE: &str = "usage: rppm convert IN OUT [--to json|binary|ops] [--ops]

The input format is auto-detected by magic bytes (RPT1 => binary, anything
else => JSON). The output format follows --to when given, otherwise the
output extension: .rpt / .bin write binary, everything else writes JSON.
Conversion is lossless both ways.

--ops (or --to ops) writes a version-3 RPT1 container that additionally
records the fully expanded micro-op stream, so profiling and simulation can
replay it out-of-core without re-expansion (`rppm trace-info` shows the
op-run/op-sync/op-meta sections).";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Json,
    Binary,
    Ops,
}

impl Format {
    fn name(self) -> &'static str {
        match self {
            Format::Json => "json",
            Format::Binary => "binary",
            Format::Ops => "binary+ops",
        }
    }
}

fn sniff(path: &Path) -> Format {
    let mut magic = [0u8; 4];
    match std::fs::File::open(path).and_then(|mut f| std::io::Read::read_exact(&mut f, &mut magic))
    {
        Ok(()) if magic == rppm::trace::BINARY_TRACE_MAGIC => Format::Binary,
        _ => Format::Json,
    }
}

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut paths = Vec::new();
    let mut to: Option<Format> = None;
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        match arg.as_str() {
            "--to" => {
                let v = args.value_of(&arg)?;
                to = Some(match v.as_str() {
                    "json" => Format::Json,
                    "binary" | "rpt" => Format::Binary,
                    "ops" => Format::Ops,
                    other => {
                        return Err(args.error(format!(
                            "unknown format `{other}` (expected json, binary or ops)"
                        )))
                    }
                });
            }
            "--ops" => to = Some(Format::Ops),
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ => paths.push(arg.into_positional()),
        }
    }
    let [input, output] = paths.as_slice() else {
        return Err(args.error("expected exactly IN and OUT paths"));
    };
    let input = Path::new(input);
    let output = Path::new(output);

    let in_format = sniff(input);
    let out_format = to.unwrap_or_else(|| {
        if rppm::trace::has_binary_extension(output) {
            Format::Binary
        } else {
            Format::Json
        }
    });

    let program = rppm::trace::read_program_any(input).map_err(CliError::user)?;
    match out_format {
        Format::Json => rppm::trace::write_program(&program, output),
        Format::Binary => rppm::trace::write_program_binary(&program, output),
        Format::Ops => rppm::trace::write_program_ops(&program, output),
    }
    .map_err(CliError::user)?;

    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {} ({}, {} bytes) -> {} ({}, {} bytes): workload `{}`, {} threads, {} ops",
        input.display(),
        in_format.name(),
        in_bytes,
        output.display(),
        out_format.name(),
        out_bytes,
        program.name,
        program.num_threads(),
        program.total_ops(),
    );
    Ok(0)
}

//! `rppm import` — predict trace files across every design point, or
//! export a catalog workload as a trace file.

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm::trace::DesignPoint;
use rppm::workloads::Params;
use rppm_bench::{ExperimentPlan, ImportedTrace, ProfileCache, Row};

const USAGE: &str = "usage: rppm import TRACE.json|TRACE.rpt... [--jobs N]
       rppm import --export NAME FILE [--scale S] [--seed N]

The first form predicts + simulates each trace file on all five Table IV
design points (JSON or RPT1 binary, auto-detected by magic bytes). The
second form exports a built-in workload as a trace file (`.rpt` / `.bin`
extensions write the binary container).";

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut files = Vec::new();
    let mut jobs = rppm_bench::default_jobs();
    let mut export: Option<(String, String)> = None;
    let mut params = Params::full();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        match arg.as_str() {
            "--export" => {
                let name = args.value_of(&arg)?;
                let Some(file) = args.next().filter(|a| !a.is_flag()) else {
                    return Err(args.error("--export needs a workload name and an output file"));
                };
                export = Some((name, file.into_positional()));
            }
            "--scale" => params.scale = args.parse_of(&arg)?,
            "--seed" => params.seed = args.parse_of(&arg)?,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ => files.push(arg.into_positional()),
        }
    }

    if let Some((name, file)) = export {
        if !files.is_empty() {
            return Err(args.error(format!(
                "cannot mix --export with trace files to import ({})",
                files.join(", ")
            )));
        }
        let bench = rppm::workloads::by_name(&name)
            .ok_or_else(|| CliError::user(rppm::Error::UnknownWorkload { name: name.clone() }))?;
        let program = bench.build(&params);
        if rppm::trace::has_binary_extension(&file) {
            rppm::trace::write_program_binary(&program, &file).map_err(CliError::user)?;
        } else {
            rppm::trace::write_program(&program, &file).map_err(CliError::user)?;
        }
        println!(
            "exported `{}` (scale {}, seed {}, {} ops, {} threads) to {file}",
            name,
            params.scale,
            params.seed,
            program.total_ops(),
            program.num_threads()
        );
        return Ok(0);
    }

    if files.is_empty() {
        return Err(args.error("nothing to do: pass trace files to import, or --export NAME FILE"));
    }

    let traces: Vec<ImportedTrace> = files
        .iter()
        .map(|f| ImportedTrace::from_file(f).map_err(CliError::user))
        .collect::<Result<_, _>>()?;

    let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
    let cache = ProfileCache::new();
    let runs = ExperimentPlan::cross(traces, params, configs).run(&cache, jobs);

    for (run, file) in runs.iter().zip(&files) {
        let mut out = String::new();
        out.push_str(&format!(
            "{} (from {file}, {} threads, {} ops, profiled once)\n",
            run.spec.name(),
            run.workload.program.num_threads(),
            run.workload.program.total_ops(),
        ));
        Row::new()
            .cell(10, "design")
            .rcell(14, "sim cycles")
            .rcell(14, "RPPM cycles")
            .rcell(9, "error")
            .line(&mut out);
        out.push_str(&"-".repeat(51));
        out.push('\n');
        for (dp, cell) in DesignPoint::ALL.iter().zip(&run.cells) {
            Row::new()
                .cell(10, dp.to_string())
                .rcell(14, format!("{:.0}", cell.sim.total_cycles))
                .rcell(14, format!("{:.0}", cell.rppm.total_cycles))
                .rcell(9, format!("{:.1}%", cell.rppm_error() * 100.0))
                .line(&mut out);
        }
        println!("{out}");
    }
    Ok(0)
}

//! `rppm load-gen` — benchmark client for the prediction service.
//!
//! Measures the two service latencies that matter and emits them in the
//! same `CRITERION_JSON` capture format as `cargo bench`, so a combined
//! capture can flow straight into `rppm bench guard`:
//!
//! * `serve/predict_hit` — round-trip of `GET /predict` served
//!   synchronously from a resident profile (the fast path).
//! * `serve/profile_cold` — submit-to-done latency of profiling an
//!   uncached workload through the job queue (the slow path).

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm_serve::{Client, ServeConfig, Server};
use serde_json::Value;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: rppm load-gen [--addr HOST:PORT] [--workload NAME] [--scale S]
       [--requests N] [--clients C] [--cold N] [--out FILE] [--jobs N]

Drives GET /predict against a running `rppm serve` (or, without --addr, an
in-process throwaway server) and reports:

  serve/predict_hit    mean round-trip of a cache-hit prediction
                       (--requests per client, --clients concurrent)
  serve/profile_cold   submit-to-done latency of profiling an uncached
                       workload (--cold samples, distinct seeds)

--out FILE writes/merges the measurements into a CRITERION_JSON capture,
so `cargo bench` output and load-gen output can share one file for
`rppm bench guard`.";

struct Measurement {
    name: &'static str,
    samples: Vec<u128>,
}

impl Measurement {
    fn min(&self) -> u128 {
        self.samples.iter().copied().min().unwrap_or(0)
    }
    fn max(&self) -> u128 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
    fn mean(&self) -> u128 {
        if self.samples.is_empty() {
            0
        } else {
            self.samples.iter().sum::<u128>() / self.samples.len() as u128
        }
    }
}

fn job_id(body: &str) -> Option<u64> {
    let doc: Value = serde_json::from_str(body).ok()?;
    Value::get(doc.as_object()?, "job").and_then(Value::as_u64)
}

/// Polls `/jobs/<id>` until done (or failed / timed out).
fn await_job(client: &mut Client, id: u64) -> Result<(), CliError> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client
            .get(&format!("/jobs/{id}"))
            .map_err(|e| CliError::user(format!("polling job {id}: {e}")))?;
        let text = resp.text();
        if text.contains("\"done\"") {
            return Ok(());
        }
        if text.contains("\"failed\"") {
            return Err(CliError::user(format!("job {id} failed: {text}")));
        }
        if Instant::now() > deadline {
            return Err(CliError::user(format!("job {id} did not finish in 120s")));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Issues `GET path` expecting 200 (fast path) or 202 (awaits the job and
/// retries once).
fn predict_until_hit(client: &mut Client, path: &str) -> Result<Duration, CliError> {
    let start = Instant::now();
    let resp = client
        .get(path)
        .map_err(|e| CliError::user(format!("GET {path}: {e}")))?;
    match resp.status {
        200 => Ok(start.elapsed()),
        202 => {
            let id = job_id(&resp.text()).ok_or_else(|| CliError::user("202 without a job id"))?;
            await_job(client, id)?;
            let retry = client
                .get(path)
                .map_err(|e| CliError::user(format!("GET {path}: {e}")))?;
            if retry.status != 200 {
                return Err(CliError::user(format!(
                    "expected 200 after profiling, got {} ({})",
                    retry.status,
                    retry.text()
                )));
            }
            Ok(start.elapsed())
        }
        s => Err(CliError::user(format!(
            "GET {path} -> {s}: {}",
            resp.text()
        ))),
    }
}

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut addr: Option<String> = None;
    let mut workload = "hotspot".to_string();
    let mut scale = 0.1f64;
    let mut requests = 200usize;
    let mut clients = 1usize;
    let mut cold = 3usize;
    let mut out: Option<String> = None;
    let mut jobs = rppm_bench::default_jobs();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        match arg.as_str() {
            "--addr" => addr = Some(args.value_of(&arg)?),
            "--workload" => workload = args.value_of(&arg)?,
            "--scale" => scale = args.parse_of(&arg)?,
            "--requests" => requests = args.parse_of(&arg)?,
            "--clients" => clients = args.parse_of(&arg)?,
            "--cold" => cold = args.parse_of(&arg)?,
            "--out" => out = Some(args.value_of(&arg)?),
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }
    if requests == 0 || clients == 0 {
        return Err(args.error("--requests and --clients must be at least 1"));
    }

    // Without --addr, stand up a private in-process server.
    let own_server = match &addr {
        Some(_) => None,
        None => {
            let server = Server::bind(ServeConfig {
                jobs,
                ..ServeConfig::default()
            })
            .map_err(|e| CliError::user(format!("cannot start in-process server: {e}")))?;
            Some(server)
        }
    };
    let sock_addr: SocketAddr = match &own_server {
        Some(s) => s.local_addr(),
        None => addr
            .as_deref()
            .expect("addr set when no own server")
            .parse()
            .map_err(|e| CliError::user(format!("bad --addr: {e}")))?,
    };

    let mut client = Client::new(sock_addr);

    // Cold: each sample profiles a distinct (workload, scale, seed) key.
    // Seeds count down from u64::MAX to stay clear of seeds a warm cache
    // might already hold.
    let mut cold_m = Measurement {
        name: "serve/profile_cold",
        samples: Vec::new(),
    };
    for i in 0..cold {
        let seed = u64::MAX - i as u64;
        let path = format!("/predict?workload={workload}&scale={scale}&seed={seed}");
        cold_m
            .samples
            .push(predict_until_hit(&mut client, &path)?.as_nanos());
    }

    // Warm the hit-path key, then measure concurrent round-trips.
    let hit_path = format!("/predict?workload={workload}&scale={scale}&seed=1");
    predict_until_hit(&mut client, &hit_path)?;
    let mut hit_m = Measurement {
        name: "serve/predict_hit",
        samples: Vec::new(),
    };
    let worker = move |path: String| -> Result<Vec<u128>, String> {
        let mut c = Client::new(sock_addr);
        let mut samples = Vec::with_capacity(requests);
        for _ in 0..requests {
            let start = Instant::now();
            let resp = c.get(&path).map_err(|e| format!("GET {path}: {e}"))?;
            if resp.status != 200 {
                return Err(format!("GET {path} -> {} ({})", resp.status, resp.text()));
            }
            samples.push(start.elapsed().as_nanos());
        }
        Ok(samples)
    };
    if clients == 1 {
        hit_m.samples = worker(hit_path.clone()).map_err(CliError::user)?;
    } else {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let path = hit_path.clone();
                std::thread::spawn(move || worker(path))
            })
            .collect();
        for h in handles {
            let samples = h
                .join()
                .map_err(|_| CliError::user("load-gen client thread panicked"))?
                .map_err(CliError::user)?;
            hit_m.samples.extend(samples);
        }
    }

    if let Some(server) = own_server {
        server.shutdown();
        server.wait();
    }

    for m in [&hit_m, &cold_m] {
        println!(
            "{}: mean {} ns, min {} ns, max {} ns over {} sample(s)",
            m.name,
            m.mean(),
            m.min(),
            m.max(),
            m.samples.len()
        );
    }

    if let Some(path) = out {
        let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str::<Value>(&text)
                .ok()
                .and_then(|v| v.as_object().map(<[_]>::to_vec))
                .unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        for m in [&hit_m, &cold_m] {
            let doc = Value::Object(vec![
                ("min_ns".to_string(), Value::U64(m.min() as u64)),
                ("mean_ns".to_string(), Value::U64(m.mean() as u64)),
                ("max_ns".to_string(), Value::U64(m.max() as u64)),
                ("samples".to_string(), Value::U64(m.samples.len() as u64)),
            ]);
            entries.retain(|(k, _)| k != m.name);
            entries.push((m.name.to_string(), doc));
        }
        let merged = serde_json::to_string(&Value::Object(entries))
            .map_err(|e| CliError::user(format!("serializing {path}: {e}")))?;
        std::fs::write(&path, merged)
            .map_err(|e| CliError::user(format!("writing {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(0)
}

//! `rppm bench guard FRESH.json` — the CI performance-regression gate
//! over the `speed` benchmark.
//!
//! Compares a fresh `CRITERION_JSON` capture against the committed
//! `BENCH_speed.json` baseline. Absolute nanoseconds are machine-
//! dependent, so the gate checks **ratios between benchmarks of the same
//! run**: each entry of the baseline's `guards` array names a numerator
//! and denominator benchmark plus a generous `max_regression` factor, and
//! the guard fails (exit 1) when
//!
//! ```text
//! fresh(num)/fresh(den)  >  max_regression × baseline(num)/baseline(den)
//! ```
//!
//! where baseline values are the `after_mean_ns` fields.
//!
//! A second guard form checks the committed baseline itself: entries with a
//! `bench` field assert `after_mean_ns / before_mean_ns <= max_after_over_before`
//! for that benchmark — pinning a claimed cross-version improvement (the
//! before/after columns are captured back-to-back on one machine, the only
//! honest cross-version comparison a single fresh binary cannot make).

use super::is_help;
use crate::args::{ArgStream, CliError};
use serde_json::Value;

const USAGE: &str = "usage: rppm bench guard FRESH.json [--baseline BENCH_speed.json]

Gates the benchmark ratios of a fresh CRITERION_JSON capture
(CRITERION_JSON=FRESH.json cargo bench -p rppm-bench) against the
committed baseline's `guards` array. Exits 1 on any failed guard.";

/// Mean ns of `name` in a fresh `CRITERION_JSON` capture.
fn fresh_mean(fresh: &[(String, Value)], name: &str) -> Option<f64> {
    Value::get(fresh, name)?
        .as_object()
        .and_then(|e| Value::get(e, "mean_ns"))
        .and_then(Value::as_f64)
}

/// Baseline (`after_mean_ns`) of `name` in BENCH_speed.json.
fn baseline_mean(benchmarks: &[(String, Value)], name: &str) -> Option<f64> {
    Value::get(benchmarks, name)?
        .as_object()
        .and_then(|e| Value::get(e, "after_mean_ns"))
        .and_then(Value::as_f64)
}

fn load_object(path: &str) -> Result<Vec<(String, Value)>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::user(format!("cannot read `{path}`: {e}")))?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| CliError::user(format!("`{path}` is not valid JSON: {e}")))?;
    Ok(value
        .as_object()
        .ok_or_else(|| CliError::user(format!("`{path}` is not a JSON object")))?
        .to_vec())
}

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut action: Option<String> = None;
    let mut fresh_path: Option<String> = None;
    let mut baseline_path = "BENCH_speed.json".to_string();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        match arg.as_str() {
            "--baseline" => baseline_path = args.value_of(&arg)?,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ if action.is_none() => action = Some(arg.into_positional()),
            _ if fresh_path.is_none() => fresh_path = Some(arg.into_positional()),
            _ => return Err(args.error("exactly one fresh CRITERION_JSON capture expected")),
        }
    }
    match action.as_deref() {
        Some("guard") => {}
        Some(other) => {
            return Err(args.error(format!("unknown bench action `{other}` (expected guard)")))
        }
        None => return Err(args.error("missing bench action (expected guard)")),
    }
    let fresh_path =
        fresh_path.ok_or_else(|| args.error("missing the fresh CRITERION_JSON capture path"))?;

    let fresh = load_object(&fresh_path)?;
    let baseline = load_object(&baseline_path)?;
    let benchmarks = Value::get(&baseline, "benchmarks")
        .and_then(Value::as_object)
        .ok_or_else(|| CliError::user(format!("`{baseline_path}` has no `benchmarks` object")))?;
    let guards = Value::get(&baseline, "guards")
        .and_then(Value::as_array)
        .ok_or_else(|| CliError::user(format!("`{baseline_path}` has no `guards` array")))?;

    let mut failures = 0;
    println!("perf-regression gate: {fresh_path} vs {baseline_path}");
    for guard in guards {
        let entries = guard
            .as_object()
            .ok_or_else(|| CliError::user("guard entries must be objects"))?;
        let get_str = |k: &str| {
            Value::get(entries, k)
                .and_then(Value::as_str)
                .ok_or_else(|| CliError::user(format!("guard missing string field `{k}`")))
        };
        let name = get_str("name")?;

        // Baseline self-check form: `bench` + `max_after_over_before`.
        if let Some(bench) = Value::get(entries, "bench").and_then(Value::as_str) {
            let max_ratio = Value::get(entries, "max_after_over_before")
                .and_then(Value::as_f64)
                .ok_or_else(|| {
                    CliError::user(format!("guard `{name}` missing `max_after_over_before`"))
                })?;
            let entry = Value::get(benchmarks, bench)
                .and_then(Value::as_object)
                .ok_or_else(|| CliError::user(format!("guard `{name}`: no benchmark `{bench}`")))?;
            let before = Value::get(entry, "before_mean_ns").and_then(Value::as_f64);
            let after = Value::get(entry, "after_mean_ns").and_then(Value::as_f64);
            let (Some(before), Some(after)) = (before, after) else {
                return Err(CliError::user(format!(
                    "guard `{name}`: `{bench}` lacks before/after means"
                )));
            };
            let ratio = after / before;
            let verdict = if ratio <= max_ratio { "ok  " } else { "FAIL" };
            println!(
                "  {verdict} {name}: committed {bench} after/before = {ratio:.3} \
                 (limit {max_ratio}, i.e. >= {:.2}x speedup)",
                1.0 / max_ratio
            );
            if ratio > max_ratio {
                failures += 1;
            }
            continue;
        }

        let num = get_str("num")?;
        let den = get_str("den")?;
        let max_regression = Value::get(entries, "max_regression")
            .and_then(Value::as_f64)
            .ok_or_else(|| CliError::user(format!("guard `{name}` missing `max_regression`")))?;

        let base_ratio = match (
            baseline_mean(benchmarks, num),
            baseline_mean(benchmarks, den),
        ) {
            (Some(n), Some(d)) if d > 0.0 => n / d,
            _ => {
                return Err(CliError::user(format!(
                    "guard `{name}`: baseline lacks after_mean_ns for `{num}` / `{den}`"
                )))
            }
        };
        let (fresh_num, fresh_den) = match (fresh_mean(&fresh, num), fresh_mean(&fresh, den)) {
            (Some(n), Some(d)) if d > 0.0 => (n, d),
            _ => {
                println!("  FAIL {name}: fresh capture lacks `{num}` or `{den}` — was the bench run with CRITERION_JSON?");
                failures += 1;
                continue;
            }
        };
        let fresh_ratio = fresh_num / fresh_den;
        let limit = max_regression * base_ratio;
        let verdict = if fresh_ratio <= limit { "ok  " } else { "FAIL" };
        println!(
            "  {verdict} {name}: {num} / {den} = {fresh_ratio:.3} \
             (baseline {base_ratio:.3}, limit {limit:.3} = {max_regression}x)"
        );
        if fresh_ratio > limit {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "{failures} perf guard(s) failed; if the regression is intentional, refresh \
             BENCH_speed.json (CRITERION_JSON=out.json cargo bench -p rppm-bench) and commit it"
        );
        return Ok(1);
    }
    println!("all perf guards passed");
    Ok(0)
}

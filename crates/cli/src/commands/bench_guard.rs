//! `rppm bench` — the CI performance-regression tooling.
//!
//! `rppm bench guard FRESH.json` compares a fresh `CRITERION_JSON` capture
//! against the committed `BENCH_speed.json` baseline. Absolute nanoseconds
//! are machine-dependent, so the gate checks **ratios between benchmarks
//! of the same run**: each entry of the baseline's `guards` array names a
//! numerator and denominator benchmark plus a generous `max_regression`
//! factor, and the guard fails (exit 1) when
//!
//! ```text
//! fresh(num)/fresh(den)  >  max_regression × baseline(num)/baseline(den)
//! ```
//!
//! where baseline values are the `after_mean_ns` fields.
//!
//! A second guard form checks the committed baseline itself: entries with a
//! `bench` field assert `after_mean_ns / before_mean_ns <= max_after_over_before`
//! for that benchmark — pinning a claimed cross-version improvement (the
//! before/after columns are captured back-to-back on one machine, the only
//! honest cross-version comparison a single fresh binary cannot make).
//!
//! `rppm bench rss` measures peak resident memory (`VmHWM`) of the two
//! profiling paths — in-memory expansion versus out-of-core replay of a
//! recorded op stream under a deliberately small chunk budget — each in a
//! fresh child process (a high-water mark is only meaningful for a process
//! that did nothing else), and merges the results as `rss/*` rows into the
//! same capture, so the guard can gate the memory ratio exactly like a
//! time ratio.

use super::is_help;
use crate::args::{ArgStream, CliError};
use serde_json::Value;

const USAGE: &str = "usage: rppm bench guard FRESH.json [--baseline BENCH_speed.json]
       rppm bench rss [--workload NAME] [--scale S] [--out FRESH.json]

guard gates the benchmark ratios of a fresh CRITERION_JSON capture
(CRITERION_JSON=FRESH.json cargo bench -p rppm-bench) against the
committed baseline's `guards` array. Exits 1 on any failed guard.

rss records an op stream for the workload, then measures the peak
resident memory (Linux VmHWM) of profiling it twice in fresh child
processes: rss/profile_expand (in-memory expansion) and
rss/profile_replay (out-of-core replay, 256 KiB pool, no mmap). --out
merges both rows into a CRITERION_JSON capture; the values are BYTES,
not nanoseconds, but ratio guards are unit-agnostic.";

/// Mean ns of `name` in a fresh `CRITERION_JSON` capture.
fn fresh_mean(fresh: &[(String, Value)], name: &str) -> Option<f64> {
    Value::get(fresh, name)?
        .as_object()
        .and_then(|e| Value::get(e, "mean_ns"))
        .and_then(Value::as_f64)
}

/// Baseline (`after_mean_ns`) of `name` in BENCH_speed.json.
fn baseline_mean(benchmarks: &[(String, Value)], name: &str) -> Option<f64> {
    Value::get(benchmarks, name)?
        .as_object()
        .and_then(|e| Value::get(e, "after_mean_ns"))
        .and_then(Value::as_f64)
}

fn load_object(path: &str) -> Result<Vec<(String, Value)>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::user(format!("cannot read `{path}`: {e}")))?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| CliError::user(format!("`{path}` is not valid JSON: {e}")))?;
    Ok(value
        .as_object()
        .ok_or_else(|| CliError::user(format!("`{path}` is not a JSON object")))?
        .to_vec())
}

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let Some(first) = args.next() else {
        return Err(args.error("missing bench action (expected guard or rss)"));
    };
    if is_help(&first) {
        println!("{USAGE}");
        return Ok(0);
    }
    match first.as_str() {
        "guard" => run_guard(args),
        "rss" => run_rss(args),
        // Internal: one measured child process of `bench rss`.
        "rss-child" => run_rss_child(args),
        other => Err(args.error(format!(
            "unknown bench action `{other}` (expected guard or rss)"
        ))),
    }
}

fn run_guard(mut args: ArgStream) -> Result<i32, CliError> {
    let mut fresh_path: Option<String> = None;
    let mut baseline_path = "BENCH_speed.json".to_string();
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        match arg.as_str() {
            "--baseline" => baseline_path = args.value_of(&arg)?,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ if fresh_path.is_none() => fresh_path = Some(arg.into_positional()),
            _ => return Err(args.error("exactly one fresh CRITERION_JSON capture expected")),
        }
    }
    let fresh_path =
        fresh_path.ok_or_else(|| args.error("missing the fresh CRITERION_JSON capture path"))?;

    let fresh = load_object(&fresh_path)?;
    let baseline = load_object(&baseline_path)?;
    let benchmarks = Value::get(&baseline, "benchmarks")
        .and_then(Value::as_object)
        .ok_or_else(|| CliError::user(format!("`{baseline_path}` has no `benchmarks` object")))?;
    let guards = Value::get(&baseline, "guards")
        .and_then(Value::as_array)
        .ok_or_else(|| CliError::user(format!("`{baseline_path}` has no `guards` array")))?;

    let mut failures = 0;
    println!("perf-regression gate: {fresh_path} vs {baseline_path}");
    for guard in guards {
        let entries = guard
            .as_object()
            .ok_or_else(|| CliError::user("guard entries must be objects"))?;
        let get_str = |k: &str| {
            Value::get(entries, k)
                .and_then(Value::as_str)
                .ok_or_else(|| CliError::user(format!("guard missing string field `{k}`")))
        };
        let name = get_str("name")?;

        // Baseline self-check form: `bench` + `max_after_over_before`.
        if let Some(bench) = Value::get(entries, "bench").and_then(Value::as_str) {
            let max_ratio = Value::get(entries, "max_after_over_before")
                .and_then(Value::as_f64)
                .ok_or_else(|| {
                    CliError::user(format!("guard `{name}` missing `max_after_over_before`"))
                })?;
            let entry = Value::get(benchmarks, bench)
                .and_then(Value::as_object)
                .ok_or_else(|| CliError::user(format!("guard `{name}`: no benchmark `{bench}`")))?;
            let before = Value::get(entry, "before_mean_ns").and_then(Value::as_f64);
            let after = Value::get(entry, "after_mean_ns").and_then(Value::as_f64);
            let (Some(before), Some(after)) = (before, after) else {
                return Err(CliError::user(format!(
                    "guard `{name}`: `{bench}` lacks before/after means"
                )));
            };
            let ratio = after / before;
            let verdict = if ratio <= max_ratio { "ok  " } else { "FAIL" };
            println!(
                "  {verdict} {name}: committed {bench} after/before = {ratio:.3} \
                 (limit {max_ratio}, i.e. >= {:.2}x speedup)",
                1.0 / max_ratio
            );
            if ratio > max_ratio {
                failures += 1;
            }
            continue;
        }

        let num = get_str("num")?;
        let den = get_str("den")?;
        let max_regression = Value::get(entries, "max_regression")
            .and_then(Value::as_f64)
            .ok_or_else(|| CliError::user(format!("guard `{name}` missing `max_regression`")))?;

        let base_ratio = match (
            baseline_mean(benchmarks, num),
            baseline_mean(benchmarks, den),
        ) {
            (Some(n), Some(d)) if d > 0.0 => n / d,
            _ => {
                return Err(CliError::user(format!(
                    "guard `{name}`: baseline lacks after_mean_ns for `{num}` / `{den}`"
                )))
            }
        };
        let (fresh_num, fresh_den) = match (fresh_mean(&fresh, num), fresh_mean(&fresh, den)) {
            (Some(n), Some(d)) if d > 0.0 => (n, d),
            _ => {
                println!("  FAIL {name}: fresh capture lacks `{num}` or `{den}` — was the bench run with CRITERION_JSON?");
                failures += 1;
                continue;
            }
        };
        let fresh_ratio = fresh_num / fresh_den;
        let limit = max_regression * base_ratio;
        let verdict = if fresh_ratio <= limit { "ok  " } else { "FAIL" };
        println!(
            "  {verdict} {name}: {num} / {den} = {fresh_ratio:.3} \
             (baseline {base_ratio:.3}, limit {limit:.3} = {max_regression}x)"
        );
        if fresh_ratio > limit {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "{failures} perf guard(s) failed; if the regression is intentional, refresh \
             BENCH_speed.json (CRITERION_JSON=out.json cargo bench -p rppm-bench) and commit it"
        );
        return Ok(1);
    }
    println!("all perf guards passed");
    Ok(0)
}

/// Stream options the replay child measures under: a pool two orders of
/// magnitude below the default-scale stream size, mmap disabled so the
/// high-water mark counts heap pages only (a mapped file inflates `VmHWM`
/// by every page touched even though the kernel can drop them freely).
const RSS_CHUNK_OPS: usize = 512;
const RSS_POOL_BYTES: usize = 1 << 18;

fn run_rss(mut args: ArgStream) -> Result<i32, CliError> {
    let mut workload = "hotspot".to_string();
    let mut scale = 0.1f64;
    let mut out: Option<String> = None;
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        match arg.as_str() {
            "--workload" => workload = args.value_of(&arg)?,
            "--scale" => scale = args.parse_of(&arg)?,
            "--out" => out = Some(args.value_of(&arg)?),
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }

    // Record the op stream once; both children profile the same trace.
    let program = rppm::workloads::by_name(&workload)
        .ok_or_else(|| CliError::user(format!("unknown workload `{workload}`")))?
        .build(&rppm::workloads::Params {
            scale,
            ..rppm::workloads::Params::full()
        });
    let path = std::env::temp_dir().join(format!("rppm-bench-rss-{}.rpt", std::process::id()));
    let guard = TempFile(path.clone());
    rppm::trace::write_program_ops(&program, &path)
        .map_err(|e| CliError::user(format!("recording op stream: {e}")))?;
    let stream_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let path_arg = path.to_string_lossy().into_owned();

    let expand = measure_child("expand", &[workload.clone(), format!("{scale}")])?;
    let replay = measure_child("replay", &[path_arg])?;
    drop(guard);

    println!(
        "rss/profile_expand: peak {} bytes (in-memory expansion, {workload} scale {scale})",
        expand.mean()
    );
    println!(
        "rss/profile_replay: peak {} bytes (out-of-core replay of a {stream_bytes}-byte stream, \
         {RSS_POOL_BYTES}-byte pool, chunks of {RSS_CHUNK_OPS} ops)",
        replay.mean()
    );
    println!(
        "replay/expand peak-RSS ratio: {:.3}",
        replay.mean() as f64 / expand.mean().max(1) as f64
    );
    if stream_bytes <= RSS_POOL_BYTES as u64 {
        eprintln!(
            "note: the recorded stream ({stream_bytes} bytes) fits the pool budget; \
             raise --scale for an out-of-core measurement"
        );
    }

    if let Some(path) = out {
        merge_capture(&path, &[&expand, &replay])?;
        println!("wrote {path}");
    }
    Ok(0)
}

/// The measured process: profiles once, prints its peak RSS in bytes.
fn run_rss_child(mut args: ArgStream) -> Result<i32, CliError> {
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        if arg.is_flag() {
            return Err(args.unknown(&arg));
        }
        positional.push(arg.into_positional());
    }
    let profile = match positional.first().map(String::as_str) {
        Some("expand") => {
            let [_, workload, scale] = positional.as_slice() else {
                return Err(args.error("rss-child expand WORKLOAD SCALE"));
            };
            let scale: f64 = scale
                .parse()
                .map_err(|e| CliError::user(format!("bad scale `{scale}`: {e}")))?;
            let program = rppm::workloads::by_name(workload)
                .ok_or_else(|| CliError::user(format!("unknown workload `{workload}`")))?
                .build(&rppm::workloads::Params {
                    scale,
                    ..rppm::workloads::Params::full()
                });
            rppm::profiler::profile(&program)
        }
        Some("replay") => {
            let [_, path] = positional.as_slice() else {
                return Err(args.error("rss-child replay FILE.rpt"));
            };
            let replay = rppm::trace::OpReplay::open_with(
                path,
                rppm::trace::StreamOptions {
                    chunk_ops: RSS_CHUNK_OPS,
                    pool_bytes: RSS_POOL_BYTES,
                    mmap: false,
                    ..rppm::trace::StreamOptions::default()
                },
            )
            .map_err(|e| CliError::user(format!("{path}: {e}")))?;
            rppm::profiler::profile_replay(&replay)
        }
        _ => return Err(args.error("rss-child expects `expand` or `replay`")),
    };
    std::hint::black_box(&profile);
    println!("{}", peak_rss_bytes()?);
    Ok(0)
}

/// Runs `rppm bench rss-child MODE ARGS...` three times and collects the
/// printed peak-RSS samples under a capture-style row name.
fn measure_child(mode: &str, child_args: &[String]) -> Result<RssRow, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError::user(format!("cannot locate own binary: {e}")))?;
    let mut samples = Vec::new();
    for _ in 0..3 {
        let output = std::process::Command::new(&exe)
            .arg("bench")
            .arg("rss-child")
            .arg(mode)
            .args(child_args)
            .output()
            .map_err(|e| CliError::user(format!("spawning rss child: {e}")))?;
        if !output.status.success() {
            return Err(CliError::user(format!(
                "rss child `{mode}` failed: {}",
                String::from_utf8_lossy(&output.stderr).trim()
            )));
        }
        let text = String::from_utf8_lossy(&output.stdout);
        let bytes: u64 = text.trim().parse().map_err(|_| {
            CliError::user(format!(
                "rss child `{mode}` printed `{}`, expected peak bytes",
                text.trim()
            ))
        })?;
        samples.push(bytes);
    }
    Ok(RssRow {
        name: format!("rss/profile_{mode}"),
        samples,
    })
}

struct RssRow {
    name: String,
    samples: Vec<u64>,
}

impl RssRow {
    fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }
    fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
    fn mean(&self) -> u64 {
        if self.samples.is_empty() {
            0
        } else {
            self.samples.iter().sum::<u64>() / self.samples.len() as u64
        }
    }
}

/// Merges rows into a `CRITERION_JSON` capture the way `rppm load-gen`
/// does, replacing same-named entries and keeping everything else.
fn merge_capture(path: &str, rows: &[&RssRow]) -> Result<(), CliError> {
    let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str::<Value>(&text)
            .ok()
            .and_then(|v| v.as_object().map(<[_]>::to_vec))
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    for row in rows {
        let doc = Value::Object(vec![
            ("min_ns".to_string(), Value::U64(row.min())),
            ("mean_ns".to_string(), Value::U64(row.mean())),
            ("max_ns".to_string(), Value::U64(row.max())),
            ("samples".to_string(), Value::U64(row.samples.len() as u64)),
        ]);
        entries.retain(|(k, _)| k != &row.name);
        entries.push((row.name.clone(), doc));
    }
    let merged = serde_json::to_string(&Value::Object(entries))
        .map_err(|e| CliError::user(format!("serializing {path}: {e}")))?;
    std::fs::write(path, merged).map_err(|e| CliError::user(format!("writing {path}: {e}")))
}

/// This process's peak resident set size, from `/proc/self/status` —
/// Linux-only, like the CI runner this gate exists for.
fn peak_rss_bytes() -> Result<u64, CliError> {
    let status = std::fs::read_to_string("/proc/self/status").map_err(|e| {
        CliError::user(format!(
            "reading /proc/self/status (peak-RSS measurement is Linux-only): {e}"
        ))
    })?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .map_err(|_| CliError::user(format!("unparseable line `{line}`")))?;
            return Ok(kb * 1024);
        }
    }
    Err(CliError::user("no VmHWM line in /proc/self/status"))
}

/// Removes the recorded stream even when a child fails mid-measurement.
struct TempFile(std::path::PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

//! `rppm dse` — million-point design-space exploration from one profile.

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm::core::{find_best, sweep, ConfigSpace, Constraints, DseError};
use rppm::docs::{describe_config as describe, dse_best_doc, dse_bounds_ladder, dse_sweep_doc};
use rppm::trace::{read_machine, DesignPoint};
use rppm::Session;

const USAGE: &str = "usage: rppm dse WORKLOAD [--scale S] [--seed N] [--jobs N]
       [--max-area A] [--max-power P] [--bound B] [--tiny] [--best-only]
       [--machine FILE] [--json]

Profiles WORKLOAD once, precomputes the configuration-independent model
state, then sweeps the default 108000-point design space (core family x
frequency x L1/L2/L3 x MSHRs x predictor budget) through the batched
Equation-1 evaluator. Prints the predicted optimum, the Pareto frontier
over (time, area, power) and the candidate counts within --bound
(default 0.05) of the optimum.

--max-area / --max-power filter points by first-order resource proxies
(arbitrary units; see rppm_core::area_proxy). --tiny swaps in the fixed
12-point golden space. --best-only skips the frontier and hunts only the
optimum, pruning points whose throughput lower bound cannot beat the
running best. --machine FILE builds the space around the `.machine`
description in FILE instead of the paper's base design point (the swept
axes override its core geometry; everything else is inherited). --json
emits the machine-readable twin.";

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut workload: Option<String> = None;
    let mut scale = 1.0f64;
    let mut seed = 1u64;
    let mut jobs = rppm_bench::default_jobs();
    let mut constraints = Constraints::none();
    let mut bound = 0.05f64;
    let mut tiny = false;
    let mut best_only = false;
    let mut machine: Option<String> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        match arg.as_str() {
            "--scale" => scale = args.parse_of(&arg)?,
            "--seed" => seed = args.parse_of(&arg)?,
            "--max-area" => constraints.max_area = Some(args.parse_of(&arg)?),
            "--max-power" => constraints.max_power = Some(args.parse_of(&arg)?),
            "--bound" => bound = args.parse_of(&arg)?,
            "--tiny" => tiny = true,
            "--best-only" => best_only = true,
            "--machine" => machine = Some(args.value_of(&arg)?),
            "--json" => json = true,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ if workload.is_none() => workload = Some(arg.into_positional()),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }
    let workload = workload.ok_or_else(|| args.error("missing the workload name"))?;
    if !(0.0..1.0).contains(&bound) {
        return Err(args.error(format!("--bound {bound} is not in [0, 1)")));
    }

    let session = Session::builder().jobs(jobs).build();
    let profile = session
        .workload(&workload)
        .map_err(CliError::user)?
        .scale(scale)
        .seed(seed)
        .profile();
    let prepared = profile.prepared();
    let base = match &machine {
        Some(path) => read_machine(path).map_err(CliError::user)?,
        None => DesignPoint::Base.config(),
    };
    let space = if tiny {
        ConfigSpace::tiny_from(base)
    } else {
        ConfigSpace::default_space_from(base)
    };

    let dse_err = |e: DseError| CliError::user(format!("{workload}: {e}"));

    if best_only {
        let out =
            find_best(prepared.inner(), &space, &constraints, bound, jobs).map_err(dse_err)?;
        let cfg = space.config(out.best.index);
        if json {
            let doc = dse_best_doc(&workload, &space, &out);
            println!("{}", serde_json::to_string(&doc).expect("doc serializes"));
        } else {
            println!(
                "{workload}: {} points, {} feasible, {} pruned without evaluation",
                out.points, out.feasible, out.pruned
            );
            println!(
                "best: #{} {} -> {:.6} ms (area {:.1}, power {:.1})",
                out.best.index,
                describe(&cfg),
                out.best.seconds * 1e3,
                out.best.area,
                out.best.power
            );
            println!(
                "{} candidate design(s) within {:.0}% of the predicted optimum",
                out.candidates,
                out.bound * 100.0
            );
        }
        return Ok(0);
    }

    let bounds = dse_bounds_ladder(bound);
    let out = sweep(prepared.inner(), &space, &constraints, &bounds, jobs).map_err(dse_err)?;

    if json {
        let doc = dse_sweep_doc(&workload, &space, &out);
        println!("{}", serde_json::to_string(&doc).expect("doc serializes"));
        return Ok(0);
    }

    println!(
        "{workload}: swept {} of {} design points ({} infeasible under the constraints)",
        out.feasible,
        out.points,
        out.points - out.feasible
    );
    println!(
        "best: #{} {} -> {:.6} ms",
        out.best.index,
        describe(&space.config(out.best.index)),
        out.best.seconds * 1e3
    );
    print!("candidates within bound:");
    for &(b, n) in &out.candidates {
        print!("  <{:.0}%: {n}", b * 100.0);
    }
    println!();
    println!();
    println!(
        "Pareto frontier over (time, area, power): {} point(s)",
        out.frontier.len()
    );
    const SHOWN: usize = 20;
    println!(
        "{:>8}  {:>12} {:>8} {:>8}  config",
        "index", "time (ms)", "area", "power"
    );
    for p in out.frontier.iter().take(SHOWN) {
        println!(
            "{:>8}  {:>12.6} {:>8.1} {:>8.1}  {}",
            p.index,
            p.seconds * 1e3,
            p.area,
            p.power,
            describe(&space.config(p.index))
        );
    }
    if out.frontier.len() > SHOWN {
        println!(
            "... {} more (use --json for all)",
            out.frontier.len() - SHOWN
        );
    }
    Ok(0)
}

//! `rppm dse` — million-point design-space exploration from one profile.

use super::{is_help, take_jobs};
use crate::args::{ArgStream, CliError};
use rppm::core::{find_best, sweep, ConfigSpace, Constraints, DseError, DsePoint};
use rppm::trace::MachineConfig;
use rppm::Session;
use serde_json::Value;

const USAGE: &str = "usage: rppm dse WORKLOAD [--scale S] [--seed N] [--jobs N]
       [--max-area A] [--max-power P] [--bound B] [--tiny] [--best-only] [--json]

Profiles WORKLOAD once, precomputes the configuration-independent model
state, then sweeps the default 108000-point design space (core family x
frequency x L1/L2/L3 x MSHRs x predictor budget) through the batched
Equation-1 evaluator. Prints the predicted optimum, the Pareto frontier
over (time, area, power) and the candidate counts within --bound
(default 0.05) of the optimum.

--max-area / --max-power filter points by first-order resource proxies
(arbitrary units; see rppm_core::area_proxy). --tiny swaps in the fixed
12-point golden space. --best-only skips the frontier and hunts only the
optimum, pruning points whose throughput lower bound cannot beat the
running best. --json emits the machine-readable twin.";

/// Bounds reported by the sweep (the paper's Table V ladder); `--bound`
/// appends to / replaces the last rung.
const BOUNDS: [f64; 4] = [0.0, 0.01, 0.03, 0.05];

fn describe(c: &MachineConfig) -> String {
    format!(
        "{}w/{}rob @{:.2}GHz l1={}K l2={}K l3={}M mshr={} bp={}K",
        c.dispatch_width,
        c.rob_size,
        c.freq_ghz,
        c.l1d.size_bytes >> 10,
        c.l2.size_bytes >> 10,
        c.l3.size_bytes >> 20,
        c.mshrs,
        c.bpred.size_bytes >> 10
    )
}

fn point_json(space: &ConfigSpace, p: &DsePoint) -> Value {
    Value::Object(vec![
        ("index".into(), Value::U64(p.index as u64)),
        (
            "config".into(),
            Value::String(describe(&space.config(p.index))),
        ),
        ("seconds".into(), Value::F64(p.seconds)),
        ("area".into(), Value::F64(p.area)),
        ("power".into(), Value::F64(p.power)),
    ])
}

pub fn run(argv: Vec<String>) -> Result<i32, CliError> {
    let mut args = ArgStream::new(argv, USAGE);
    let mut workload: Option<String> = None;
    let mut scale = 1.0f64;
    let mut seed = 1u64;
    let mut jobs = rppm_bench::default_jobs();
    let mut constraints = Constraints::none();
    let mut bound = 0.05f64;
    let mut tiny = false;
    let mut best_only = false;
    let mut json = false;
    while let Some(arg) = args.next() {
        if is_help(&arg) {
            println!("{USAGE}");
            return Ok(0);
        }
        if take_jobs(&mut args, &arg, &mut jobs)? {
            continue;
        }
        match arg.as_str() {
            "--scale" => scale = args.parse_of(&arg)?,
            "--seed" => seed = args.parse_of(&arg)?,
            "--max-area" => constraints.max_area = Some(args.parse_of(&arg)?),
            "--max-power" => constraints.max_power = Some(args.parse_of(&arg)?),
            "--bound" => bound = args.parse_of(&arg)?,
            "--tiny" => tiny = true,
            "--best-only" => best_only = true,
            "--json" => json = true,
            _ if arg.is_flag() => return Err(args.unknown(&arg)),
            _ if workload.is_none() => workload = Some(arg.into_positional()),
            _ => return Err(args.error(format!("unexpected argument `{}`", arg.into_positional()))),
        }
    }
    let workload = workload.ok_or_else(|| args.error("missing the workload name"))?;
    if !(0.0..1.0).contains(&bound) {
        return Err(args.error(format!("--bound {bound} is not in [0, 1)")));
    }

    let session = Session::builder().jobs(jobs).build();
    let profile = session
        .workload(&workload)
        .map_err(CliError::user)?
        .scale(scale)
        .seed(seed)
        .profile();
    let prepared = profile.prepared();
    let space = if tiny {
        ConfigSpace::tiny()
    } else {
        ConfigSpace::default_space()
    };

    let dse_err = |e: DseError| CliError::user(format!("{workload}: {e}"));

    if best_only {
        let out =
            find_best(prepared.inner(), &space, &constraints, bound, jobs).map_err(dse_err)?;
        let cfg = space.config(out.best.index);
        if json {
            let doc = Value::Object(vec![
                ("workload".into(), Value::String(workload)),
                ("points".into(), Value::U64(out.points as u64)),
                ("feasible".into(), Value::U64(out.feasible as u64)),
                ("pruned".into(), Value::U64(out.pruned as u64)),
                ("bound".into(), Value::F64(out.bound)),
                ("candidates".into(), Value::U64(out.candidates as u64)),
                ("best".into(), point_json(&space, &out.best)),
            ]);
            println!("{}", serde_json::to_string(&doc).expect("doc serializes"));
        } else {
            println!(
                "{workload}: {} points, {} feasible, {} pruned without evaluation",
                out.points, out.feasible, out.pruned
            );
            println!(
                "best: #{} {} -> {:.6} ms (area {:.1}, power {:.1})",
                out.best.index,
                describe(&cfg),
                out.best.seconds * 1e3,
                out.best.area,
                out.best.power
            );
            println!(
                "{} candidate design(s) within {:.0}% of the predicted optimum",
                out.candidates,
                out.bound * 100.0
            );
        }
        return Ok(0);
    }

    let mut bounds: Vec<f64> = BOUNDS.to_vec();
    if !bounds.iter().any(|b| (b - bound).abs() < 1e-15) {
        bounds.push(bound);
        bounds.sort_by(f64::total_cmp);
    }
    let out = sweep(prepared.inner(), &space, &constraints, &bounds, jobs).map_err(dse_err)?;

    if json {
        let doc = Value::Object(vec![
            ("workload".into(), Value::String(workload)),
            ("points".into(), Value::U64(out.points as u64)),
            ("feasible".into(), Value::U64(out.feasible as u64)),
            ("best".into(), point_json(&space, &out.best)),
            (
                "frontier".into(),
                Value::Array(out.frontier.iter().map(|p| point_json(&space, p)).collect()),
            ),
            (
                "candidates".into(),
                Value::Array(
                    out.candidates
                        .iter()
                        .map(|&(b, n)| {
                            Value::Object(vec![
                                ("bound".into(), Value::F64(b)),
                                ("count".into(), Value::U64(n as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", serde_json::to_string(&doc).expect("doc serializes"));
        return Ok(0);
    }

    println!(
        "{workload}: swept {} of {} design points ({} infeasible under the constraints)",
        out.feasible,
        out.points,
        out.points - out.feasible
    );
    println!(
        "best: #{} {} -> {:.6} ms",
        out.best.index,
        describe(&space.config(out.best.index)),
        out.best.seconds * 1e3
    );
    print!("candidates within bound:");
    for &(b, n) in &out.candidates {
        print!("  <{:.0}%: {n}", b * 100.0);
    }
    println!();
    println!();
    println!(
        "Pareto frontier over (time, area, power): {} point(s)",
        out.frontier.len()
    );
    const SHOWN: usize = 20;
    println!(
        "{:>8}  {:>12} {:>8} {:>8}  config",
        "index", "time (ms)", "area", "power"
    );
    for p in out.frontier.iter().take(SHOWN) {
        println!(
            "{:>8}  {:>12.6} {:>8.1} {:>8.1}  {}",
            p.index,
            p.seconds * 1e3,
            p.area,
            p.power,
            describe(&space.config(p.index))
        );
    }
    if out.frontier.len() > SHOWN {
        println!(
            "... {} more (use --json for all)",
            out.frontier.len() - SHOWN
        );
    }
    Ok(0)
}

//! Smoke tests for the unified `rppm` binary: help/usage text for every
//! subcommand, correct exit codes, one-line user errors (no panics, no
//! backtraces), and a tiny end-to-end report/convert/import round trip.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rppm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rppm"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn rppm")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts `out` is a user-error exit: status 2 and a single `error:` line
/// on stderr (plus optional usage text), never a panic/backtrace.
fn assert_user_error(out: &Output, needle: &str) {
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(out));
    let err = stderr(out);
    let first = err.lines().next().unwrap_or_default();
    assert!(
        first.starts_with("error: "),
        "first stderr line is the error: {err}"
    );
    assert!(err.contains(needle), "mentions `{needle}`: {err}");
    assert!(!err.contains("panicked"), "no panic: {err}");
    assert!(!err.contains("RUST_BACKTRACE"), "no backtrace hint: {err}");
}

#[test]
fn top_level_help_lists_every_subcommand() {
    for args in [vec!["--help"], vec!["help"], vec![]] {
        let out = rppm(&args);
        assert_eq!(out.status.code(), Some(0));
        let text = stdout(&out);
        for cmd in [
            "report", "run-all", "import", "convert", "dse", "serve", "load-gen", "golden", "bench",
        ] {
            assert!(text.contains(cmd), "help lists `{cmd}`: {text}");
        }
    }
}

#[test]
fn every_subcommand_prints_usage_on_help() {
    for (args, needle) in [
        (["report", "--help"], "usage: rppm report"),
        (["run-all", "--help"], "usage: rppm run-all"),
        (["import", "--help"], "usage: rppm import"),
        (["convert", "--help"], "usage: rppm convert"),
        (["dse", "--help"], "usage: rppm dse"),
        (["serve", "--help"], "usage: rppm serve"),
        (["load-gen", "--help"], "usage: rppm load-gen"),
        (["golden", "--help"], "usage: rppm golden diff"),
        (["bench", "--help"], "usage: rppm bench guard"),
    ] {
        let out = rppm(&args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        assert!(
            stdout(&out).contains(needle),
            "{args:?} usage text: {}",
            stdout(&out)
        );
    }
}

#[test]
fn unknown_command_and_flags_exit_2_with_usage() {
    let out = rppm(&["frobnicate"]);
    assert_user_error(&out, "unknown command `frobnicate`");
    assert!(stderr(&out).contains("usage: rppm"), "reprints usage");

    let out = rppm(&["report", "--frobnicate"]);
    assert_user_error(&out, "unknown flag `--frobnicate`");

    let out = rppm(&["report"]);
    assert_user_error(&out, "missing report name");

    let out = rppm(&["report", "nosuch"]);
    assert_user_error(&out, "unknown report `nosuch`");

    let out = rppm(&["report", "fig4", "not-a-number"]);
    assert_user_error(&out, "cannot parse `not-a-number`");

    // Surplus positionals are rejected, not silently dropped.
    let out = rppm(&["report", "table4", "0.5"]);
    assert_user_error(&out, "unexpected argument `0.5`");
    let out = rppm(&["report", "table2", "1.0", "junk"]);
    assert_user_error(&out, "unexpected argument `junk`");

    let out = rppm(&["golden", "explode"]);
    assert_user_error(&out, "unknown golden action `explode`");

    let out = rppm(&["dse"]);
    assert_user_error(&out, "missing the workload name");
    let out = rppm(&["dse", "nosuch", "--tiny"]);
    assert_user_error(&out, "unknown workload `nosuch`");
    let out = rppm(&["dse", "kmeans", "--bound", "2.0"]);
    assert_user_error(&out, "not in [0, 1)");

    let out = rppm(&["bench"]);
    assert_user_error(&out, "missing bench action");
}

#[test]
fn numeric_flag_values_are_validated_not_panicked_on() {
    // `--jobs 0` would deadlock a worker pool; every subcommand that
    // accepts it rejects zero up front with exit 2.
    for argv in [
        vec!["serve", "--jobs", "0"],
        vec!["load-gen", "--jobs=0"],
        vec!["dse", "kmeans", "--tiny", "--jobs", "0"],
    ] {
        let out = rppm(&argv);
        assert_user_error(&out, "--jobs must be at least 1, got 0");
    }
    let out = rppm(&["serve", "--workers", "0"]);
    assert_user_error(&out, "--workers must be at least 1, got 0");
    let out = rppm(&["serve", "--runners=0"]);
    assert_user_error(&out, "--runners must be at least 1, got 0");

    // Malformed numerics in the `--flag=value` spelling are one-line
    // exit-2 errors naming the flag, never a parse panic.
    let out = rppm(&["serve", "--max-entries=lots"]);
    assert_user_error(&out, "--max-entries: cannot parse `lots`");
    let out = rppm(&["serve", "--max-bytes=-1"]);
    assert_user_error(&out, "--max-bytes: cannot parse `-1`");
    let out = rppm(&["load-gen", "--requests=many"]);
    assert_user_error(&out, "--requests: cannot parse `many`");
    let out = rppm(&["dse", "kmeans", "--tiny", "--bound=fast"]);
    assert_user_error(&out, "--bound: cannot parse `fast`");
}

#[test]
fn user_errors_are_one_line_typed_messages() {
    // Missing trace file: the rppm::Error Display, not a panic.
    let out = rppm(&["import", "/definitely/not/here.json"]);
    assert_user_error(&out, "cannot access trace file");

    // Unknown workload on export.
    let out = rppm(&["import", "--export", "nosuch", "/tmp/x.json"]);
    assert_user_error(&out, "unknown workload `nosuch`");

    // Bad magic / corrupt content.
    let dir = std::env::temp_dir().join("rppm-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    let out = rppm(&["import", garbage.to_str().unwrap()]);
    assert_user_error(&out, "not valid JSON");

    // Missing bench capture.
    let out = rppm(&["bench", "guard", "/definitely/not/fresh.json"]);
    assert_user_error(&out, "cannot read");
}

#[test]
fn report_prints_a_table_and_convert_round_trips() {
    // table4 is static (no workload runs): instant and deterministic.
    let out = rppm(&["report", "table4"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Table IV"), "table4 header: {text}");

    // Export a tiny workload, convert JSON -> binary -> JSON, import it.
    let dir = std::env::temp_dir().join("rppm-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("roundtrip.json");
    let rpt = dir.join("roundtrip.rpt");
    let json2 = dir.join("roundtrip2.json");
    let export = rppm(&[
        "import",
        "--export",
        "nn",
        json.to_str().unwrap(),
        "--scale",
        "0.02",
    ]);
    assert_eq!(export.status.code(), Some(0), "{}", stderr(&export));
    assert!(stdout(&export).contains("exported `nn`"));

    let conv = rppm(&["convert", json.to_str().unwrap(), rpt.to_str().unwrap()]);
    assert_eq!(conv.status.code(), Some(0), "{}", stderr(&conv));
    assert!(stdout(&conv).contains("-> "));
    let back = rppm(&["convert", rpt.to_str().unwrap(), json2.to_str().unwrap()]);
    assert_eq!(back.status.code(), Some(0), "{}", stderr(&back));
    assert_eq!(
        std::fs::read(&json).unwrap(),
        std::fs::read(&json2).unwrap(),
        "JSON -> RPT1 -> JSON is byte-identical"
    );

    let import = rppm(&["import", rpt.to_str().unwrap(), "--jobs", "2"]);
    assert_eq!(import.status.code(), Some(0), "{}", stderr(&import));
    assert!(stdout(&import).contains("profiled once"));
}

#[test]
fn dse_sweeps_the_tiny_space_with_twins() {
    // The tiny 12-point space keeps this an actual smoke test; --json and
    // the text rendering must agree on the headline numbers.
    let out = rppm(&["dse", "nn", "--tiny", "--scale", "0.02", "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("swept 12 of 12 design points"), "{text}");
    assert!(text.contains("Pareto frontier"), "{text}");

    let out = rppm(&[
        "dse", "nn", "--tiny", "--scale", "0.02", "--jobs", "2", "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"points\":12"), "{json}");
    assert!(json.contains("\"frontier\":"), "{json}");

    // Constraints that eliminate everything are a typed user error.
    let out = rppm(&[
        "dse",
        "nn",
        "--tiny",
        "--scale",
        "0.02",
        "--max-area",
        "0.0001",
    ]);
    assert_user_error(&out, "no feasible design point");

    // --best-only reports pruning counters on the same space.
    let out = rppm(&[
        "dse",
        "nn",
        "--tiny",
        "--scale",
        "0.02",
        "--best-only",
        "--jobs",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("pruned without evaluation"));
}

#[test]
fn machine_flag_swaps_the_design_and_rejects_malformed_files() {
    // The committed base preset is the default config, so --machine with
    // it must be byte-identical to not passing the flag at all.
    let base = "../../examples/machines/base.machine";
    let plain = rppm(&[
        "dse", "nn", "--tiny", "--scale", "0.02", "--jobs", "2", "--json",
    ]);
    assert_eq!(plain.status.code(), Some(0), "stderr: {}", stderr(&plain));
    let with_machine = rppm(&[
        "dse",
        "nn",
        "--tiny",
        "--scale",
        "0.02",
        "--jobs",
        "2",
        "--json",
        "--machine",
        base,
    ]);
    assert_eq!(
        with_machine.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&with_machine)
    );
    assert_eq!(
        stdout(&plain),
        stdout(&with_machine),
        "--machine base.machine must equal the built-in default"
    );

    // sim-profile reports the machine's own name from the file.
    let out = rppm(&[
        "sim-profile",
        "nn",
        "--scale",
        "0.02",
        "--machine",
        "../../examples/machines/small.machine",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("@ small"), "{}", stdout(&out));

    // A malformed machine file is a one-line exit-2 error on every
    // subcommand taking the flag — with the parser's line diagnostic.
    let dir = std::env::temp_dir().join("rppm-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let broken = dir.join("broken.machine");
    std::fs::write(
        &broken,
        "rppm-machine v1\n[machine]\nname = broken\ncores = four\n",
    )
    .unwrap();
    let broken = broken.to_str().unwrap();
    for args in [
        vec!["report", "fig4", "0.02", "--machine", broken],
        vec!["dse", "nn", "--tiny", "--machine", broken],
        vec!["sim-profile", "nn", "--machine", broken],
    ] {
        let out = rppm(&args);
        assert_user_error(&out, "bad value for `cores`");
    }

    // A missing machine file carries the path.
    let out = rppm(&["dse", "nn", "--tiny", "--machine", "/no/such.machine"]);
    assert_user_error(&out, "/no/such.machine");
}

#[test]
fn golden_diff_detects_drift_against_perturbed_baseline() {
    // Against a bogus golden dir every baseline is missing: exit 1.
    let empty = std::env::temp_dir().join("rppm-cli-smoke-empty-golden");
    std::fs::create_dir_all(&empty).unwrap();
    let delta = std::env::temp_dir().join("rppm-cli-smoke/delta.txt");
    let out = rppm(&[
        "golden",
        "diff",
        "--jobs",
        "2",
        "--golden",
        empty.to_str().unwrap(),
        "--out",
        delta.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "drift exits 1: {}",
        stderr(&out)
    );
    assert!(stdout(&out).contains("missing baseline"));
    assert!(delta.exists(), "delta report always written");
}

#[test]
fn results_dir_has_committed_outputs_for_every_report() {
    // Guard the repo contract the run-all smoke in CI relies on: the
    // committed results/ dir carries both twins for every report name the
    // CLI accepts.
    let results = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for name in [
        "table1", "table2", "table3", "table4", "table5", "fig4", "fig5", "fig6", "ablation", "dse",
    ] {
        for ext in ["txt", "json"] {
            let p = results.join(format!("{name}.{ext}"));
            assert!(p.exists(), "missing committed {}", p.display());
        }
    }
}

//! Synthetic Rodinia and Parsec benchmark analogs.
//!
//! The paper evaluates RPPM on all OpenMP Rodinia v3.1 benchmarks and a
//! pthread Parsec v3.0 subset. Neither suite can run here (no x86 binaries,
//! no Pin), so this crate provides *behavioural analogs* built on the
//! `rppm-trace` DSL: each generator reproduces its namesake's documented
//! signature — thread/synchronization structure (Table III), working-set
//! and sharing behaviour (LLC MPKI up to ~40, MLP up to ~5), instruction
//! mix, branch predictability, and the parallel (im)balance categories of
//! Figure 6. See DESIGN.md §4 for the substitution rationale and the
//! per-benchmark characterizations.
//!
//! Dynamic synchronization counts are scaled down relative to Table III to
//! keep golden-reference simulation fast; every generator documents its
//! scale and [`Benchmark::build`] is deterministic in [`Params::seed`].
//!
//! # Example
//!
//! ```
//! use rppm_workloads::{by_name, Params};
//!
//! let bench = by_name("backprop").expect("known benchmark");
//! let program = bench.build(&Params::quick());
//! assert_eq!(program.name, "backprop");
//! assert!(program.total_ops() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod parsec;
pub mod rodinia;

use rppm_trace::Program;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia v3.1 (OpenMP): barrier-only synchronization, main thread is
    /// part of the worker team.
    Rodinia,
    /// Parsec v3.0 (pthreads): critical sections, barriers, condition
    /// variables, fork/join.
    Parsec,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Rodinia => f.write_str("rodinia"),
            Suite::Parsec => f.write_str("parsec"),
        }
    }
}

/// Generation parameters: a global work scale and a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Work multiplier: 1.0 is the full evaluation size (hundreds of
    /// thousands of ops per thread), smaller values shrink proportionally.
    pub scale: f64,
    /// Seed; different seeds give statistically identical but distinct
    /// dynamic streams (used to test profiling-run insensitivity).
    pub seed: u64,
}

impl Params {
    /// Full evaluation size.
    pub fn full() -> Self {
        Params {
            scale: 1.0,
            seed: 0x5EED,
        }
    }

    /// Reduced size for fast tests (~10% of full).
    pub fn quick() -> Self {
        Params {
            scale: 0.1,
            seed: 0x5EED,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales an op count (clamped to at least 64).
    pub(crate) fn ops(&self, n: u32) -> u32 {
        ((n as f64 * self.scale) as u32).max(64)
    }

    /// Scales a repetition count (sub-linearly, clamped to at least 2), so
    /// reduced-size runs keep a meaningful synchronization structure.
    pub(crate) fn rounds(&self, n: u32) -> u32 {
        ((n as f64 * self.scale.sqrt()) as u32).max(2)
    }

    /// Deterministic per-site seed derivation.
    pub(crate) fn seed_for(&self, bench: u64, thread: u32, epoch: u32) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(bench.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add((thread as u64) << 32)
            .wrapping_add(epoch as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::full()
    }
}

/// A named benchmark generator.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// Benchmark name (matches the paper's tables and figures).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    build_fn: fn(&Params) -> Program,
}

impl Benchmark {
    /// Builds the workload.
    pub fn build(&self, params: &Params) -> Program {
        (self.build_fn)(params)
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

macro_rules! bench {
    ($suite:ident, $module:ident, $name:ident) => {
        Benchmark {
            name: stringify!($name),
            suite: Suite::$suite,
            build_fn: $module::$name,
        }
    };
}

/// All Rodinia analogs: the paper's 16 (Table V order) plus two
/// expansion-set analogs (`hotspot3d`, `b+tree`) beyond the evaluated
/// subset.
pub const RODINIA: [Benchmark; 18] = [
    bench!(Rodinia, rodinia, backprop),
    bench!(Rodinia, rodinia, bfs),
    bench!(Rodinia, rodinia, cfd),
    bench!(Rodinia, rodinia, heartwall),
    bench!(Rodinia, rodinia, hotspot),
    bench!(Rodinia, rodinia, kmeans),
    bench!(Rodinia, rodinia, lavamd),
    bench!(Rodinia, rodinia, leukocyte),
    bench!(Rodinia, rodinia, lud),
    bench!(Rodinia, rodinia, myocyte),
    bench!(Rodinia, rodinia, nn),
    bench!(Rodinia, rodinia, nw),
    bench!(Rodinia, rodinia, particlefilter),
    bench!(Rodinia, rodinia, pathfinder),
    bench!(Rodinia, rodinia, srad),
    bench!(Rodinia, rodinia, streamcluster),
    bench!(Rodinia, rodinia, hotspot3d),
    bench!(Rodinia, rodinia, btree),
];

/// All Parsec analogs: the paper's 10 (Table III order) plus two
/// expansion-set pipeline analogs (`dedup`, `ferret`) beyond the evaluated
/// subset.
pub const PARSEC: [Benchmark; 12] = [
    bench!(Parsec, parsec, blackscholes),
    bench!(Parsec, parsec, bodytrack),
    bench!(Parsec, parsec, canneal),
    bench!(Parsec, parsec, facesim),
    bench!(Parsec, parsec, fluidanimate),
    bench!(Parsec, parsec, freqmine),
    bench!(Parsec, parsec, raytrace),
    bench!(Parsec, parsec, streamcluster_p),
    bench!(Parsec, parsec, swaptions),
    bench!(Parsec, parsec, vips),
    bench!(Parsec, parsec, dedup),
    bench!(Parsec, parsec, ferret),
];

/// Every benchmark, Rodinia first.
pub fn all() -> Vec<Benchmark> {
    RODINIA.iter().chain(PARSEC.iter()).copied().collect()
}

/// Looks a benchmark up by name (Parsec streamcluster is
/// `"streamcluster_p"` or `"streamcluster-p"`, distinguishing it from the
/// Rodinia one).
pub fn by_name(name: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| b.name == name || b.name.replace('_', "-") == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(RODINIA.len(), 18);
        assert_eq!(PARSEC.len(), 12);
        assert_eq!(all().len(), 30);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("backprop").is_some());
        assert!(by_name("streamcluster-p").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_benchmark_builds_and_validates() {
        let p = Params {
            scale: 0.02,
            seed: 1,
        };
        for b in all() {
            let prog = b.build(&p);
            assert!(prog.validate().is_ok(), "{} invalid", b.name);
            assert!(prog.total_ops() > 0, "{} empty", b.name);
            assert!(prog.num_threads() >= 2, "{} not parallel", b.name);
            assert!(prog.num_threads() <= 5, "{} too wide", b.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Params::quick();
        for b in [by_name("bfs").unwrap(), by_name("vips").unwrap()] {
            assert_eq!(b.build(&p), b.build(&p), "{}", b.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let b = by_name("backprop").unwrap();
        let a = b.build(&Params::quick());
        let c = b.build(&Params::quick().with_seed(99));
        assert_ne!(a, c);
    }

    #[test]
    fn scale_shrinks_work() {
        let b = by_name("cfd").unwrap();
        let small = b
            .build(&Params {
                scale: 0.05,
                seed: 1,
            })
            .total_ops();
        let big = b
            .build(&Params {
                scale: 0.5,
                seed: 1,
            })
            .total_ops();
        assert!(big > small * 3, "big {big} small {small}");
    }

    #[test]
    fn rodinia_is_barrier_only() {
        use rppm_trace::SyncOp;
        let p = Params {
            scale: 0.02,
            seed: 1,
        };
        for b in RODINIA {
            let prog = b.build(&p);
            for script in &prog.threads {
                for op in script.sync_ops() {
                    assert!(
                        matches!(
                            op,
                            SyncOp::Barrier {
                                via_cond: false,
                                ..
                            } | SyncOp::Create { .. }
                                | SyncOp::Join { .. }
                        ),
                        "{}: unexpected sync op {op}",
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn params_helpers_clamp() {
        let p = Params {
            scale: 0.0001,
            seed: 0,
        };
        assert!(p.ops(100_000) >= 64);
        assert!(p.rounds(10) >= 2);
        assert_ne!(p.seed_for(1, 0, 0), p.seed_for(1, 0, 1));
        assert_ne!(p.seed_for(1, 0, 0), p.seed_for(2, 0, 0));
    }
}

//! Parsec v3.0 analogs (pthread execution model).
//!
//! The ten pthread benchmarks the paper evaluates, with their Table III
//! synchronization signatures (dynamic counts scaled down ~10-350× to keep
//! golden-reference simulation tractable; the Table III harness prints the
//! achieved counts) and their Figure 6 balance categories:
//!
//! * well-balanced, idle main (main + 4 workers): `blackscholes`,
//!   `canneal`, `fluidanimate`, `raytrace`, `swaptions`;
//! * main performs real work (4 threads): `facesim`, `freqmine`,
//!   `bodytrack`;
//! * highly imbalanced, idle main + 3 workers: `streamcluster_p`, `vips`.

use crate::Params;
use rppm_trace::{AddressPattern, BlockSpec, BranchPattern, Program, ProgramBuilder};

/// `blackscholes`: embarrassingly parallel option pricing. No
/// synchronization at all besides fork/join (Table III row is empty);
/// main + 4 workers, main idle.
pub fn blackscholes(p: &Params) -> Program {
    const ID: u64 = 21;
    let mut b = ProgramBuilder::new("blackscholes", 5);
    let options = b.alloc_region(500_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.20)
            .stores(0.04)
            .branches(0.05)
            .fp(0.32, 0.24)
            .fp_div(0.02)
            .deps(0.30, 5.0)
            .branch_pattern(BranchPattern::bernoulli(0.95))
            .code_footprint(28),
    );
    b.spawn_workers();
    for t in 1..5u32 {
        let mut s = tpl.with_ops(p.ops(220_000)).with_seed(p.seed_for(ID, t, 0));
        s.addr = vec![(
            AddressPattern::stream(options.chunk((t - 1) as u64, 4)),
            1.0,
        )];
        b.thread(t).block(s);
    }
    b.join_workers();
    b.build()
}

/// `bodytrack`: particle-filter body tracking. Per frame: the main thread
/// hands work out through a condition variable, workers mix compute with
/// frequent short critical sections (weight accumulation) and synchronize
/// at barriers (Table III: CS ≫ barriers > cond. vars). Main works too.
pub fn bodytrack(p: &Params) -> Program {
    const ID: u64 = 22;
    let mut b = ProgramBuilder::new("bodytrack", 4);
    let frames_data = b.alloc_region(200_000);
    let weights = b.alloc_region(1_024);
    let q = b.alloc_queue();
    let m = b.alloc_mutex();
    let bar = b.alloc_barrier();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.24)
            .stores(0.06)
            .branches(0.10)
            .fp(0.22, 0.12)
            .deps(0.35, 4.0)
            .branch_pattern(BranchPattern::bernoulli(0.75))
            .sites(2)
            .code_footprint(120),
    );
    let cs_tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.3)
            .stores(0.25)
            .deps(0.5, 2.0)
            .code_footprint(4),
    );
    b.spawn_workers();
    let frames = p.rounds(6);
    let locks_per_stage = p.rounds(14);
    for f in 0..frames {
        // Main prepares the frame and releases the workers.
        let mut prep = tpl
            .with_ops(p.ops(12_000))
            .with_seed(p.seed_for(ID, 0, f * 7));
        prep.addr = vec![(
            AddressPattern::stream_from(frames_data, f as u64 * 9_000),
            1.0,
        )];
        b.thread(0u32).block(prep).produce(q, 3);
        for t in 1..4u32 {
            b.thread(t).consume(q);
        }
        // Two stages: compute + accumulation critical sections + barrier.
        for stage in 0..2u32 {
            for t in 0..4u32 {
                let e = f * 2 + stage;
                let mut s = tpl.with_ops(p.ops(18_000)).with_seed(p.seed_for(ID, t, e));
                s.addr = vec![(AddressPattern::hot(frames_data, 20_000, 0.8), 1.0)];
                b.thread(t).block(s);
                for k in 0..locks_per_stage {
                    let mut cs =
                        cs_tpl
                            .with_ops(120)
                            .with_seed(p.seed_for(ID ^ 0xCC, t, e * 100 + k));
                    cs.addr = vec![(AddressPattern::random(weights), 1.0)];
                    b.thread(t).lock(m).block(cs).unlock(m);
                }
                b.thread(t).barrier(bar);
            }
        }
    }
    b.join_workers();
    b.build()
}

/// `canneal`: simulated annealing of a netlist. Random accesses over a
/// huge working set (the suite's MPKI champion) with migratory writes
/// (element swaps → coherence traffic); a handful of critical sections and
/// temperature-step barriers. Main idle.
pub fn canneal(p: &Params) -> Program {
    const ID: u64 = 23;
    let mut b = ProgramBuilder::new("canneal", 5);
    let netlist = b.alloc_region(1 << 20); // 64 MB
    let shared_elems = b.alloc_region(50_000);
    let m = b.alloc_mutex();
    let bar = b.alloc_barrier();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.08)
            .branches(0.11)
            .deps(0.40, 3.0)
            .load_chain(0.15)
            .branch_pattern(BranchPattern::bernoulli(0.5))
            .code_footprint(32),
    );
    b.spawn_workers();
    let steps = p.rounds(16);
    for t in 1..5u32 {
        // One global-lock acquisition per worker (netlist setup): the
        // paper's 4 dynamic critical sections.
        b.thread(t)
            .lock(m)
            .block(tpl.with_ops(256).with_seed(p.seed_for(ID ^ 0xAA, t, 0)))
            .unlock(m);
    }
    for step in 0..steps {
        for t in 1..5u32 {
            let mut s = tpl
                .with_ops(p.ops(26_000))
                .with_seed(p.seed_for(ID, t, step));
            s.addr = vec![
                (AddressPattern::random(netlist), 0.8),
                (AddressPattern::random(shared_elems), 0.2),
            ];
            s.store_addr = vec![(AddressPattern::random(shared_elems), 1.0)];
            b.thread(t).block(s).barrier(bar);
        }
    }
    b.join_workers();
    b.build()
}

/// `facesim`: physics-based face simulation. Condition-variable task
/// queue: the main thread partitions work and dispatches tasks each frame,
/// doing a little more work than the workers (Figure 6: fairly balanced,
/// main slightly heavier).
pub fn facesim(p: &Params) -> Program {
    const ID: u64 = 24;
    let mut b = ProgramBuilder::new("facesim", 4);
    let mesh = b.alloc_region(180_000);
    let shared_state = b.alloc_region(2_048);
    let tasks = b.alloc_queue();
    let done = b.alloc_queue();
    let m = b.alloc_mutex();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.24)
            .stores(0.08)
            .branches(0.06)
            .fp(0.30, 0.16)
            .fp_div(0.01)
            .deps(0.35, 4.5)
            .branch_pattern(BranchPattern::loop_every(36))
            .code_footprint(200),
    );
    b.spawn_workers();
    let frames = p.rounds(10);
    for f in 0..frames {
        // Main: assembles the system (heavier), then dispatches 3 tasks.
        let mut main_work = tpl.with_ops(p.ops(30_000)).with_seed(p.seed_for(ID, 0, f));
        main_work.addr = vec![(AddressPattern::stream_dense(mesh.chunk(0, 4), 2), 1.0)];
        b.thread(0u32).block(main_work).produce(tasks, 3);
        for t in 1..4u32 {
            let mut s = tpl.with_ops(p.ops(24_000)).with_seed(p.seed_for(ID, t, f));
            s.addr = vec![(
                AddressPattern::stream_dense(mesh.chunk(t as u64, 4), 2),
                1.0,
            )];
            b.thread(t).consume(tasks).block(s);
            // Short critical sections on the shared solver state (the paper
            // counts 10,472 of these; ~8.5 per cond-var event).
            for k in 0..p.rounds(8) {
                let mut cs = tpl
                    .with_ops(96)
                    .with_seed(p.seed_for(ID ^ 0xFA, t, f * 100 + k));
                cs.addr = vec![(AddressPattern::random(shared_state), 1.0)];
                b.thread(t).lock(m).block(cs).unlock(m);
            }
            b.thread(t).produce(done, 1);
        }
        for _ in 0..3 {
            b.thread(0u32).consume(done);
        }
    }
    b.join_workers();
    b.build()
}

/// `fluidanimate`: SPH fluid simulation. The suite's critical-section
/// monster (Table III: 2.1M dynamic CS; ours are scaled ~350×): per frame,
/// workers interleave short per-cell critical sections (striped mutexes)
/// with private compute, plus a frame barrier. Main idle.
pub fn fluidanimate(p: &Params) -> Program {
    const ID: u64 = 25;
    const STRIPES: u32 = 8;
    let mut b = ProgramBuilder::new("fluidanimate", 5);
    let cells = b.alloc_region(120_000);
    let boundary = b.alloc_region(4_000);
    let mutexes: Vec<_> = (0..STRIPES).map(|_| b.alloc_mutex()).collect();
    let bar = b.alloc_barrier();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.26)
            .stores(0.09)
            .branches(0.06)
            .fp(0.26, 0.14)
            .deps(0.32, 4.5)
            .branch_pattern(BranchPattern::loop_every(18))
            .code_footprint(60),
    );
    let cs_tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.3)
            .stores(0.3)
            .fp(0.2, 0.0)
            .deps(0.5, 2.0)
            .code_footprint(6),
    );
    b.spawn_workers();
    let frames = p.rounds(5);
    let cs_per_frame = p.rounds(300);
    for f in 0..frames {
        for t in 1..5u32 {
            for k in 0..cs_per_frame {
                let e = f * 1000 + k;
                let mut out = tpl.with_ops(p.ops(700)).with_seed(p.seed_for(ID, t, e));
                out.addr = vec![(AddressPattern::random(cells.chunk((t - 1) as u64, 4)), 1.0)];
                b.thread(t).block(out);
                let mut cs = cs_tpl.with_ops(48).with_seed(p.seed_for(ID ^ 0xF1, t, e));
                cs.addr = vec![(AddressPattern::random(boundary), 1.0)];
                let mtx = mutexes[((t * 31 + k) % STRIPES) as usize];
                b.thread(t).lock(mtx).block(cs).unlock(mtx);
            }
            b.thread(t).barrier(bar);
        }
    }
    b.join_workers();
    b.build()
}

/// `freqmine`: FP-growth frequent itemset mining. Join-only
/// synchronization; the main thread is the clear bottleneck (Figure 6): it
/// mines the largest conditional trees itself while workers handle smaller
/// ones. Integer- and branch-heavy pointer chasing.
pub fn freqmine(p: &Params) -> Program {
    const ID: u64 = 26;
    let mut b = ProgramBuilder::new("freqmine", 4);
    let tree = b.alloc_region(350_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.05)
            .branches(0.15)
            .int_muldiv(0.01, 0.0)
            .deps(0.45, 3.0)
            .load_chain(0.25)
            .branch_pattern(BranchPattern::bernoulli(0.7))
            .sites(3)
            .code_footprint(80),
    );
    // Main builds the FP-tree serially first.
    let mut build = tpl.with_ops(p.ops(70_000)).with_seed(p.seed_for(ID, 0, 0));
    build.addr = vec![(AddressPattern::hot(tree, 40_000, 0.6), 1.0)];
    b.thread(0u32).block(build);
    b.spawn_workers();
    // Mining: main takes the big items, workers the small ones.
    for phase in 0..3u32 {
        let mut main_mine = tpl
            .with_ops(p.ops(60_000))
            .with_seed(p.seed_for(ID, 0, phase + 1));
        main_mine.addr = vec![(AddressPattern::random(tree), 1.0)];
        b.thread(0u32).block(main_mine);
    }
    for t in 1..4u32 {
        for phase in 0..2u32 {
            let mut s = tpl
                .with_ops(p.ops(45_000))
                .with_seed(p.seed_for(ID, t, phase));
            s.addr = vec![(AddressPattern::random(tree), 1.0)];
            b.thread(t).block(s);
        }
    }
    b.join_workers();
    b.build()
}

/// `raytrace`: real-time ray tracing. The main thread publishes the tile
/// queue once; workers pull tiles (condition variable) and trace rays over
/// a hot BVH with occasional work-stealing locks. Balanced workers, idle
/// main.
pub fn raytrace(p: &Params) -> Program {
    const ID: u64 = 27;
    let mut b = ProgramBuilder::new("raytrace", 5);
    let bvh = b.alloc_region(60_000);
    let framebuf = b.alloc_region(40_000);
    let q = b.alloc_queue();
    let m = b.alloc_mutex();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.26)
            .stores(0.05)
            .branches(0.09)
            .fp(0.30, 0.20)
            .deps(0.38, 3.5)
            .load_chain(0.20)
            .branch_pattern(BranchPattern::bernoulli(0.8))
            .sites(2)
            .code_footprint(150),
    );
    b.spawn_workers();
    let tiles_per_worker = p.rounds(12);
    b.thread(0u32).produce(q, 4 * tiles_per_worker);
    for t in 1..5u32 {
        for k in 0..tiles_per_worker {
            let mut s = tpl.with_ops(p.ops(18_000)).with_seed(p.seed_for(ID, t, k));
            s.addr = vec![
                (AddressPattern::hot(bvh, 6_000, 0.75), 0.85),
                (
                    AddressPattern::stream(framebuf.chunk((t - 1) as u64, 4)),
                    0.15,
                ),
            ];
            b.thread(t).consume(q).block(s);
            // Work-stealing lock after each tile (Table III: 47 CS).
            b.thread(t)
                .lock(m)
                .block(tpl.with_ops(96).with_seed(p.seed_for(ID ^ 0x77, t, k)))
                .unlock(m);
        }
    }
    b.join_workers();
    b.build()
}

/// `streamcluster` (Parsec pthread version): the barrier storm of the
/// suite (Table III: 13k dynamic barriers; ours scaled ~25×). Main + 3
/// workers, main passive after setup — Figure 6's "highly imbalanced"
/// category (worker parallelism 3, main parallelism 1).
pub fn streamcluster_p(p: &Params) -> Program {
    const ID: u64 = 28;
    let mut b = ProgramBuilder::new("streamcluster_p", 4);
    let points = b.alloc_region(220_000);
    let centers = b.alloc_region(96);
    let bar = b.alloc_barrier();
    let phase_bar = b.alloc_barrier();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.03)
            .branches(0.10)
            .fp(0.18, 0.10)
            .deps(0.28, 5.0)
            .branch_pattern(BranchPattern::bernoulli(0.8))
            .code_footprint(20),
    );
    // Main does brief setup then only coordinates.
    b.thread(0u32)
        .block(tpl.with_ops(p.ops(8_000)).with_seed(p.seed_for(ID, 0, 0)));
    b.spawn_workers();
    let rounds = p.rounds(160);
    for r in 0..rounds {
        for t in 1..4u32 {
            let skew = 1.0 + 0.1 * ((t + r) % 3) as f64;
            let ops = (p.ops(1_800) as f64 * skew) as u32;
            let mut s = tpl.with_ops(ops.max(64)).with_seed(p.seed_for(ID, t, r));
            s.addr = vec![
                (
                    AddressPattern::stream_from(points.chunk((t - 1) as u64, 3), r as u64 * 600),
                    0.72,
                ),
                (AddressPattern::random(centers), 0.28),
            ];
            b.thread(t).block(s).barrier(bar);
        }
        // Occasional phase change implemented with a condition variable.
        if r % (rounds / 8).max(1) == 0 {
            for t in 1..4u32 {
                b.thread(t).cond_barrier(phase_bar);
            }
        }
    }
    b.join_workers();
    b.build()
}

/// `swaptions`: Monte-Carlo swaption pricing. Join-only, embarrassingly
/// parallel, tiny cache-resident state per worker; idle main.
pub fn swaptions(p: &Params) -> Program {
    const ID: u64 = 29;
    let mut b = ProgramBuilder::new("swaptions", 5);
    let curves = b.alloc_region(3_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.18)
            .stores(0.04)
            .branches(0.07)
            .fp(0.30, 0.25)
            .fp_div(0.015)
            .deps(0.30, 4.0)
            .branch_pattern(BranchPattern::loop_every(25))
            .code_footprint(40),
    );
    b.spawn_workers();
    for t in 1..5u32 {
        let mut s = tpl.with_ops(p.ops(230_000)).with_seed(p.seed_for(ID, t, 0));
        s.addr = vec![(AddressPattern::hot(curves, 500, 0.8), 1.0)];
        b.thread(t).block(s);
    }
    b.join_workers();
    b.build()
}

/// `vips`: image-processing pipeline over condition variables. Thread 1 is
/// the heavier producer stage feeding two consumer stages; the main thread
/// only orchestrates — Figure 6's imbalanced category.
pub fn vips(p: &Params) -> Program {
    const ID: u64 = 30;
    let mut b = ProgramBuilder::new("vips", 4);
    let image = b.alloc_region(260_000);
    let out = b.alloc_region(260_000);
    let bufmeta = b.alloc_region(512);
    let q = b.alloc_queue();
    let m = b.alloc_mutex();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.26)
            .stores(0.10)
            .branches(0.07)
            .fp(0.18, 0.10)
            .deps(0.30, 5.0)
            .branch_pattern(BranchPattern::loop_every(40))
            .code_footprint(90),
    );
    b.spawn_workers();
    let strips = p.rounds(35);
    for k in 0..strips {
        // Producer stage: decode + first filter (heavier).
        let mut prod = tpl.with_ops(p.ops(9_000)).with_seed(p.seed_for(ID, 1, k));
        prod.addr = vec![(AddressPattern::stream_from(image, k as u64 * 7_000), 1.0)];
        b.thread(1u32).block(prod).produce(q, 2);
        // Two consumer stages; buffer-tracking critical sections around
        // each strip (the paper counts 8,973 CS vs 1,433 cond events).
        for t in 2..4u32 {
            let mut cons = tpl.with_ops(p.ops(6_000)).with_seed(p.seed_for(ID, t, k));
            cons.addr = vec![
                (
                    AddressPattern::stream_from(image, k as u64 * 7_000 + (t as u64) * 1_500),
                    0.7,
                ),
                (AddressPattern::stream_from(out, k as u64 * 7_000), 0.3),
            ];
            b.thread(t).consume(q).block(cons);
            for j in 0..3u32 {
                let mut cs = tpl
                    .with_ops(64)
                    .with_seed(p.seed_for(ID ^ 0xB0F, t, k * 10 + j));
                cs.addr = vec![(AddressPattern::random(bufmeta), 1.0)];
                b.thread(t).lock(m).block(cs).unlock(m);
            }
        }
    }
    b.join_workers();
    b.build()
}

/// `dedup` (beyond the paper's evaluated subset): the kernel's
/// three-stage deduplication pipeline over condition-variable queues.
/// Thread 1 chunks and fingerprints the input stream (streaming loads,
/// integer hashing), threads 2-3 compress chunks (compute-heavy consumers),
/// thread 4 reorders and writes output; every stage guards the shared
/// hash-table index with short critical sections. Main only orchestrates —
/// a producer/consumer marker workload in the paper's Section III-A sense.
pub fn dedup(p: &Params) -> Program {
    const ID: u64 = 31;
    let mut b = ProgramBuilder::new("dedup", 5);
    let input = b.alloc_region(420_000);
    let output = b.alloc_region(300_000);
    let hashtab = b.alloc_region(30_000);
    let chunks = b.alloc_queue(); // stage 1 -> stage 2 (compressors)
    let packed = b.alloc_queue(); // stage 2 -> stage 3 (writer)
    let m = b.alloc_mutex();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.28)
            .stores(0.08)
            .branches(0.11)
            .int_muldiv(0.02, 0.0)
            .deps(0.40, 3.0)
            .branch_pattern(BranchPattern::bernoulli(0.7))
            .sites(2)
            .code_footprint(70),
    );
    let cs_tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.35)
            .stores(0.2)
            .deps(0.5, 2.0)
            .code_footprint(4),
    );
    b.spawn_workers();
    let batches = p.rounds(24);
    for k in 0..batches {
        // Stage 1: chunk + fingerprint (one compressed unit per consumer).
        let mut chunk = tpl.with_ops(p.ops(8_000)).with_seed(p.seed_for(ID, 1, k));
        chunk.addr = vec![(AddressPattern::stream_from(input, k as u64 * 9_000), 1.0)];
        let mut probe = cs_tpl.with_ops(96).with_seed(p.seed_for(ID ^ 0xDD, 1, k));
        probe.addr = vec![(AddressPattern::random(hashtab), 1.0)];
        b.thread(1u32)
            .block(chunk)
            .lock(m)
            .block(probe)
            .unlock(m)
            .produce(chunks, 2);
        // Stage 2: two parallel compressors.
        for t in 2..4u32 {
            let mut comp = tpl.with_ops(p.ops(7_000)).with_seed(p.seed_for(ID, t, k));
            comp.addr = vec![(
                AddressPattern::stream_from(input, k as u64 * 9_000 + t as u64 * 2_000),
                1.0,
            )];
            let mut update = cs_tpl.with_ops(64).with_seed(p.seed_for(ID ^ 0xEE, t, k));
            update.addr = vec![(AddressPattern::random(hashtab), 1.0)];
            b.thread(t)
                .consume(chunks)
                .block(comp)
                .lock(m)
                .block(update)
                .unlock(m)
                .produce(packed, 1);
        }
        // Stage 3: reorder + write (lighter than compression).
        for _ in 0..2 {
            b.thread(4u32).consume(packed);
        }
        let mut write = tpl.with_ops(p.ops(3_500)).with_seed(p.seed_for(ID, 4, k));
        write.addr = vec![(AddressPattern::stream_from(output, k as u64 * 6_000), 1.0)];
        b.thread(4u32).block(write);
    }
    b.join_workers();
    b.build()
}

/// `ferret` (beyond the paper's evaluated subset): content-based similarity
/// search as a four-stage pipeline (segment, extract, index, rank) chained
/// through condition-variable queues, with the rank stage the clear
/// bottleneck — the canonical imbalanced-pipeline counterpart to `dedup`'s
/// balanced one. The index stage probes a shared database under a lock.
pub fn ferret(p: &Params) -> Program {
    const ID: u64 = 32;
    let mut b = ProgramBuilder::new("ferret", 5);
    let images = b.alloc_region(350_000);
    let database = b.alloc_region(200_000);
    let ranks = b.alloc_region(1_024);
    let q: Vec<_> = (0..3).map(|_| b.alloc_queue()).collect();
    let m = b.alloc_mutex();
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.26)
            .stores(0.05)
            .branches(0.09)
            .fp(0.22, 0.13)
            .deps(0.36, 3.5)
            .load_chain(0.15)
            .branch_pattern(BranchPattern::bernoulli(0.75))
            .sites(3)
            .code_footprint(110),
    );
    b.spawn_workers();
    let queries = p.rounds(20);
    // Stage weights: rank (thread 4) dominates, as in the real kernel.
    let stage_ops = [4_000u32, 6_000, 7_000, 14_000];
    for k in 0..queries {
        // Stage 1 (thread 1): segment the query image.
        let mut seg = tpl
            .with_ops(p.ops(stage_ops[0]))
            .with_seed(p.seed_for(ID, 1, k));
        seg.addr = vec![(AddressPattern::stream_from(images, k as u64 * 8_000), 1.0)];
        b.thread(1u32).block(seg).produce(q[0], 1);
        // Stage 2 (thread 2): extract features.
        let mut ext = tpl
            .with_ops(p.ops(stage_ops[1]))
            .with_seed(p.seed_for(ID, 2, k));
        ext.addr = vec![(
            AddressPattern::stream_from(images, k as u64 * 8_000 + 2_000),
            1.0,
        )];
        b.thread(2u32).consume(q[0]).block(ext).produce(q[1], 1);
        // Stage 3 (thread 3): probe the shared index under a lock.
        let mut idx = tpl
            .with_ops(p.ops(stage_ops[2]))
            .with_seed(p.seed_for(ID, 3, k));
        idx.addr = vec![(AddressPattern::hot(database, 12_000, 0.7), 1.0)];
        let mut probe = tpl.with_ops(128).with_seed(p.seed_for(ID ^ 0xFE, 3, k));
        probe.addr = vec![(AddressPattern::random(database), 1.0)];
        b.thread(3u32)
            .consume(q[1])
            .block(idx)
            .lock(m)
            .block(probe)
            .unlock(m)
            .produce(q[2], 1);
        // Stage 4 (thread 4): rank candidates — the bottleneck stage.
        let mut rank = tpl
            .with_ops(p.ops(stage_ops[3]))
            .with_seed(p.seed_for(ID, 4, k));
        rank.addr = vec![
            (AddressPattern::random(database), 0.8),
            (AddressPattern::random(ranks), 0.2),
        ];
        b.thread(4u32).consume(q[2]).block(rank);
    }
    b.join_workers();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;
    use rppm_trace::SyncOp;

    fn quick() -> Params {
        Params {
            scale: 0.05,
            seed: 3,
        }
    }

    fn count_events(prog: &Program) -> (u64, u64, u64) {
        let mut cs = 0;
        let mut bar = 0;
        let mut cond = 0;
        for th in &prog.threads {
            for op in th.sync_ops() {
                match op {
                    SyncOp::Lock { .. } => cs += 1,
                    SyncOp::Barrier {
                        via_cond: false, ..
                    } => bar += 1,
                    SyncOp::Barrier { via_cond: true, .. }
                    | SyncOp::Produce { .. }
                    | SyncOp::Consume { .. } => cond += 1,
                    _ => {}
                }
            }
        }
        (cs, bar, cond)
    }

    #[test]
    fn blackscholes_has_no_sync_besides_join() {
        let (cs, bar, cond) = count_events(&blackscholes(&quick()));
        assert_eq!((cs, bar, cond), (0, 0, 0));
    }

    #[test]
    fn swaptions_and_freqmine_are_join_only() {
        for prog in [swaptions(&quick()), freqmine(&quick())] {
            let (cs, bar, cond) = count_events(&prog);
            assert_eq!((cs, bar, cond), (0, 0, 0), "{}", prog.name);
        }
    }

    #[test]
    fn fluidanimate_is_cs_dominated() {
        let (cs, bar, cond) = count_events(&fluidanimate(&Params::full()));
        assert!(cs > 40 * bar.max(1), "cs {cs} vs barriers {bar}");
        assert_eq!(cond, 0);
        assert!(cs >= 4_000, "cs {cs}");
    }

    #[test]
    fn streamcluster_p_is_barrier_dominated() {
        let (cs, bar, cond) = count_events(&streamcluster_p(&Params::full()));
        assert_eq!(cs, 0);
        assert!(bar > 300, "barriers {bar}");
        assert!(cond > 0 && cond < bar / 4, "cond {cond}");
    }

    #[test]
    fn facesim_and_vips_are_condvar_heavy_with_cs() {
        // Table III: both use condition variables heavily plus many short
        // critical sections, and no barriers.
        for prog in [facesim(&Params::full()), vips(&Params::full())] {
            let (cs, bar, cond) = count_events(&prog);
            assert_eq!(bar, 0, "{}", prog.name);
            assert!(
                cs > cond,
                "{}: cs {cs} should outnumber cond {cond}",
                prog.name
            );
            assert!(cond > 50, "{}: cond {cond}", prog.name);
        }
    }

    #[test]
    fn bodytrack_mixes_all_three() {
        let (cs, bar, cond) = count_events(&bodytrack(&Params::full()));
        assert!(cs > bar && bar > cond / 4, "cs {cs} bar {bar} cond {cond}");
        assert!(cs > 300 && bar > 20 && cond > 10);
    }

    #[test]
    fn canneal_has_four_critical_sections() {
        let (cs, _, _) = count_events(&canneal(&quick()));
        assert_eq!(cs, 4);
    }

    #[test]
    fn raytrace_matches_table_iii_shape() {
        let (cs, bar, cond) = count_events(&raytrace(&Params::full()));
        assert_eq!(bar, 0);
        assert!(cs > 10 && cs < 100, "cs {cs}");
        assert!(cond > 10, "cond {cond}");
    }

    #[test]
    fn idle_main_benchmarks_have_light_thread_zero() {
        for prog in [
            blackscholes(&quick()),
            canneal(&quick()),
            swaptions(&quick()),
            vips(&quick()),
        ] {
            let main_ops = prog.threads[0].total_ops();
            let worker_ops: u64 = (1..prog.num_threads())
                .map(|t| prog.threads[t].total_ops())
                .sum();
            assert!(
                main_ops * 20 < worker_ops.max(1),
                "{}: main {main_ops} vs workers {worker_ops}",
                prog.name
            );
        }
    }

    #[test]
    fn freqmine_main_is_the_bottleneck() {
        let prog = freqmine(&quick());
        let main_ops = prog.threads[0].total_ops();
        for t in 1..4 {
            assert!(main_ops > prog.threads[t].total_ops(), "main must dominate");
        }
    }

    #[test]
    fn dedup_and_ferret_are_condvar_pipelines() {
        for prog in [dedup(&Params::full()), ferret(&Params::full())] {
            let (cs, bar, cond) = count_events(&prog);
            assert_eq!(bar, 0, "{}: pipelines use no barriers", prog.name);
            assert!(cond > 50, "{}: cond {cond}", prog.name);
            assert!(cs > 0, "{}: expected index critical sections", prog.name);
        }
    }

    #[test]
    fn ferret_rank_stage_is_the_bottleneck() {
        let prog = ferret(&quick());
        let rank_ops = prog.threads[4].total_ops();
        for t in 1..4 {
            assert!(
                rank_ops > prog.threads[t].total_ops(),
                "rank stage must dominate stage {t}"
            );
        }
    }

    #[test]
    fn produce_counts_cover_consumes() {
        use std::collections::HashMap;
        for prog in [
            facesim(&quick()),
            vips(&quick()),
            raytrace(&quick()),
            bodytrack(&quick()),
            dedup(&quick()),
            ferret(&quick()),
        ] {
            let mut produced: HashMap<u32, i64> = HashMap::new();
            for th in &prog.threads {
                for op in th.sync_ops() {
                    match op {
                        SyncOp::Produce { queue, count } => {
                            *produced.entry(queue.0).or_default() += *count as i64;
                        }
                        SyncOp::Consume { queue } => {
                            *produced.entry(queue.0).or_default() -= 1;
                        }
                        _ => {}
                    }
                }
            }
            for (q, balance) in produced {
                assert!(
                    balance >= 0,
                    "{}: queue {q} consumes {} more than produced",
                    prog.name,
                    -balance
                );
            }
        }
    }
}

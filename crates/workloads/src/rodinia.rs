//! Rodinia v3.1 analogs (OpenMP execution model).
//!
//! Every Rodinia benchmark follows the OpenMP team pattern the paper
//! describes: the main thread initializes, a team of main + 3 workers
//! executes barrier-delimited parallel regions, and the main thread
//! finalizes. Synchronization is barrier-only (Section IV). Each generator
//! dials in its namesake's documented character: working-set size
//! (LLC MPKI up to ~40), memory-level parallelism (up to ~5 for
//! `backprop`), instruction mix, branch behaviour and per-epoch balance.

use crate::Params;
use rppm_trace::{AddressPattern, BlockSpec, BranchPattern, Program, ProgramBuilder};

/// Threads in the OpenMP team (main + 3 workers, matching the paper's
/// quad-core setup).
const TEAM: u32 = 4;

/// Deterministic per-(thread, epoch) work-imbalance factor in
/// `[1-spread, 1+spread]`.
fn imbalance(p: &Params, bench: u64, t: u32, e: u32, spread: f64) -> f64 {
    let h = p.seed_for(bench ^ 0xBA1A, t, e);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + spread * (2.0 * u - 1.0)
}

/// Common OpenMP-style team loop: `epochs` barrier-delimited parallel
/// regions on a pre-configured builder, with per-(thread, epoch) blocks
/// provided by `body`.
fn team_loop(
    mut b: ProgramBuilder,
    epochs: u32,
    mut body: impl FnMut(u32, u32) -> BlockSpec,
) -> Program {
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for e in 0..epochs {
        for t in 0..TEAM {
            let spec = body(t, e);
            b.thread(t).block(spec);
        }
        for t in 0..TEAM {
            b.thread(t).barrier(bar);
        }
    }
    b.join_workers();
    b.build()
}

/// `backprop`: neural-network training. Streaming, memory-bound, the
/// suite's MLP champion (~5 in the paper): wide independent loads sweeping
/// a layer per epoch, plus a shared read-mostly weight matrix.
pub fn backprop(p: &Params) -> Program {
    const ID: u64 = 1;
    let mut b = ProgramBuilder::new("backprop", TEAM as usize);
    let input = b.alloc_region(1 << 21); // 128 MB of layer data
    let weights = b.alloc_region(24_000); // shared weights (L3-resident)
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.28)
            .stores(0.07)
            .branches(0.08)
            .fp(0.20, 0.12)
            .deps(0.22, 7.0)
            .branch_pattern(BranchPattern::loop_every(32))
            .code_footprint(24),
    );
    team_loop(b, p.rounds(12), |t, e| {
        let mut s = tpl.with_ops(p.ops(38_000)).with_seed(p.seed_for(ID, t, e));
        let slice = input.chunk(t as u64, TEAM as u64);
        s.addr = vec![
            (AddressPattern::stream_from(slice, e as u64 * 12_000), 0.75),
            (AddressPattern::hot(weights, 2_000, 0.6), 0.25),
        ];
        s
    })
}

/// `bfs`: level-synchronized breadth-first search. Irregular pointer-chasing
/// loads, data-dependent branches, frontier size that swells and shrinks
/// across levels, per-thread imbalance.
pub fn bfs(p: &Params) -> Program {
    const ID: u64 = 2;
    let levels = p.rounds(16);
    let mut b = ProgramBuilder::new("bfs", TEAM as usize);
    let graph = b.alloc_region(700_000);
    let frontier = b.alloc_region(120_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.05)
            .branches(0.15)
            .deps(0.5, 2.5)
            .load_chain(0.30)
            .branch_pattern(BranchPattern::bernoulli(0.65))
            .sites(3)
            .code_footprint(16),
    );
    team_loop(b, levels, |t, e| {
        // Frontier swells toward the middle levels.
        let mid = levels as f64 / 2.0;
        let wave = 1.0 - ((e as f64 - mid).abs() / mid).min(0.8);
        let base = p.ops(30_000) as f64 * (0.2 + wave);
        let ops = (base * imbalance(p, ID, t, e, 0.25)) as u32;
        let mut s = tpl.with_ops(ops.max(64)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![
            (AddressPattern::random(graph), 0.7),
            (AddressPattern::random(frontier), 0.3),
        ];
        s
    })
}

/// `cfd`: unstructured-grid finite-volume solver. FP-heavy with an
/// L3-resident working set re-swept every iteration.
pub fn cfd(p: &Params) -> Program {
    const ID: u64 = 3;
    let mut b = ProgramBuilder::new("cfd", TEAM as usize);
    let mesh = b.alloc_region(90_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.22)
            .stores(0.06)
            .branches(0.06)
            .fp(0.30, 0.18)
            .fp_div(0.01)
            .deps(0.35, 5.0)
            .branch_pattern(BranchPattern::loop_every(24))
            .code_footprint(48),
    );
    team_loop(b, p.rounds(20), |t, e| {
        let mut s = tpl.with_ops(p.ops(42_000)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(
            AddressPattern::stream_dense(mesh.chunk(t as u64, TEAM as u64), 2),
            1.0,
        )];
        s
    })
}

/// `heartwall`: image tracking. Compute-bound, L2-resident per-thread
/// windows, long well-balanced epochs.
pub fn heartwall(p: &Params) -> Program {
    const ID: u64 = 4;
    let mut b = ProgramBuilder::new("heartwall", TEAM as usize);
    let frames = b.alloc_region(12_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.18)
            .stores(0.04)
            .branches(0.08)
            .fp(0.28, 0.14)
            .deps(0.30, 4.0)
            .branch_pattern(BranchPattern::loop_every(50))
            .code_footprint(96),
    );
    team_loop(b, p.rounds(10), |t, e| {
        let mut s = tpl.with_ops(p.ops(60_000)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(
            AddressPattern::random(frames.chunk(t as u64, TEAM as u64)),
            1.0,
        )];
        s
    })
}

/// `hotspot`: thermal stencil over a grid. Dense spatial locality on the
/// thread's own rows plus read-only sharing of neighbour rows; the grid is
/// re-swept every time step (L3 reuse).
pub fn hotspot(p: &Params) -> Program {
    const ID: u64 = 5;
    let mut b = ProgramBuilder::new("hotspot", TEAM as usize);
    let grid = b.alloc_region(110_000);
    let next = b.alloc_region(110_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.10)
            .branches(0.05)
            .fp(0.22, 0.10)
            .deps(0.28, 5.0)
            .branch_pattern(BranchPattern::loop_every(64))
            .code_footprint(20),
    );
    team_loop(b, p.rounds(30), |t, e| {
        let mut s = tpl.with_ops(p.ops(22_000)).with_seed(p.seed_for(ID, t, e));
        let own = grid.chunk(t as u64, TEAM as u64);
        let neighbour = grid.chunk(((t + 1) % TEAM) as u64, TEAM as u64);
        s.addr = vec![
            (AddressPattern::stream_dense(own, 2), 0.72),
            (AddressPattern::stream(neighbour.window(0, 4_000)), 0.28),
        ];
        s.store_addr = vec![(
            AddressPattern::stream(next.chunk(t as u64, TEAM as u64)),
            1.0,
        )];
        s
    })
}

/// `kmeans`: clustering. Streams the point set while hammering a tiny,
/// hot, shared centroid table; near-perfect balance.
pub fn kmeans(p: &Params) -> Program {
    const ID: u64 = 6;
    let mut b = ProgramBuilder::new("kmeans", TEAM as usize);
    let points = b.alloc_region(600_000);
    let centroids = b.alloc_region(64);
    let accum = b.alloc_region(512);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.04)
            .branches(0.10)
            .fp(0.15, 0.10)
            .int_muldiv(0.02, 0.0)
            .deps(0.20, 8.0)
            .branch_pattern(BranchPattern::loop_every(16))
            .code_footprint(18),
    );
    team_loop(b, p.rounds(18), |t, e| {
        let mut s = tpl.with_ops(p.ops(34_000)).with_seed(p.seed_for(ID, t, e));
        let slice = points.chunk(t as u64, TEAM as u64);
        s.addr = vec![
            (AddressPattern::stream_from(slice, e as u64 * 9_000), 0.72),
            (AddressPattern::random(centroids), 0.28),
        ];
        s.store_addr = vec![(
            AddressPattern::random(accum.chunk(t as u64, TEAM as u64)),
            1.0,
        )];
        s
    })
}

/// `lavamd`: N-body within boxes. FP-dense, cache-resident per-thread
/// boxes, high ILP, few barriers.
pub fn lavamd(p: &Params) -> Program {
    const ID: u64 = 7;
    let mut b = ProgramBuilder::new("lavamd", TEAM as usize);
    let boxes = b.alloc_region(6_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.25)
            .stores(0.05)
            .branches(0.04)
            .fp(0.35, 0.20)
            .deps(0.25, 6.0)
            .branch_pattern(BranchPattern::loop_every(100))
            .code_footprint(30),
    );
    team_loop(b, p.rounds(8), |t, e| {
        let mut s = tpl.with_ops(p.ops(50_000)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(
            AddressPattern::random(boxes.chunk(t as u64, TEAM as u64)),
            1.0,
        )];
        s
    })
}

/// `leukocyte`: cell tracking. Compute-heavy with a large instruction
/// footprint (the suite's I-cache stressor) and long epochs.
pub fn leukocyte(p: &Params) -> Program {
    const ID: u64 = 8;
    let mut b = ProgramBuilder::new("leukocyte", TEAM as usize);
    let image = b.alloc_region(16_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.20)
            .stores(0.04)
            .branches(0.09)
            .fp(0.30, 0.15)
            .deps(0.32, 4.5)
            .branch_pattern(BranchPattern::loop_every(40))
            .sites(4)
            // 1500 code lines >> 512-line L1I: real I-cache pressure.
            .code_footprint(1_500),
    );
    team_loop(b, p.rounds(6), |t, e| {
        let mut s = tpl.with_ops(p.ops(80_000)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(
            AddressPattern::hot(image.chunk(t as u64, TEAM as u64), 400, 0.7),
            1.0,
        )];
        s
    })
}

/// `lud`: LU decomposition. Triangular work: every barrier epoch shrinks,
/// and the epoch's "diagonal owner" thread carries extra work — growing
/// relative imbalance toward the end.
pub fn lud(p: &Params) -> Program {
    const ID: u64 = 9;
    let epochs = p.rounds(24);
    let mut b = ProgramBuilder::new("lud", TEAM as usize);
    let matrix = b.alloc_region(65_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.25)
            .stores(0.08)
            .branches(0.07)
            .fp(0.30, 0.15)
            .deps(0.40, 4.0)
            .branch_pattern(BranchPattern::loop_every(20))
            .code_footprint(26),
    );
    team_loop(b, epochs, |t, e| {
        let remaining = (epochs - e) as f64 / epochs as f64;
        let owner_boost = if t == e % TEAM { 1.6 } else { 1.0 };
        let ops = (p.ops(36_000) as f64 * remaining * owner_boost) as u32;
        let mut s = tpl.with_ops(ops.max(64)).with_seed(p.seed_for(ID, t, e));
        // The active trailing sub-matrix shrinks with every epoch.
        let active = ((matrix.lines as f64 * remaining) as u64).max(1_024);
        s.addr = vec![(
            AddressPattern::stream(matrix.window(e as u64 * 512, active)),
            1.0,
        )];
        s
    })
}

/// `myocyte`: cardiac ODE solver. Tiny and nearly serial: the main thread
/// integrates the stiff system while workers only help with short
/// evaluation bursts. Heavy FP divide usage.
pub fn myocyte(p: &Params) -> Program {
    const ID: u64 = 10;
    let mut b = ProgramBuilder::new("myocyte", TEAM as usize);
    let state = b.alloc_region(800);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.20)
            .stores(0.06)
            .branches(0.08)
            .fp(0.28, 0.18)
            .fp_div(0.03)
            .deps(0.50, 2.5)
            .branch_pattern(BranchPattern::loop_every(12))
            .code_footprint(64),
    );
    team_loop(b, p.rounds(4), |t, e| {
        let ops = if t == 0 { p.ops(44_000) } else { p.ops(5_000) };
        let mut s = tpl.with_ops(ops).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(AddressPattern::random(state), 1.0)];
        s
    })
}

/// `nn`: nearest-neighbour search. Short, streaming scan of the record
/// file with a running-minimum branch; essentially one parallel pass.
pub fn nn(p: &Params) -> Program {
    const ID: u64 = 11;
    let mut b = ProgramBuilder::new("nn", TEAM as usize);
    let records = b.alloc_region(900_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.34)
            .stores(0.02)
            .branches(0.10)
            .fp(0.16, 0.10)
            .deps(0.18, 8.0)
            // The "new minimum" branch is rarely taken.
            .branch_pattern(BranchPattern::bernoulli(0.04))
            .code_footprint(12),
    );
    team_loop(b, 2, |t, e| {
        let mut s = tpl.with_ops(p.ops(55_000)).with_seed(p.seed_for(ID, t, e));
        let slice = records.chunk(t as u64, TEAM as u64);
        s.addr = vec![(AddressPattern::stream_from(slice, e as u64 * 60_000), 1.0)];
        s
    })
}

/// `nw`: Needleman-Wunsch wavefront alignment. Diagonal work ramps up then
/// down across barriers; threads at the wavefront edges get less work —
/// the benchmark the paper calls out in Table V.
pub fn nw(p: &Params) -> Program {
    const ID: u64 = 12;
    let epochs = p.rounds(20);
    let mut b = ProgramBuilder::new("nw", TEAM as usize);
    let score = b.alloc_region(60_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.28)
            .stores(0.10)
            .branches(0.09)
            .int_muldiv(0.01, 0.0)
            .deps(0.45, 3.0)
            .branch_pattern(BranchPattern::periodic(0b0111_0111, 8))
            .code_footprint(14),
    );
    team_loop(b, epochs, |t, e| {
        let mid = epochs as f64 / 2.0;
        let diag = 1.0 - ((e as f64 - mid).abs() / mid).min(0.9);
        let skew = imbalance(p, ID, t, e, 0.45);
        let ops = (p.ops(34_000) as f64 * (0.1 + diag) * skew) as u32;
        let mut s = tpl.with_ops(ops.max(64)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(
            AddressPattern::stream(score.window(e as u64 * 2_800, 12_000)),
            1.0,
        )];
        s
    })
}

/// `particlefilter`: sequential Monte-Carlo tracking. Random particle
/// accesses, unpredictable resampling branches, a little integer divide.
pub fn particlefilter(p: &Params) -> Program {
    const ID: u64 = 13;
    let mut b = ProgramBuilder::new("particlefilter", TEAM as usize);
    let particles = b.alloc_region(160_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.25)
            .stores(0.06)
            .branches(0.12)
            .fp(0.20, 0.10)
            .int_muldiv(0.01, 0.005)
            .deps(0.35, 4.0)
            .branch_pattern(BranchPattern::bernoulli(0.5))
            .sites(2)
            .code_footprint(40),
    );
    team_loop(b, p.rounds(14), |t, e| {
        let mut s = tpl.with_ops(p.ops(30_000)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(AddressPattern::random(particles), 1.0)];
        s
    })
}

/// `pathfinder`: dynamic programming over grid rows. Many cheap barriers
/// with small, perfectly balanced epochs — pure synchronization stress.
pub fn pathfinder(p: &Params) -> Program {
    const ID: u64 = 14;
    let mut b = ProgramBuilder::new("pathfinder", TEAM as usize);
    let rows = b.alloc_region(32_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.08)
            .branches(0.08)
            .deps(0.30, 5.0)
            .branch_pattern(BranchPattern::loop_every(30))
            .code_footprint(10),
    );
    team_loop(b, p.rounds(40), |t, e| {
        let mut s = tpl.with_ops(p.ops(6_000)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![(
            AddressPattern::stream(
                rows.window(e as u64 * 800, 8_000)
                    .chunk(t as u64, TEAM as u64),
            ),
            1.0,
        )];
        s
    })
}

/// `srad`: speckle-reducing anisotropic diffusion. FP stencil whose grid
/// slightly exceeds the shared LLC — measurable DRAM traffic every sweep.
pub fn srad(p: &Params) -> Program {
    const ID: u64 = 15;
    let mut b = ProgramBuilder::new("srad", TEAM as usize);
    let grid = b.alloc_region(150_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.28)
            .stores(0.08)
            .branches(0.05)
            .fp(0.32, 0.16)
            .fp_div(0.01)
            .deps(0.30, 5.5)
            .branch_pattern(BranchPattern::loop_every(48))
            .code_footprint(22),
    );
    team_loop(b, p.rounds(16), |t, e| {
        let mut s = tpl.with_ops(p.ops(36_000)).with_seed(p.seed_for(ID, t, e));
        let own = grid.chunk(t as u64, TEAM as u64);
        let neighbour = grid.chunk(((t + 3) % TEAM) as u64, TEAM as u64);
        s.addr = vec![
            (AddressPattern::stream_dense(own, 2), 0.8),
            (AddressPattern::stream(neighbour.window(0, 3_000)), 0.2),
        ];
        s
    })
}

/// `streamcluster` (Rodinia OpenMP version): online clustering dominated by
/// frequent barriers around small epochs, streaming points against a tiny
/// hot candidate-centre table. The Table V outlier.
pub fn streamcluster(p: &Params) -> Program {
    const ID: u64 = 16;
    let mut b = ProgramBuilder::new("streamcluster", TEAM as usize);
    let points = b.alloc_region(280_000);
    let centers = b.alloc_region(128);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.30)
            .stores(0.03)
            .branches(0.10)
            .fp(0.18, 0.10)
            .deps(0.28, 5.0)
            .branch_pattern(BranchPattern::bernoulli(0.8))
            .code_footprint(16),
    );
    team_loop(b, p.rounds(60), |t, e| {
        let skew = imbalance(p, ID, t, e, 0.12);
        let ops = (p.ops(8_000) as f64 * skew) as u32;
        let mut s = tpl.with_ops(ops.max(64)).with_seed(p.seed_for(ID, t, e));
        let slice = points.chunk(t as u64, TEAM as u64);
        s.addr = vec![
            (AddressPattern::stream_from(slice, e as u64 * 2_000), 0.7),
            (AddressPattern::random(centers), 0.3),
        ];
        s
    })
}

/// `hotspot3d`: the 3D extension of the thermal stencil (Rodinia's
/// `hotspot3D`, beyond the paper's Table V set). Each thread owns a slab of
/// z-planes; the 7-point stencil re-reads both neighbouring slabs, so the
/// sharing fraction is roughly twice `hotspot`'s and the grid clearly
/// exceeds the LLC — DRAM-bound sweeps with dense spatial locality.
pub fn hotspot3d(p: &Params) -> Program {
    const ID: u64 = 17;
    let mut b = ProgramBuilder::new("hotspot3d", TEAM as usize);
    let grid = b.alloc_region(260_000);
    let next = b.alloc_region(260_000);
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.33)
            .stores(0.09)
            .branches(0.04)
            .fp(0.22, 0.11)
            .deps(0.26, 5.5)
            .branch_pattern(BranchPattern::loop_every(48))
            .code_footprint(26),
    );
    team_loop(b, p.rounds(14), |t, e| {
        let mut s = tpl.with_ops(p.ops(40_000)).with_seed(p.seed_for(ID, t, e));
        let own = grid.chunk(t as u64, TEAM as u64);
        let below = grid.chunk(((t + TEAM - 1) % TEAM) as u64, TEAM as u64);
        let above = grid.chunk(((t + 1) % TEAM) as u64, TEAM as u64);
        s.addr = vec![
            (AddressPattern::stream_dense(own, 3), 0.58),
            (AddressPattern::stream(below.window(0, 6_000)), 0.21),
            (AddressPattern::stream(above.window(0, 6_000)), 0.21),
        ];
        s.store_addr = vec![(
            AddressPattern::stream(next.chunk(t as u64, TEAM as u64)),
            1.0,
        )];
        s
    })
}

/// `btree`: batched B+-tree range queries (Rodinia's `b+tree`, beyond the
/// paper's Table V set). Pointer-chasing descents through a hot upper-level
/// index into a large leaf array, with data-dependent comparison branches —
/// the suite's irregular-integer counterpoint to the FP stencils.
pub fn btree(p: &Params) -> Program {
    const ID: u64 = 18;
    let mut b = ProgramBuilder::new("btree", TEAM as usize);
    let inner = b.alloc_region(4_000); // upper tree levels: hot, shared
    let leaves = b.alloc_region(480_000); // leaf nodes: cold, huge
    let tpl = b.template(
        BlockSpec::new(0, 0)
            .loads(0.34)
            .stores(0.03)
            .branches(0.14)
            .int_muldiv(0.01, 0.0)
            .deps(0.46, 2.5)
            .load_chain(0.35)
            .branch_pattern(BranchPattern::bernoulli(0.6))
            .sites(4)
            .code_footprint(22),
    );
    team_loop(b, p.rounds(10), |t, e| {
        let skew = imbalance(p, ID, t, e, 0.18);
        let ops = (p.ops(32_000) as f64 * skew) as u32;
        let mut s = tpl.with_ops(ops.max(64)).with_seed(p.seed_for(ID, t, e));
        s.addr = vec![
            (AddressPattern::hot(inner, 600, 0.75), 0.55),
            (AddressPattern::random(leaves), 0.45),
        ];
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn quick() -> Params {
        Params {
            scale: 0.05,
            seed: 7,
        }
    }

    #[test]
    fn all_use_four_threads() {
        for f in [
            backprop,
            bfs,
            cfd,
            heartwall,
            hotspot,
            kmeans,
            lavamd,
            leukocyte,
            lud,
            myocyte,
            nn,
            nw,
            particlefilter,
            pathfinder,
            srad,
            streamcluster,
            hotspot3d,
            btree,
        ] {
            let prog = f(&quick());
            assert_eq!(prog.num_threads(), 4, "{}", prog.name);
            assert!(prog.validate().is_ok(), "{}", prog.name);
        }
    }

    #[test]
    fn myocyte_is_main_heavy() {
        let prog = myocyte(&quick());
        let main_ops = prog.threads[0].total_ops();
        let worker_ops = prog.threads[1].total_ops();
        assert!(main_ops > 4 * worker_ops, "{main_ops} vs {worker_ops}");
    }

    #[test]
    fn lud_work_shrinks() {
        let prog = lud(&Params {
            scale: 0.2,
            seed: 1,
        });
        // Compare thread 1's first and last compute blocks.
        use rppm_trace::Segment;
        let blocks: Vec<u32> = prog.threads[1]
            .segments
            .iter()
            .filter_map(|s| match s {
                Segment::Block(b) => Some(b.ops),
                _ => None,
            })
            .collect();
        assert!(blocks.first().unwrap() > blocks.last().unwrap());
    }

    #[test]
    fn pathfinder_has_many_barriers() {
        let prog = pathfinder(&Params {
            scale: 1.0,
            seed: 1,
        });
        let barriers = prog.threads[1].sync_count();
        assert!(barriers >= 40, "barriers {barriers}");
    }

    #[test]
    fn leukocyte_has_large_code_footprint() {
        use rppm_trace::Segment;
        let prog = leukocyte(&quick());
        let max_code = prog
            .threads
            .iter()
            .flat_map(|t| &t.segments)
            .filter_map(|s| match s {
                Segment::Block(b) => Some(b.code_lines),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(max_code >= 1_000);
    }

    #[test]
    fn hotspot3d_reads_both_neighbour_slabs() {
        use rppm_trace::Segment;
        let prog = hotspot3d(&quick());
        for seg in &prog.threads[1].segments {
            if let Segment::Block(b) = seg {
                assert_eq!(b.addr.len(), 3, "own slab + two neighbours");
            }
        }
    }

    #[test]
    fn btree_chases_pointers() {
        use rppm_trace::Segment;
        let prog = btree(&quick());
        let block = prog
            .threads
            .iter()
            .flat_map(|t| &t.segments)
            .find_map(|s| match s {
                Segment::Block(b) => Some(b),
                _ => None,
            })
            .unwrap();
        assert!(block.p_load_chain > 0.2, "chain {}", block.p_load_chain);
        assert!(block.f_branch > 0.1);
    }

    #[test]
    fn streamcluster_epochs_are_small() {
        use rppm_trace::Segment;
        let prog = streamcluster(&Params {
            scale: 1.0,
            seed: 1,
        });
        let mean_block: f64 = {
            let blocks: Vec<u32> = prog.threads[1]
                .segments
                .iter()
                .filter_map(|s| match s {
                    Segment::Block(b) => Some(b.ops),
                    _ => None,
                })
                .collect();
            blocks.iter().map(|&o| o as f64).sum::<f64>() / blocks.len() as f64
        };
        assert!(mean_block < 12_000.0, "mean epoch {mean_block}");
    }
}

//! Differential suite pinning the simulator's out-of-core replay path to
//! in-memory expansion: [`rppm_sim::simulate_replay`] on a recorded op
//! stream must be bit-identical to [`rppm_sim::simulate`] on the program
//! it was recorded from — timings, CPI stacks, intervals, sync counts and
//! the self-profiling probe output — across all five Table IV design
//! points, through both the optimized and the naive reference core.

use proptest::prelude::*;
use rppm_sim::{
    simulate, simulate_profiled, simulate_profiled_replay, simulate_reference,
    simulate_reference_replay, simulate_replay, SimResult,
};
use rppm_trace::{
    AddressPattern, BlockSpec, DesignPoint, OpReplay, Program, ProgramBuilder, StreamOptions,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rppm-simdiff-test-{}-{tag}-{seq}.rpt",
        std::process::id()
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Sync-rich two-worker program (fits the smallest design point's
/// one-thread-per-core budget with the tolerated main thread).
fn rich_program() -> Program {
    let mut b = ProgramBuilder::new("simdiff", 3);
    let bar = b.alloc_barrier();
    let mx = b.alloc_mutex();
    let q = b.alloc_queue();
    let reg = b.alloc_region(1 << 14);
    b.spawn_workers();
    for t in 1..3u32 {
        b.thread(t)
            .block(
                BlockSpec::new(8_000 + 700 * t, 11 + t as u64)
                    .loads(0.3)
                    .stores(0.08)
                    .branches(0.1)
                    .deps(0.3, 5.0)
                    .addr(AddressPattern::stream(reg), 1.0),
            )
            .barrier(bar)
            .lock(mx)
            .unlock(mx)
            .block(BlockSpec::new(2_000, 90 + t as u64).fp(0.2, 0.1));
    }
    b.thread(1u32).produce(q, 2);
    b.thread(2u32).consume(q).consume(q);
    b.join_workers();
    b.build()
}

/// Field-by-field bit equality, including per-thread CPI stacks and the
/// active-interval lists the bottlegraphs are built from.
fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.program, b.program, "{what}: program name");
    assert_eq!(a.config, b.config, "{what}: config name");
    assert_eq!(
        a.total_cycles.to_bits(),
        b.total_cycles.to_bits(),
        "{what}: total cycles"
    );
    assert_eq!(a.threads.len(), b.threads.len(), "{what}: thread count");
    for (i, (x, y)) in a.threads.iter().zip(b.threads.iter()).enumerate() {
        assert_eq!(x.start.to_bits(), y.start.to_bits(), "{what}: t{i} start");
        assert_eq!(
            x.finish.to_bits(),
            y.finish.to_bits(),
            "{what}: t{i} finish"
        );
        assert_eq!(x.ops, y.ops, "{what}: t{i} ops");
        assert_eq!(x.mispredicts, y.mispredicts, "{what}: t{i} mispredicts");
        assert_eq!(x.dram_loads, y.dram_loads, "{what}: t{i} dram loads");
        assert_eq!(
            x.cpi.total().to_bits(),
            y.cpi.total().to_bits(),
            "{what}: t{i} cpi"
        );
    }
    assert_eq!(a.intervals, b.intervals, "{what}: intervals");
    assert_eq!(a.sync_events, b.sync_events, "{what}: sync events");
}

#[test]
fn replay_matches_expansion_on_every_design_point() {
    let program = rich_program();
    let path = tmp_path("alldp");
    let _guard = TempFile(path.clone());
    rppm_trace::write_program_ops(&program, &path).expect("record");
    let replay = OpReplay::open(&path).expect("open");
    for dp in DesignPoint::ALL {
        let cfg = dp.config();
        let a = simulate(&program, &cfg);
        let b = simulate_replay(&replay, &cfg);
        assert_bit_identical(&a, &b, &format!("{dp:?}"));
    }
}

#[test]
fn probe_output_matches_from_replay() {
    let program = rich_program();
    let path = tmp_path("probe");
    let _guard = TempFile(path.clone());
    rppm_trace::write_program_ops(&program, &path).expect("record");
    let replay = OpReplay::open(&path).expect("open");
    let cfg = DesignPoint::Base.config();
    let (res_a, prof_a) = simulate_profiled(&program, &cfg);
    let (res_b, prof_b) = simulate_profiled_replay(&replay, &cfg);
    assert_bit_identical(&res_a, &res_b, "profiled");
    assert_eq!(prof_a, prof_b, "self-profile probe output diverges");
}

#[test]
fn reference_core_matches_from_replay_under_tiny_chunks() {
    let program = rich_program();
    let path = tmp_path("ref");
    let _guard = TempFile(path.clone());
    rppm_trace::write_program_ops(&program, &path).expect("record");
    // Out-of-core worst case: 5-op chunks, 64-byte pool, no mmap.
    let replay = OpReplay::open_with(
        &path,
        StreamOptions {
            chunk_ops: 5,
            pool_bytes: 64,
            mmap: false,
            ..StreamOptions::default()
        },
    )
    .expect("open");
    let cfg = DesignPoint::Base.config();
    let a = simulate_reference(&program, &cfg);
    let b = simulate_reference_replay(&replay, &cfg);
    assert_bit_identical(&a, &b, "reference core");
    // And the optimized core agrees with both (the existing equivalence
    // property, now holding across the replay boundary too).
    let c = simulate_replay(&replay, &cfg);
    assert_bit_identical(&a, &c, "optimized core from replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Generated-program sweep: arbitrary block shapes simulate
    /// identically from replay on a rotating design point.
    #[test]
    fn generated_programs_simulate_identically(
        seed in 1u64..1_000_000,
        ops in 500u32..4_000,
        loads in 0u32..40,
        branches in 0u32..20,
        chunk_ops in 1usize..2_000,
        dp_index in 0usize..5,
    ) {
        let mut b = ProgramBuilder::new("prop", 2);
        let bar = b.alloc_barrier();
        let reg = b.alloc_region(1 << 12);
        b.spawn_workers();
        b.thread(1u32)
            .block(
                BlockSpec::new(ops, seed)
                    .loads(loads as f64 / 100.0)
                    .branches(branches as f64 / 100.0)
                    .deps(0.25, 6.0)
                    .addr(AddressPattern::stream(reg), 1.0),
            )
            .barrier(bar)
            .block(BlockSpec::new(ops / 3 + 1, seed ^ 0xF00D));
        b.thread(0u32).barrier(bar);
        b.join_workers();
        let program = b.build();

        let path = tmp_path("prop");
        let _guard = TempFile(path.clone());
        rppm_trace::write_program_ops(&program, &path).expect("record");
        let replay = OpReplay::open_with(&path, StreamOptions {
            chunk_ops,
            mmap: seed % 2 == 0,
            ..StreamOptions::default()
        }).expect("open");

        let cfg = DesignPoint::ALL[dp_index].config();
        let a = simulate(&program, &cfg);
        let b = simulate_replay(&replay, &cfg);
        prop_assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
        prop_assert_eq!(&a.intervals, &b.intervals);
        prop_assert_eq!(a.sync_events, b.sync_events);
    }
}

//! Manual timing probes for the PGO work. Ignored by default: run with
//! `cargo test --release -p rppm-sim --test perf_probe -- --ignored --nocapture`.

use rppm_sim::{simulate, simulate_profiled, simulate_reference};
use rppm_trace::{AddressPattern, BlockSpec, DesignPoint, Program, ProgramBuilder, Region};
use std::time::Instant;

fn time_min<F: FnMut() -> f64>(n: usize, mut f: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut acc = 0.0;
    for _ in 0..n {
        let t = Instant::now();
        acc += f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best * 1e3, acc)
}

fn mixed(scale: f64) -> Program {
    // hotspot-like mix: loads .30 stores .10 branches .05
    let ops = (200_000.0 * scale) as u32;
    let mut b = ProgramBuilder::new("mixed", 2);
    let reg = b.alloc_region(1 << 18);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..2u32 {
        b.thread(t)
            .block(
                BlockSpec::new(ops, t as u64 + 1)
                    .loads(0.30)
                    .stores(0.10)
                    .branches(0.05)
                    .fp(0.22, 0.10)
                    .deps(0.3, 4.0)
                    .addr(AddressPattern::stream(Region::new(0, 1 << 18)), 1.0),
            )
            .barrier(bar);
        let _ = reg;
    }
    b.join_workers();
    b.build()
}

fn compute_only(scale: f64) -> Program {
    let ops = (200_000.0 * scale) as u32;
    let mut b = ProgramBuilder::new("compute", 2);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..2u32 {
        b.thread(t)
            .block(
                BlockSpec::new(ops, t as u64 + 1)
                    .fp(0.3, 0.2)
                    .deps(0.3, 4.0),
            )
            .barrier(bar);
    }
    b.join_workers();
    b.build()
}

#[test]
#[ignore]
fn probe() {
    let cfg = DesignPoint::Base.config();
    for (name, p) in [("mixed", mixed(2.0)), ("compute", compute_only(2.0))] {
        let total_ops: u64 = simulate(&p, &cfg).total_ops();
        let (t_opt, _) = time_min(7, || simulate(&p, &cfg).total_cycles);
        let (t_ref, _) = time_min(7, || simulate_reference(&p, &cfg).total_cycles);
        let (t_prof, _) = time_min(7, || simulate_profiled(&p, &cfg).0.total_cycles);
        println!(
            "{name}: ops={total_ops} opt={t_opt:.3}ms ({:.1}ns/op)  ref={t_ref:.3}ms ({:.1}ns/op)  prof={t_prof:.3}ms  ratio opt/ref={:.3}",
            t_opt * 1e6 / total_ops as f64,
            t_ref * 1e6 / total_ops as f64,
            t_opt / t_ref
        );
        let (_, prof) = simulate_profiled(&p, &cfg);
        println!(
            "  fused_fraction={:.3} dispatch_reduction={:.3}",
            prof.fused_fraction(),
            prof.dispatch_reduction()
        );
    }
}

//! Naive reference dispatch: the pre-PGO core model, kept verbatim.
//!
//! The optimized [`CoreModel`](crate::CoreModel) reorders its dispatch
//! hot-first, fuses compute pairs into superinstructions and runs the ROB on
//! a ring buffer. None of that may change a single bit of timing — and the
//! way to *prove* that continuously is to keep the original, obviously
//! correct implementation alive: a `VecDeque` ROB and a straight nine-way
//! match dispatched one op at a time, exactly as the simulator shipped
//! before the self-profiling pass.
//!
//! [`simulate_reference`] drives the same engine, synchronization semantics
//! and memory system through this naive core; the differential proptest
//! suite (`tests/sim_equivalence.rs`) and a `bench_guard` ratio pin the
//! optimized path bit-identical and measurably faster. The committed
//! "before" profile artifact under `results/` is produced by
//! [`simulate_reference_profiled`] (no fusion: one dispatch per op).

use crate::core::{attribute, Cause, CoreCounters, RING};
use crate::engine::{run_simulation, CoreTiming};
use crate::mem::{MemorySystem, ServiceLevel};
use crate::simprof::{NoProbe, ProfileCollector, SimProfile};
use crate::SimResult;
use rppm_trace::{CpiStack, MachineConfig, MicroOp, OpClass, OpReplay, Program};
use std::collections::VecDeque;

/// The original out-of-order core timing model: per-op nine-way match
/// dispatch over a `VecDeque` ROB. Field-for-field the pre-optimization
/// [`CoreModel`](crate::CoreModel).
#[derive(Debug)]
struct ReferenceCore {
    width: u32,
    rob_size: usize,
    frontend_depth: f64,
    mshrs: usize,
    ports: [u8; rppm_trace::op::NUM_PORT_POOLS],

    cycle: f64,
    dispatched: u32,
    fe_stall_until: f64,
    fe_cause: Cause,
    completions: Vec<f64>,
    op_index: u64,
    rob: VecDeque<(f64, Cause)>,
    last_retire: f64,
    fu_free: [[f64; 8]; rppm_trace::op::NUM_PORT_POOLS],
    mshr: Vec<f64>,
    miss_index: u64,
    last_code_line: u64,

    predictor: crate::bpred::TournamentPredictor,

    stalls: CpiStack,
    overhead: f64,
    counters: CoreCounters,
}

impl ReferenceCore {
    fn drain_time(&self) -> f64 {
        self.cycle.max(self.last_retire)
    }

    /// Processes one micro-op — the original monolithic dispatch.
    fn process(&mut self, op: &MicroOp, mem: &mut MemorySystem, core_id: usize) {
        self.counters.ops += 1;

        // Instruction fetch: charge a front-end stall on an I-cache miss
        // whenever execution enters a new code line.
        if op.code_line != self.last_code_line {
            self.last_code_line = op.code_line;
            let stall = mem.icache_access(core_id, op.code_line);
            if stall > 0.0 {
                let until = self.cycle + stall;
                if until > self.fe_stall_until {
                    self.fe_stall_until = until;
                    self.fe_cause = Cause::ICache;
                }
            }
        }

        // Front-end stall (misprediction redirect or I-cache refill).
        if self.fe_stall_until > self.cycle {
            attribute(
                &mut self.stalls,
                self.fe_cause,
                self.fe_stall_until - self.cycle,
            );
            self.cycle = self.fe_stall_until;
            self.dispatched = 0;
        }

        // ROB availability: dispatch stalls until the head retires.
        if self.rob.len() >= self.rob_size {
            let (retire, cause) = self.rob.pop_front().expect("rob nonempty");
            if retire > self.cycle {
                attribute(&mut self.stalls, cause, retire - self.cycle);
                self.cycle = retire;
                self.dispatched = 0;
            }
        }

        // Dispatch-width throttle.
        if self.dispatched >= self.width {
            self.cycle += 1.0;
            self.dispatched = 0;
        }
        let dispatch_time = self.cycle;
        self.dispatched += 1;

        // Register readiness.
        let mut ready = dispatch_time;
        if op.src1 != 0 && (op.src1 as u64) <= self.op_index {
            let idx = ((self.op_index - op.src1 as u64) as usize) & (RING - 1);
            ready = ready.max(self.completions[idx]);
        }
        if op.src2 != 0 && (op.src2 as u64) <= self.op_index {
            let idx = ((self.op_index - op.src2 as u64) as usize) & (RING - 1);
            ready = ready.max(self.completions[idx]);
        }

        // Functional-unit port.
        let class = op.class;
        let pool = class.port_pool();
        let nports = self.ports[pool] as usize;
        let fu = &mut self.fu_free[pool];
        let mut port = 0;
        for p in 1..nports {
            if fu[p] < fu[port] {
                port = p;
            }
        }
        let issue = ready.max(fu[port]);
        let mut start = issue;

        let (complete, cause) = match class {
            OpClass::Load => {
                self.counters.loads += 1;
                if self.miss_index >= self.mshrs as u64 {
                    let gate = self.mshr[(self.miss_index as usize) % self.mshrs];
                    start = start.max(gate);
                }
                let (lat, level) = mem.access(core_id, op.line, false);
                let complete = start + lat;
                let cause = match level {
                    ServiceLevel::L1 => Cause::Base,
                    ServiceLevel::L2 => Cause::MemL2,
                    ServiceLevel::L3 | ServiceLevel::Remote => Cause::MemL3,
                    ServiceLevel::Dram => {
                        self.counters.dram_loads += 1;
                        self.mshr[(self.miss_index as usize) % self.mshrs] = complete;
                        self.miss_index += 1;
                        Cause::MemDram
                    }
                };
                (complete, cause)
            }
            OpClass::Store => {
                self.counters.stores += 1;
                let _ = mem.access(core_id, op.line, true);
                (start + 1.0, Cause::Base)
            }
            OpClass::Branch => {
                self.counters.branches += 1;
                let miss = self.predictor.predict_and_update(op.site, op.taken);
                let complete = start + class.latency() as f64;
                if miss {
                    self.counters.mispredicts += 1;
                    let until = complete + self.frontend_depth;
                    if until > self.fe_stall_until {
                        self.fe_stall_until = until;
                        self.fe_cause = Cause::Branch;
                    }
                }
                (complete, Cause::Base)
            }
            _ => (start + class.latency() as f64, Cause::Base),
        };

        fu[port] = if class.pipelined() {
            issue + 1.0
        } else {
            complete
        };

        // In-order retirement.
        let retire = complete.max(self.last_retire);
        self.last_retire = retire;
        self.rob.push_back((retire, cause));

        self.completions[(self.op_index as usize) & (RING - 1)] = complete;
        self.op_index += 1;
    }
}

impl CoreTiming for ReferenceCore {
    fn new(config: &MachineConfig, start_time: f64) -> Self {
        let mut ports = [1u8; rppm_trace::op::NUM_PORT_POOLS];
        for class in OpClass::ALL {
            ports[class.port_pool()] = config.ports_for(class).clamp(1, 8) as u8;
        }
        ReferenceCore {
            width: config.dispatch_width,
            rob_size: config.rob_size as usize,
            frontend_depth: config.frontend_depth as f64,
            mshrs: config.mshrs as usize,
            ports,
            cycle: start_time,
            dispatched: 0,
            fe_stall_until: 0.0,
            fe_cause: Cause::Branch,
            completions: vec![0.0; RING],
            op_index: 0,
            rob: VecDeque::with_capacity(config.rob_size as usize + 1),
            last_retire: start_time,
            fu_free: [[0.0; 8]; rppm_trace::op::NUM_PORT_POOLS],
            mshr: vec![0.0; config.mshrs as usize],
            miss_index: 0,
            last_code_line: u64::MAX,
            predictor: crate::bpred::TournamentPredictor::new(&config.bpred),
            stalls: CpiStack::default(),
            overhead: 0.0,
            counters: CoreCounters::default(),
        }
    }

    fn time(&self) -> f64 {
        self.cycle
    }

    fn set_start_time(&mut self, t: f64) {
        self.cycle = t;
        self.last_retire = t;
    }

    fn resume_at(&mut self, t: f64) {
        if t > self.cycle {
            self.stalls.sync += t - self.cycle;
            self.cycle = t;
            self.dispatched = 0;
        }
    }

    fn charge_sync_overhead(&mut self, cycles: f64) {
        self.stalls.sync += cycles;
        self.overhead += cycles;
        self.cycle += cycles;
        self.dispatched = 0;
    }

    fn sync_overhead_charged(&self) -> f64 {
        self.overhead
    }

    fn finish(&mut self) -> f64 {
        let t = self.drain_time();
        self.cycle = t;
        t
    }

    fn stalls(&self) -> &CpiStack {
        &self.stalls
    }

    fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    fn dispatch_stats(&self) -> (u64, u64) {
        // Naive dispatch: one action per op, nothing fused.
        (self.counters.ops, 0)
    }

    fn run_ops(
        &mut self,
        ops: &[MicroOp],
        mem: &mut MemorySystem,
        core_id: usize,
        limit: f64,
    ) -> (usize, bool) {
        // The original engine inner loop: one op at a time, quantum check
        // after each.
        let mut used = 0;
        for op in ops {
            self.process(op, mem, core_id);
            used += 1;
            if self.cycle > limit {
                return (used, true);
            }
        }
        (used, false)
    }
}

/// Simulates `program` on `config` through the naive reference dispatch.
/// The result must be bit-identical to [`simulate`](crate::simulate) —
/// only slower; the difference is the speedup the PGO pass bought.
///
/// # Panics
///
/// Same conditions as [`simulate`](crate::simulate).
pub fn simulate_reference(program: &Program, config: &MachineConfig) -> SimResult {
    run_simulation::<ReferenceCore, _, _>(program, config, &mut NoProbe)
}

/// [`simulate_reference`] over a replayed op stream — the out-of-core
/// counterpart, pinned bit-identical to the expansion-backed path by the
/// differential suite.
///
/// # Panics
///
/// Same conditions as [`simulate`](crate::simulate).
pub fn simulate_reference_replay(replay: &OpReplay, config: &MachineConfig) -> SimResult {
    run_simulation::<ReferenceCore, _, _>(replay, config, &mut NoProbe)
}

/// [`simulate_reference`] with self-profile collection — the "before"
/// half of the committed before/after profile artifact (one dispatch per
/// op, zero fused pairs).
///
/// # Panics
///
/// Same conditions as [`simulate`](crate::simulate).
pub fn simulate_reference_profiled(
    program: &Program,
    config: &MachineConfig,
) -> (SimResult, SimProfile) {
    let mut collector = ProfileCollector::new();
    let result = run_simulation::<ReferenceCore, _, _>(program, config, &mut collector);
    (result, collector.into_profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use rppm_trace::{AddressPattern, BlockSpec, DesignPoint, ProgramBuilder};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("refcheck", 2);
        let bar = b.alloc_barrier();
        let reg = b.alloc_region(1 << 16);
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(30_000, t as u64 + 13)
                        .loads(0.3)
                        .stores(0.1)
                        .branches(0.08)
                        .deps(0.3, 4.0)
                        .addr(AddressPattern::stream(reg), 1.0),
                )
                .barrier(bar);
        }
        b.join_workers();
        b.build()
    }

    #[test]
    fn reference_matches_optimized_bit_for_bit() {
        let p = sample_program();
        let cfg = DesignPoint::Base.config();
        let a = simulate(&p, &cfg);
        let b = simulate_reference(&p, &cfg);
        assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
        assert_eq!(a.threads.len(), b.threads.len());
        for (x, y) in a.threads.iter().zip(b.threads.iter()) {
            assert_eq!(x.start.to_bits(), y.start.to_bits());
            assert_eq!(x.finish.to_bits(), y.finish.to_bits());
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.mispredicts, y.mispredicts);
            assert_eq!(x.dram_loads, y.dram_loads);
            assert_eq!(x.cpi.total().to_bits(), y.cpi.total().to_bits());
        }
        assert_eq!(a.sync_events, b.sync_events);
        assert_eq!(a.intervals, b.intervals);
    }

    #[test]
    fn long_dependence_distances_match_reference() {
        // Dependence distances far beyond the ROB size: the optimized core's
        // small completion ring skips these reads outright (they are provable
        // no-ops — see core::RING), while the reference's 64K ring actually
        // performs them. The timing must still agree to the bit, across ROB
        // sizes.
        let mut b = ProgramBuilder::new("longdeps", 2);
        b.spawn_workers();
        b.thread(1u32).block(
            BlockSpec::new(40_000, 99)
                .deps(1.0, 700.0)
                .deps2(0.5)
                .fp(0.2, 0.2),
        );
        b.join_workers();
        let p = b.build();
        for dp in [
            DesignPoint::Smallest,
            DesignPoint::Base,
            DesignPoint::Biggest,
        ] {
            let cfg = dp.config();
            let a = simulate(&p, &cfg);
            let r = simulate_reference(&p, &cfg);
            assert_eq!(a.total_cycles.to_bits(), r.total_cycles.to_bits(), "{dp:?}");
        }
    }

    #[test]
    fn reference_profile_has_no_fusion() {
        let p = sample_program();
        let cfg = DesignPoint::Base.config();
        let (_, before) = simulate_reference_profiled(&p, &cfg);
        let (_, after) = crate::simulate_profiled(&p, &cfg);
        assert_eq!(before.fused_pairs, 0);
        assert_eq!(before.dispatches, before.total_ops());
        // Identical executed-op mix, fewer dispatch actions after fusion.
        assert_eq!(before.op_freq, after.op_freq);
        assert_eq!(before.pairs, after.pairs);
        assert!(after.dispatches < before.dispatches);
    }
}

//! Set-associative LRU caches.

use rppm_trace::CacheGeometry;

/// One set-associative LRU cache (line granularity).
///
/// Addresses are cache-line indices (the trace IR is line-granular). LRU is
/// maintained with a per-access stamp; ways are scanned linearly, which is
/// fast at the associativities in play (4–16).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: u64,
    /// `sets - 1` when `sets` is a power of two (every geometry in the
    /// config space), letting [`SetAssocCache::set_of`] mask instead of
    /// dividing; 0 falls back to the general modulo.
    set_mask: u64,
    assoc: usize,
    /// `tags[set * assoc + way]`: line index or `EMPTY`.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    /// Dirty bits, parallel to `tags`.
    dirty: Vec<bool>,
    clock: u64,
    hits: u64,
    misses: u64,
    /// Most recently touched line and its slot in `tags` — a one-entry
    /// shortcut that skips the set scan on back-to-back accesses to the
    /// same line (streams revisit lines; code lines repeat). Pure fast
    /// path: every state update it performs is exactly what the scan-hit
    /// path would have done.
    mru_line: u64,
    mru_slot: usize,
}

const EMPTY: u64 = u64::MAX;

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geom: &CacheGeometry) -> Self {
        let sets = geom.sets();
        let assoc = geom.assoc as usize;
        SetAssocCache {
            sets,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            assoc,
            tags: vec![EMPTY; (sets as usize) * assoc],
            stamps: vec![0; (sets as usize) * assoc],
            dirty: vec![false; (sets as usize) * assoc],
            clock: 0,
            hits: 0,
            misses: 0,
            mru_line: EMPTY,
            mru_slot: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != 0 {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets) as usize
        }
    }

    /// Probes for `line` without modifying state (except statistics are not
    /// touched either). Returns whether the line is present.
    pub fn probe(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// Accesses `line`; on a miss, fills it (evicting the LRU way).
    /// Returns `(hit, evicted)` where `evicted` is the line displaced by the
    /// fill, if any.
    pub fn access(&mut self, line: u64, is_write: bool) -> (bool, Option<u64>) {
        self.clock += 1;
        // MRU shortcut: identical updates to the scan-hit path below.
        if line == self.mru_line {
            let s = self.mru_slot;
            debug_assert_eq!(self.tags[s], line);
            self.stamps[s] = self.clock;
            if is_write {
                self.dirty[s] = true;
            }
            self.hits += 1;
            return (true, None);
        }
        let base = self.set_of(line) * self.assoc;
        // Hit path.
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                if is_write {
                    self.dirty[base + w] = true;
                }
                self.hits += 1;
                self.mru_line = line;
                self.mru_slot = base + w;
                return (true, None);
            }
        }
        // Miss: fill into invalid or LRU way.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == EMPTY {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        let evicted = match self.tags[base + victim] {
            EMPTY => None,
            t => Some(t),
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = is_write;
        self.mru_line = line;
        self.mru_slot = base + victim;
        (false, evicted)
    }

    /// Removes `line` if present (coherence invalidation); returns whether
    /// it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        if line == self.mru_line {
            self.mru_line = EMPTY;
        }
        let base = self.set_of(line) * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.tags[base + w] = EMPTY;
                self.dirty[base + w] = false;
                return true;
            }
        }
        false
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Observed miss rate (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rppm_trace::CacheGeometry;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways = 8 lines.
        SetAssocCache::new(&CacheGeometry::new(8 * 64, 2, 64, 1))
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(5, false).0);
        assert!(c.access(5, false).0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0, 4, 8, ... (4 sets). Fill ways with 0 and 4.
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 0 most recent
        let (_, evicted) = c.access(8, false); // evicts 4
        assert_eq!(evicted, Some(4));
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(3, false);
        assert!(c.probe(3));
        assert!(c.invalidate(3));
        assert!(!c.probe(3));
        assert!(!c.invalidate(3));
        assert!(!c.access(3, false).0); // misses again
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let geom = CacheGeometry::new(64 * 64, 4, 64, 1); // 64 lines
        let mut c = SetAssocCache::new(&geom);
        for _ in 0..10 {
            for line in 0..64u64 {
                c.access(line, false);
            }
        }
        // Only the 64 cold misses.
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let geom = CacheGeometry::new(64 * 64, 4, 64, 1); // 64 lines
        let mut c = SetAssocCache::new(&geom);
        for _ in 0..10 {
            for line in 0..128u64 {
                c.access(line, false);
            }
        }
        // Sequential sweep over 2x capacity with LRU: every access misses.
        assert!(c.miss_rate() > 0.99, "{}", c.miss_rate());
    }

    #[test]
    fn probe_does_not_affect_lru() {
        let mut c = tiny();
        c.access(0, false);
        c.access(4, false);
        assert!(c.probe(0));
        // LRU order unchanged by probe: 0 is still older.
        let (_, evicted) = c.access(8, false);
        assert_eq!(evicted, Some(0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn contents_bounded_by_capacity(lines in proptest::collection::vec(0u64..256, 1..500)) {
            let geom = CacheGeometry::new(16 * 64, 2, 64, 1); // 16 lines
            let mut c = SetAssocCache::new(&geom);
            for &l in &lines {
                c.access(l, false);
            }
            let resident = (0u64..256).filter(|&l| c.probe(l)).count();
            prop_assert!(resident <= 16);
        }

        #[test]
        fn hit_after_access_unless_evicted(lines in proptest::collection::vec(0u64..64, 1..200)) {
            let geom = CacheGeometry::new(64 * 64, 4, 64, 1);
            let mut c = SetAssocCache::new(&geom);
            for &l in &lines {
                c.access(l, false);
                prop_assert!(c.probe(l), "line just accessed must be resident");
            }
        }
    }
}

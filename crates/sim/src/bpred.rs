//! Tournament branch predictor (the paper's 4 KB configuration).
//!
//! Three tables of 2-bit saturating counters: a bimodal table indexed by the
//! branch site, a gshare table indexed by site ⊕ global history, and a
//! chooser table (indexed by site) that learns which component to trust per
//! branch. This is the classic Alpha 21264-style tournament design Sniper
//! configures by default.

use rppm_trace::BranchPredictorConfig;

/// 2-bit saturating counter helpers.
#[inline]
fn inc(c: &mut u8) {
    if *c < 3 {
        *c += 1;
    }
}

#[inline]
fn dec(c: &mut u8) {
    if *c > 0 {
        *c -= 1;
    }
}

/// Tournament predictor state.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    /// Chooser: ≥2 selects gshare, <2 selects bimodal.
    chooser: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
    mispredictions: u64,
    lookups: u64,
}

impl TournamentPredictor {
    /// Creates a predictor for the given configuration.
    pub fn new(config: &BranchPredictorConfig) -> Self {
        let entries = config.table_entries().max(16) as usize;
        TournamentPredictor {
            bimodal: vec![2; entries], // weakly taken
            gshare: vec![2; entries],
            chooser: vec![1; entries], // weakly bimodal
            history: 0,
            history_mask: (1u64 << config.history_bits.min(63)) - 1,
            index_mask: entries as u64 - 1,
            mispredictions: 0,
            lookups: 0,
        }
    }

    #[inline]
    fn bimodal_idx(&self, site: u32) -> usize {
        // Multiplicative hash spreads consecutive site ids across the table.
        ((site as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 16 & self.index_mask) as usize
    }

    #[inline]
    fn gshare_idx(&self, site: u32) -> usize {
        let h = self.history & self.history_mask;
        (((site as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 16 ^ h) & self.index_mask) as usize
    }

    /// Predicts and updates with the actual outcome; returns `true` when the
    /// branch was mispredicted.
    pub fn predict_and_update(&mut self, site: u32, taken: bool) -> bool {
        let bi = self.bimodal_idx(site);
        let gi = self.gshare_idx(site);
        let bim_pred = self.bimodal[bi] >= 2;
        let gsh_pred = self.gshare[gi] >= 2;
        let use_gshare = self.chooser[bi] >= 2;
        let pred = if use_gshare { gsh_pred } else { bim_pred };

        // Chooser trains toward whichever component was right (only when
        // they disagree).
        if bim_pred != gsh_pred {
            if gsh_pred == taken {
                inc(&mut self.chooser[bi]);
            } else {
                dec(&mut self.chooser[bi]);
            }
        }
        if taken {
            inc(&mut self.bimodal[bi]);
            inc(&mut self.gshare[gi]);
        } else {
            dec(&mut self.bimodal[bi]);
            dec(&mut self.gshare[gi]);
        }
        self.history = (self.history << 1) | taken as u64;

        self.lookups += 1;
        let miss = pred != taken;
        if miss {
            self.mispredictions += 1;
        }
        miss
    }

    /// Mispredictions observed so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Lookups observed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Observed misprediction rate (0 when no lookups yet).
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::Rng;

    fn predictor() -> TournamentPredictor {
        TournamentPredictor::new(&BranchPredictorConfig::tournament_4kb())
    }

    #[test]
    fn learns_always_taken() {
        let mut p = predictor();
        for _ in 0..1000 {
            p.predict_and_update(1, true);
        }
        assert!(p.miss_rate() < 0.01, "{}", p.miss_rate());
    }

    #[test]
    fn learns_loop_pattern_via_history() {
        let mut p = predictor();
        for i in 0..20_000u32 {
            p.predict_and_update(1, i % 4 != 3);
        }
        // After warmup, gshare predicts the loop exit perfectly.
        assert!(p.miss_rate() < 0.03, "{}", p.miss_rate());
    }

    #[test]
    fn cannot_learn_fair_coin() {
        let mut p = predictor();
        let mut rng = Rng::new(5);
        for _ in 0..50_000 {
            p.predict_and_update(1, rng.chance(0.5));
        }
        let mr = p.miss_rate();
        assert!(mr > 0.45 && mr < 0.55, "{mr}");
    }

    #[test]
    fn biased_branch_misses_minority() {
        let mut p = predictor();
        let mut rng = Rng::new(6);
        for _ in 0..50_000 {
            p.predict_and_update(1, rng.chance(0.9));
        }
        let mr = p.miss_rate();
        assert!(mr > 0.07 && mr < 0.20, "{mr}");
    }

    #[test]
    fn distinct_sites_do_not_destructively_alias() {
        let mut p = predictor();
        // Two sites with opposite biases.
        for i in 0..20_000u32 {
            p.predict_and_update(1, true);
            p.predict_and_update(2, false);
            let _ = i;
        }
        assert!(p.miss_rate() < 0.02, "{}", p.miss_rate());
    }

    #[test]
    fn counters_start_unbiased_enough() {
        let mut p = predictor();
        assert_eq!(p.lookups(), 0);
        assert_eq!(p.mispredictions(), 0);
        assert_eq!(p.miss_rate(), 0.0);
        p.predict_and_update(1, true);
        assert_eq!(p.lookups(), 1);
    }
}

//! Multicore memory hierarchy with write-invalidate coherence.
//!
//! Per core: L1I + L1D + unified-latency L2 (private). Shared, inclusive L3.
//! A full-map directory tracks which cores may hold each line in their
//! private hierarchy; writes invalidate remote copies (MESI-equivalent
//! timing without transient states). A read that hits a remote core's dirty
//! copy is served by cache-to-cache intervention at `l3 + coherence` cycles.

use crate::cache::SetAssocCache;
use rppm_trace::MachineConfig;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for the directory's u64 line keys (the Fx/rustc
/// construction). The directory sits on the L2-miss path of every data
/// access; SipHash was a measurable fraction of simulation time, and map
/// *order* is never observed — only point lookups — so a weaker, faster
/// hash changes nothing observable.
#[derive(Debug, Default)]
pub(crate) struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// Where a data access was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Private L1 data cache hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit.
    L3,
    /// Cache-to-cache transfer from another core's private cache.
    Remote,
    /// Main memory.
    Dram,
}

#[derive(Debug, Default, Clone)]
struct DirEntry {
    /// Bitmask of cores that may hold the line privately.
    holders: u8,
    /// Core holding a modified copy, if any.
    dirty_owner: Option<u8>,
}

/// Per-core memory statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemStats {
    /// Data accesses (loads + stores).
    pub accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
    /// Accesses served by a remote private cache.
    pub remote_hits: u64,
    /// Invalidations received (lines stolen by remote writers).
    pub invalidations: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// Instruction fetch line transitions (L1I lookups).
    pub ifetches: u64,
}

/// The shared multicore memory system.
#[derive(Debug)]
pub struct MemorySystem {
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    directory: LineMap<DirEntry>,
    stats: Vec<MemStats>,
    lat_l1: f64,
    lat_l2: f64,
    lat_l3: f64,
    lat_remote: f64,
    lat_mem: f64,
}

impl MemorySystem {
    /// Creates the hierarchy for `config` with one private hierarchy per
    /// core.
    pub fn new(config: &MachineConfig) -> Self {
        Self::with_cores(config, config.cores as usize)
    }

    /// Creates the hierarchy with an explicit number of private hierarchies
    /// (used when a quiescent extra main thread is tolerated, the Parsec
    /// spawn pattern).
    pub fn with_cores(config: &MachineConfig, n: usize) -> Self {
        MemorySystem {
            l1i: (0..n).map(|_| SetAssocCache::new(&config.l1i)).collect(),
            l1d: (0..n).map(|_| SetAssocCache::new(&config.l1d)).collect(),
            l2: (0..n).map(|_| SetAssocCache::new(&config.l2)).collect(),
            l3: SetAssocCache::new(&config.l3),
            directory: LineMap::default(),
            stats: vec![MemStats::default(); n],
            lat_l1: config.l1d.latency as f64,
            lat_l2: config.l2.latency as f64,
            lat_l3: config.l3.latency as f64,
            lat_remote: (config.l3.latency + config.coherence_latency) as f64,
            lat_mem: config.l3.latency as f64 + config.mem_latency_cycles(),
        }
    }

    /// Per-core statistics.
    pub fn stats(&self, core: usize) -> &MemStats {
        &self.stats[core]
    }

    /// Invalidate `line` in every private cache except `keep`, updating the
    /// directory. Returns how many cores lost a copy.
    fn invalidate_others(&mut self, line: u64, keep: usize) -> u32 {
        let Some(entry) = self.directory.get_mut(&line) else {
            return 0;
        };
        let mut stolen = 0;
        let holders = entry.holders;
        entry.holders &= 1 << keep;
        entry.dirty_owner = None;
        for c in 0..self.l1d.len() {
            if c != keep && holders & (1 << c) != 0 {
                let a = self.l1d[c].invalidate(line);
                let b = self.l2[c].invalidate(line);
                if a || b {
                    self.stats[c].invalidations += 1;
                    stolen += 1;
                }
            }
        }
        stolen
    }

    /// Directory update for a write by `core`: claim exclusive dirty
    /// ownership, invalidating every other holder's private copies. One
    /// hash lookup — state-equivalent to [`MemorySystem::invalidate_others`]
    /// followed by an `entry(line)` holder/dirty-owner update.
    fn claim_for_write(&mut self, line: u64, core: usize) {
        let e = self.directory.entry(line).or_default();
        let holders = e.holders;
        e.holders = 1 << core;
        e.dirty_owner = Some(core as u8);
        let others = holders & !(1u8 << core);
        if others != 0 {
            for c in 0..self.l1d.len() {
                if others & (1 << c) != 0 {
                    let a = self.l1d[c].invalidate(line);
                    let b = self.l2[c].invalidate(line);
                    if a || b {
                        self.stats[c].invalidations += 1;
                    }
                }
            }
        }
    }

    /// Performs a data access by `core` to `line`.
    ///
    /// Returns the load-to-use latency in cycles and the level that serviced
    /// the request. Stores update coherence state but their latency is
    /// hidden by the store buffer (the core model ignores it).
    pub fn access(&mut self, core: usize, line: u64, is_write: bool) -> (f64, ServiceLevel) {
        self.stats[core].accesses += 1;

        // L1D.
        let (l1_hit, _) = self.l1d[core].access(line, is_write);
        if l1_hit {
            if is_write {
                self.claim_for_write(line, core);
            }
            return (self.lat_l1, ServiceLevel::L1);
        }
        self.stats[core].l1d_misses += 1;

        // L2 (private). Maintain L1 inclusivity on L2 evictions.
        let (l2_hit, l2_evicted) = self.l2[core].access(line, is_write);
        if let Some(ev) = l2_evicted {
            self.l1d[core].invalidate(ev);
            if let Some(e) = self.directory.get_mut(&ev) {
                e.holders &= !(1 << core);
                if e.dirty_owner == Some(core as u8) {
                    e.dirty_owner = None; // written back to L3
                }
            }
        }
        if l2_hit {
            if is_write {
                self.claim_for_write(line, core);
            }
            return (self.lat_l2, ServiceLevel::L2);
        }
        self.stats[core].l2_misses += 1;

        // Beyond the private hierarchy: consult the directory first.
        let remote_dirty = self
            .directory
            .get(&line)
            .and_then(|e| e.dirty_owner)
            .filter(|&o| o as usize != core);

        let (latency, level) = if let Some(owner) = remote_dirty {
            // Cache-to-cache intervention. On a read the owner's copy is
            // downgraded (clean, shared); on a write it is invalidated.
            if is_write {
                self.invalidate_others(line, core);
            } else if let Some(e) = self.directory.get_mut(&line) {
                e.dirty_owner = None;
            }
            let _ = owner;
            self.stats[core].remote_hits += 1;
            // Written-back data now lives in L3 too.
            self.l3.access(line, false);
            (self.lat_remote, ServiceLevel::Remote)
        } else {
            let (l3_hit, l3_evicted) = self.l3.access(line, is_write);
            if let Some(ev) = l3_evicted {
                // Inclusive LLC: back-invalidate everywhere.
                for c in 0..self.l1d.len() {
                    self.l1d[c].invalidate(ev);
                    self.l2[c].invalidate(ev);
                }
                self.directory.remove(&ev);
            }
            if l3_hit {
                (self.lat_l3, ServiceLevel::L3)
            } else {
                self.stats[core].l3_misses += 1;
                (self.lat_mem, ServiceLevel::Dram)
            }
        };

        // Fill the private hierarchy and update the directory.
        if is_write {
            self.claim_for_write(line, core);
        } else {
            let e = self.directory.entry(line).or_default();
            e.holders |= 1 << core;
        }
        self.l1d[core].access(line, is_write);

        (latency, level)
    }

    /// Performs an instruction fetch of `code_line` by `core`.
    ///
    /// Returns the added front-end stall in cycles (0 on an L1I hit).
    /// Instruction lines are read-only; misses are refilled at L2 latency
    /// (instruction footprints in this suite always fit in L2 — see
    /// DESIGN.md).
    pub fn icache_access(&mut self, core: usize, code_line: u64) -> f64 {
        self.stats[core].ifetches += 1;
        let (hit, _) = self.l1i[core].access(code_line, false);
        if hit {
            0.0
        } else {
            self.stats[core].l1i_misses += 1;
            self.lat_l2
        }
    }

    /// L1I miss rate observed for `core`.
    pub fn l1i_miss_rate(&self, core: usize) -> f64 {
        self.l1i[core].miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::DesignPoint;

    fn mem() -> MemorySystem {
        MemorySystem::new(&DesignPoint::Base.config())
    }

    #[test]
    fn cold_access_goes_to_dram() {
        let mut m = mem();
        let (lat, level) = m.access(0, 42, false);
        assert_eq!(level, ServiceLevel::Dram);
        assert!(lat > 200.0, "{lat}");
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = mem();
        m.access(0, 42, false);
        let (lat, level) = m.access(0, 42, false);
        assert_eq!(level, ServiceLevel::L1);
        assert!((lat - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sharing_read_hits_l3() {
        let mut m = mem();
        m.access(0, 42, false); // core 0 brings it in
        let (_, level) = m.access(1, 42, false); // core 1 reads it
        assert_eq!(level, ServiceLevel::L3);
    }

    #[test]
    fn remote_dirty_line_is_intervened() {
        let mut m = mem();
        m.access(0, 42, true); // core 0 writes (dirty)
        let (lat, level) = m.access(1, 42, false);
        assert_eq!(level, ServiceLevel::Remote);
        assert!(lat > 35.0);
        // After the intervention the line is clean-shared: core 1 hits L1.
        let (_, l2) = m.access(1, 42, false);
        assert_eq!(l2, ServiceLevel::L1);
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let mut m = mem();
        m.access(0, 42, false);
        m.access(1, 42, false); // both cores now hold the line
        m.access(1, 42, false); // L1 hit for core 1
        m.access(0, 42, true); // core 0 writes: invalidates core 1
        let (_, level) = m.access(1, 42, false);
        assert_ne!(level, ServiceLevel::L1, "core 1's copy must be gone");
        assert_eq!(m.stats(1).invalidations, 1);
    }

    #[test]
    fn write_write_ping_pong() {
        let mut m = mem();
        for i in 0..10 {
            let c = i % 2;
            let (_, level) = m.access(c, 7, true);
            if i >= 2 {
                assert_eq!(level, ServiceLevel::Remote, "iteration {i}");
            }
        }
        assert!(m.stats(0).invalidations >= 4);
        assert!(m.stats(1).invalidations >= 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = DesignPoint::Base.config();
        let mut m = MemorySystem::new(&cfg);
        let l1_lines = cfg.l1d.lines();
        // Touch line 0, then sweep enough lines to evict it from L1 but not
        // from the much larger L2.
        m.access(0, 0, false);
        for l in 1..=l1_lines * 2 {
            m.access(0, l, false);
        }
        let (_, level) = m.access(0, 0, false);
        assert_eq!(level, ServiceLevel::L2);
    }

    #[test]
    fn icache_miss_then_hit() {
        let mut m = mem();
        assert!(m.icache_access(0, 5) > 0.0);
        assert_eq!(m.icache_access(0, 5), 0.0);
        assert_eq!(m.stats(0).l1i_misses, 1);
        assert_eq!(m.stats(0).ifetches, 2);
    }

    #[test]
    fn stats_track_miss_levels() {
        let mut m = mem();
        m.access(0, 1, false); // dram
        m.access(0, 1, false); // l1
        m.access(1, 1, false); // l3
        let s0 = m.stats(0);
        assert_eq!(s0.accesses, 2);
        assert_eq!(s0.l1d_misses, 1);
        assert_eq!(s0.l3_misses, 1);
        let s1 = m.stats(1);
        assert_eq!(s1.l1d_misses, 1);
        assert_eq!(s1.l3_misses, 0);
    }
}

//! Detailed multicore timing simulator — the golden reference for RPPM.
//!
//! The paper validates RPPM against Sniper, a hardware-validated cycle-level
//! multicore simulator. This crate plays that role: an instruction-grain
//! out-of-order core model ([`CoreModel`]) per thread, a shared memory
//! hierarchy with write-invalidate coherence ([`MemorySystem`]), a real
//! tournament branch predictor ([`TournamentPredictor`]), and an execution
//! engine implementing full synchronization semantics ([`simulate`]).
//!
//! The simulator and the analytical model (`rppm-core`) share *only* the
//! workload IR and [`MachineConfig`](rppm_trace::MachineConfig) — the model
//! never observes simulator internals, mirroring the paper's methodology.
//!
//! # Example
//!
//! ```
//! use rppm_trace::{ProgramBuilder, BlockSpec, DesignPoint};
//! use rppm_sim::simulate;
//!
//! let mut b = ProgramBuilder::new("demo", 2);
//! b.spawn_workers();
//! b.thread(1u32).block(BlockSpec::new(10_000, 7));
//! b.join_workers();
//! let program = b.build();
//!
//! let result = simulate(&program, &DesignPoint::Base.config());
//! assert!(result.total_cycles > 0.0);
//! assert_eq!(result.threads.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bpred;
pub mod cache;
pub mod core;
pub mod engine;
pub mod mem;
pub mod reference;
pub mod simprof;

pub use crate::core::{CoreCounters, CoreModel};
pub use bpred::TournamentPredictor;
pub use cache::SetAssocCache;
pub use engine::{
    simulate, simulate_profiled, simulate_profiled_replay, simulate_replay, simulate_with_probe,
    SimResult, SyncEventCounts, ThreadResult,
};
pub use mem::{MemStats, MemorySystem, ServiceLevel};
pub use reference::{simulate_reference, simulate_reference_profiled, simulate_reference_replay};
pub use simprof::{NoProbe, ProfileCollector, SimProbe, SimProfile, SyncMix, ThreadShape};

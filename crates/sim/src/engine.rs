//! Multicore execution engine: schedules per-core timing models against the
//! shared memory system and implements full synchronization semantics
//! (thread creation/join, barriers, critical sections, producer/consumer
//! condition variables).
//!
//! Cores advance in quantum-sized slices in global-time order (the runnable
//! thread with the smallest local clock goes next), so shared-cache and
//! coherence interactions are observed in approximately correct order and
//! the whole simulation is deterministic. Scheduling is discrete-event: the
//! runnable threads live in an [`rppm_core::sched::EventQueue`] min-heap
//! keyed by their local clocks, so blocked and idle threads cost nothing
//! per scheduling step and thread counts far beyond the paper's 4–8 stay
//! cheap.
//!
//! The engine is generic over two plug points, both monomorphized away in
//! the default build: the per-thread timing model (a `CoreTiming` — the
//! optimized [`CoreModel`] or the pinned naive dispatch in
//! [`crate::reference`]) and a [`SimProbe`] observation hook
//! ([`NoProbe`] by default, a [`ProfileCollector`] under
//! [`simulate_profiled`]). Uninterrupted op runs are handed to the core as
//! whole zero-copy block slices (`CoreTiming::run_ops`), keeping the
//! per-op quantum bookkeeping out of this loop; the cold synchronization
//! path stays here.

use crate::core::{CoreCounters, CoreModel};
use crate::mem::MemorySystem;
use crate::simprof::{NoProbe, ProfileCollector, SimProbe, SimProfile};
use rppm_core::sched::EventQueue;
use rppm_trace::{
    BlockItem, CpiStack, ExecSource, MachineConfig, MicroOp, OpReplay, Program, SyncOp,
    ThreadCursor,
};
use std::collections::{HashMap, VecDeque};

/// Scheduling quantum in cycles.
const QUANTUM: f64 = 500.0;

/// A per-thread timing model the engine can schedule.
///
/// Implemented by the optimized [`CoreModel`] and by the naive
/// reference core (see [`crate::reference`]); both must produce
/// bit-identical timing, which the differential equivalence tests pin.
pub(crate) trait CoreTiming {
    /// Creates a core in reset state with its clock at `start_time`.
    fn new(config: &MachineConfig, start_time: f64) -> Self;
    /// Current thread-local time in cycles.
    fn time(&self) -> f64;
    /// Sets the initial clock (thread creation).
    fn set_start_time(&mut self, t: f64);
    /// Advances the clock to `t`, charging the jump to sync.
    fn resume_at(&mut self, t: f64);
    /// Charges sync-library overhead cycles.
    fn charge_sync_overhead(&mut self, cycles: f64);
    /// Total sync-library overhead charged.
    fn sync_overhead_charged(&self) -> f64;
    /// Drains in-flight ops and returns the final time.
    fn finish(&mut self) -> f64;
    /// Stall attribution accumulated so far.
    fn stalls(&self) -> &CpiStack;
    /// Execution counters.
    fn counters(&self) -> &CoreCounters;
    /// `(dispatch_actions, fused_pairs)` taken so far.
    fn dispatch_stats(&self) -> (u64, u64);
    /// Processes a prefix of `ops`, stopping after the first op that pushes
    /// the clock past `limit`; returns `(ops_used, over_limit)`.
    fn run_ops(
        &mut self,
        ops: &[MicroOp],
        mem: &mut MemorySystem,
        core_id: usize,
        limit: f64,
    ) -> (usize, bool);
}

impl CoreTiming for CoreModel {
    fn new(config: &MachineConfig, start_time: f64) -> Self {
        CoreModel::new(config, start_time)
    }
    fn time(&self) -> f64 {
        self.time()
    }
    fn set_start_time(&mut self, t: f64) {
        self.set_start_time(t)
    }
    fn resume_at(&mut self, t: f64) {
        self.resume_at(t)
    }
    fn charge_sync_overhead(&mut self, cycles: f64) {
        self.charge_sync_overhead(cycles)
    }
    fn sync_overhead_charged(&self) -> f64 {
        self.sync_overhead_charged()
    }
    fn finish(&mut self) -> f64 {
        self.finish()
    }
    fn stalls(&self) -> &CpiStack {
        self.stalls()
    }
    fn counters(&self) -> &CoreCounters {
        self.counters()
    }
    fn dispatch_stats(&self) -> (u64, u64) {
        self.dispatch_stats()
    }
    #[inline]
    fn run_ops(
        &mut self,
        ops: &[MicroOp],
        mem: &mut MemorySystem,
        core_id: usize,
        limit: f64,
    ) -> (usize, bool) {
        self.run_ops(ops, mem, core_id, limit)
    }
}

/// Dynamic synchronization-event counts by paper category (Table III).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncEventCounts {
    /// Critical sections entered (lock events).
    pub critical_sections: u64,
    /// Barrier waits (plain barriers).
    pub barriers: u64,
    /// Condition-variable events (cond-implemented barriers, produces,
    /// consumes).
    pub cond_vars: u64,
}

/// Per-thread simulation outcome.
#[derive(Debug, Clone)]
pub struct ThreadResult {
    /// Time the thread started executing (cycles).
    pub start: f64,
    /// Time the thread finished (cycles).
    pub finish: f64,
    /// Cycle breakdown; `base` is the residual after attributing stalls.
    pub cpi: CpiStack,
    /// Micro-ops executed.
    pub ops: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Loads serviced by DRAM.
    pub dram_loads: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Accesses served from a remote private cache.
    pub remote_hits: u64,
    /// Coherence invalidations received.
    pub invalidations: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// Synchronization-library overhead cycles (subset of `cpi.sync` during
    /// which the thread was active).
    pub sync_overhead: f64,
}

impl ThreadResult {
    /// Total wall-clock cycles from thread start to finish.
    pub fn total_cycles(&self) -> f64 {
        self.finish - self.start
    }
}

/// Result of simulating a program on a machine configuration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub program: String,
    /// Configuration name.
    pub config: String,
    /// End-to-end execution time in cycles (last thread to finish).
    pub total_cycles: f64,
    /// End-to-end execution time in seconds.
    pub total_seconds: f64,
    /// Per-thread outcomes.
    pub threads: Vec<ThreadResult>,
    /// Per-thread active intervals (for bottlegraphs): time ranges during
    /// which the thread was running (not blocked on synchronization).
    pub intervals: Vec<Vec<(f64, f64)>>,
    /// Dynamic synchronization-event counts.
    pub sync_events: SyncEventCounts,
}

impl SimResult {
    /// Total micro-ops executed.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(|t| t.ops).sum()
    }

    /// Average per-thread CPI stack (Figure 5 aggregation).
    pub fn mean_cpi_stack(&self) -> CpiStack {
        let mut acc = CpiStack::default();
        for t in &self.threads {
            acc.add(&t.cpi);
        }
        acc.scaled(1.0 / self.threads.len().max(1) as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Ready,
    Blocked,
    Done,
}

struct ThreadCtx<C> {
    core: C,
    status: Status,
    block_time: f64,
    start: f64,
    finish: f64,
    intervals: Vec<(f64, f64)>,
    open: f64,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
    max_time: f64,
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    queue: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Availability times of produced-but-unconsumed items.
    items: VecDeque<f64>,
    /// Threads blocked waiting for an item.
    waiting: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct RwLockState {
    writer: Option<usize>,
    readers: usize,
    /// Blocked acquirers in arrival order: `(thread, wants_write)`.
    queue: VecDeque<(usize, bool)>,
}

impl RwLockState {
    /// Admits queued acquirers after a release, FIFO by arrival: a run of
    /// consecutive readers at the front enters together; a writer at the
    /// front enters alone once the lock is fully free. Returns the threads
    /// to wake.
    fn admit(&mut self) -> Vec<usize> {
        let mut wake = Vec::new();
        if self.writer.is_some() {
            return wake;
        }
        if let Some(&(_, true)) = self.queue.front() {
            if self.readers == 0 {
                let (w, _) = self.queue.pop_front().expect("nonempty");
                self.writer = Some(w);
                wake.push(w);
            }
            return wake;
        }
        while let Some(&(_, false)) = self.queue.front() {
            let (w, _) = self.queue.pop_front().expect("nonempty");
            self.readers += 1;
            wake.push(w);
        }
        wake
    }
}

/// Simulates `program` on `config`, returning the golden-reference timing.
///
/// # Panics
///
/// Panics if the program is structurally invalid (see
/// [`Program::validate`]), uses more threads than the machine has cores, or
/// deadlocks (e.g. consuming from a queue nothing ever produces).
pub fn simulate(program: &Program, config: &MachineConfig) -> SimResult {
    run_simulation::<CoreModel, _, _>(program, config, &mut NoProbe)
}

/// Simulates a recorded op stream replayed out-of-core (see
/// [`OpReplay`]) on `config`. The result is bit-identical to
/// [`simulate`] on the program the stream was recorded from — pinned by
/// the differential suite in `tests/replay_differential.rs`.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_replay(replay: &OpReplay, config: &MachineConfig) -> SimResult {
    run_simulation::<CoreModel, _, _>(replay, config, &mut NoProbe)
}

/// Simulates `program` on `config` with a [`SimProbe`] observing the
/// dispatch loop. With [`NoProbe`] this monomorphizes to exactly
/// [`simulate`]; the timing result never depends on the probe.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_with_probe<P: SimProbe>(
    program: &Program,
    config: &MachineConfig,
    probe: &mut P,
) -> SimResult {
    run_simulation::<CoreModel, _, _>(program, config, probe)
}

/// Simulates `program` on `config` while collecting the simulator
/// self-profile (op frequencies, pair histogram, sync mix, dispatch-batch
/// shapes, fusion statistics). The [`SimResult`] is bit-identical to
/// [`simulate`]'s.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_profiled(program: &Program, config: &MachineConfig) -> (SimResult, SimProfile) {
    let mut collector = ProfileCollector::new();
    let result = run_simulation::<CoreModel, _, _>(program, config, &mut collector);
    (result, collector.into_profile())
}

/// [`simulate_profiled`] over a replayed op stream instead of an
/// expansion-backed program.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_profiled_replay(
    replay: &OpReplay,
    config: &MachineConfig,
) -> (SimResult, SimProfile) {
    let mut collector = ProfileCollector::new();
    let result = run_simulation::<CoreModel, _, _>(replay, config, &mut collector);
    (result, collector.into_profile())
}

/// Validates inputs and runs the engine with the given timing model and
/// probe over any [`ExecSource`] (expansion-backed program or out-of-core
/// replay). Shared by the optimized and reference entry points.
pub(crate) fn run_simulation<C: CoreTiming, S: ExecSource, P: SimProbe>(
    source: &S,
    config: &MachineConfig,
    probe: &mut P,
) -> SimResult {
    source.validate().expect("invalid program");
    config.validate().expect("invalid machine configuration");
    // RPPM assumes one thread per core. One extra thread is tolerated to
    // support the common Parsec structure (a main thread that spawns
    // `cores` workers and then sleeps in join); it gets its own private
    // hierarchy, which is harmless as long as it stays quiescent.
    assert!(
        source.num_threads() <= config.cores as usize + 1,
        "RPPM assumes one thread per core: {} threads > {} cores",
        source.num_threads(),
        config.cores
    );
    Engine::<C, S>::new(source, config).run(probe)
}

struct Engine<'p, C, S: ExecSource> {
    config: &'p MachineConfig,
    source: &'p S,
    /// Per-thread stream cursors, parallel to `threads`. Kept separate so
    /// the zero-copy op slices a cursor lends out can be fed to a core
    /// model while the shared memory system is mutated.
    cursors: Vec<ThreadCursor<'p>>,
    threads: Vec<ThreadCtx<C>>,
    mem: MemorySystem,
    barriers: HashMap<u32, BarrierState>,
    participants: HashMap<u32, usize>,
    mutexes: HashMap<u32, MutexState>,
    queues: HashMap<u32, QueueState>,
    rwlocks: HashMap<u32, RwLockState>,
    /// Semaphores reuse queue bookkeeping: posted permits carry the time
    /// they became available, exactly like produced items.
    sems: HashMap<u32, QueueState>,
    joiners: HashMap<usize, Vec<usize>>,
    counts: SyncEventCounts,
    /// Discrete-event ready queue: `(wake_time, thread)` min-heap. Threads
    /// are posted when they become runnable and popped in global time
    /// order; blocked threads are re-posted by whoever wakes them.
    queue: EventQueue,
}

impl<'p, C: CoreTiming, S: ExecSource> Engine<'p, C, S> {
    fn new(source: &'p S, config: &'p MachineConfig) -> Self {
        let n = source.num_threads();
        let cursors = (0..n).map(|t| source.cursor(t)).collect();
        let threads = (0..n)
            .map(|i| ThreadCtx {
                core: C::new(config, 0.0),
                status: if i == 0 {
                    Status::Ready
                } else {
                    Status::NotStarted
                },
                block_time: 0.0,
                start: 0.0,
                finish: 0.0,
                intervals: Vec::new(),
                open: 0.0,
            })
            .collect();

        // Barrier participation is static: every thread whose script names
        // the barrier takes part in each instance.
        let mut participants: HashMap<u32, usize> = HashMap::new();
        for t in 0..n {
            let mut seen = std::collections::HashSet::new();
            for op in source.sync_ops(t) {
                if let SyncOp::Barrier { id, .. } = op {
                    if seen.insert(id.0) {
                        *participants.entry(id.0).or_insert(0) += 1;
                    }
                }
            }
        }

        Engine {
            config,
            source,
            cursors,
            threads,
            mem: MemorySystem::with_cores(config, n.max(1)),
            barriers: HashMap::new(),
            participants,
            mutexes: HashMap::new(),
            queues: HashMap::new(),
            rwlocks: HashMap::new(),
            sems: HashMap::new(),
            joiners: HashMap::new(),
            counts: SyncEventCounts::default(),
            queue: EventQueue::new(),
        }
    }

    fn block(&mut self, i: usize) {
        let th = &mut self.threads[i];
        let t = th.core.time();
        th.status = Status::Blocked;
        th.block_time = t;
        if t > th.open {
            th.intervals.push((th.open, t));
        }
    }

    /// The running thread `i` waits in place until `t` (join of a finished
    /// thread, barrier release as last arriver, consuming an item produced
    /// "in the future" relative to this thread's clock). The wait is charged
    /// to sync and excluded from the active intervals.
    fn wait_running(&mut self, i: usize, t: f64) {
        let th = &mut self.threads[i];
        let now = th.core.time();
        if t > now {
            if now > th.open {
                th.intervals.push((th.open, now));
            }
            th.core.resume_at(t);
            th.open = th.core.time();
        }
    }

    fn resume(&mut self, i: usize, t: f64) {
        let th = &mut self.threads[i];
        debug_assert_eq!(th.status, Status::Blocked);
        th.core.resume_at(t);
        th.status = Status::Ready;
        th.open = th.core.time();
        let wake = th.core.time();
        self.queue.post_at(wake, i);
    }

    fn finish_thread(&mut self, i: usize) {
        let t = self.threads[i].core.finish();
        {
            let th = &mut self.threads[i];
            th.status = Status::Done;
            th.finish = t;
            if t > th.open {
                th.intervals.push((th.open, t));
            }
        }
        if let Some(waiters) = self.joiners.remove(&i) {
            for w in waiters {
                self.resume(w, t);
            }
        }
    }

    /// Handles one synchronization event for thread `i`. Returns `true` if
    /// the thread blocked. This is the cold path of the run loop: every op
    /// between two sync events flows through `CoreTiming::run_ops` without
    /// touching any of this bookkeeping.
    #[cold]
    fn handle_sync(&mut self, i: usize, op: SyncOp) -> bool {
        let overhead = self.config.sync_overhead_cycles as f64;
        self.threads[i].core.charge_sync_overhead(overhead);
        let t = self.threads[i].core.time();

        match op {
            SyncOp::Create { child } => {
                let c = child.index();
                let start = t + self.config.spawn_latency_cycles as f64;
                let th = &mut self.threads[c];
                assert_eq!(th.status, Status::NotStarted, "thread created twice");
                th.core.set_start_time(start);
                th.status = Status::Ready;
                th.start = start;
                th.open = start;
                let wake = th.core.time();
                self.queue.post_at(wake, c);
                false
            }
            SyncOp::Join { child } => {
                let c = child.index();
                if self.threads[c].status == Status::Done {
                    let fin = self.threads[c].finish;
                    self.wait_running(i, fin);
                    false
                } else {
                    self.joiners.entry(c).or_default().push(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Barrier { id, via_cond } => {
                if via_cond {
                    self.counts.cond_vars += 1;
                } else {
                    self.counts.barriers += 1;
                }
                let need = *self
                    .participants
                    .get(&id.0)
                    .expect("barrier with no participants");
                let bar = self.barriers.entry(id.0).or_default();
                bar.arrived.push(i);
                bar.max_time = bar.max_time.max(t);
                if bar.arrived.len() >= need {
                    let release = bar.max_time;
                    let arrived = std::mem::take(&mut bar.arrived);
                    bar.max_time = 0.0;
                    for w in arrived {
                        if w != i {
                            self.resume(w, release);
                        }
                    }
                    self.wait_running(i, release);
                    false
                } else {
                    self.block(i);
                    true
                }
            }
            SyncOp::Lock { id } => {
                self.counts.critical_sections += 1;
                let m = self.mutexes.entry(id.0).or_default();
                if m.held_by.is_none() && m.queue.is_empty() {
                    m.held_by = Some(i);
                    false
                } else {
                    m.queue.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Unlock { id } => {
                let m = self.mutexes.entry(id.0).or_default();
                m.held_by = None;
                if let Some(w) = m.queue.pop_front() {
                    m.held_by = Some(w);
                    self.resume(w, t);
                }
                false
            }
            SyncOp::Produce { queue, count } => {
                self.counts.cond_vars += 1;
                let q = self.queues.entry(queue.0).or_default();
                for _ in 0..count {
                    q.items.push_back(t);
                }
                let mut wakeups = Vec::new();
                while !q.items.is_empty() && !q.waiting.is_empty() {
                    let item = q.items.pop_front().expect("nonempty");
                    let w = q.waiting.pop_front().expect("nonempty");
                    wakeups.push((w, item));
                }
                for (w, item) in wakeups {
                    self.resume(w, item.max(self.threads[w].block_time));
                }
                false
            }
            SyncOp::Consume { queue } => {
                self.counts.cond_vars += 1;
                let q = self.queues.entry(queue.0).or_default();
                if let Some(item) = q.items.pop_front() {
                    if item > t {
                        self.wait_running(i, item);
                    }
                    false
                } else {
                    q.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::RwLock { id, write } => {
                self.counts.critical_sections += 1;
                let rw = self.rwlocks.entry(id.0).or_default();
                let free = rw.writer.is_none() && rw.queue.is_empty();
                let grant = if write { free && rw.readers == 0 } else { free };
                if grant {
                    if write {
                        rw.writer = Some(i);
                    } else {
                        rw.readers += 1;
                    }
                    false
                } else {
                    rw.queue.push_back((i, write));
                    self.block(i);
                    true
                }
            }
            SyncOp::RwUnlock { id } => {
                let rw = self.rwlocks.entry(id.0).or_default();
                if rw.writer == Some(i) {
                    rw.writer = None;
                } else {
                    rw.readers = rw.readers.saturating_sub(1);
                }
                let wake = rw.admit();
                for w in wake {
                    self.resume(w, t);
                }
                false
            }
            SyncOp::SemWait { id } => {
                self.counts.cond_vars += 1;
                let s = self.sems.entry(id.0).or_default();
                if let Some(item) = s.items.pop_front() {
                    if item > t {
                        self.wait_running(i, item);
                    }
                    false
                } else {
                    s.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::SemPost { id, count } => {
                self.counts.cond_vars += 1;
                let s = self.sems.entry(id.0).or_default();
                for _ in 0..count {
                    s.items.push_back(t);
                }
                let mut wakeups = Vec::new();
                while !s.items.is_empty() && !s.waiting.is_empty() {
                    let item = s.items.pop_front().expect("nonempty");
                    let w = s.waiting.pop_front().expect("nonempty");
                    wakeups.push((w, item));
                }
                for (w, item) in wakeups {
                    self.resume(w, item.max(self.threads[w].block_time));
                }
                false
            }
        }
    }

    fn run<P: SimProbe>(mut self, probe: &mut P) -> SimResult {
        // Discrete-event scheduling: pop the runnable thread with the
        // smallest local clock from the ready queue (ties to the lowest
        // thread index, matching the historical scan bit for bit); blocked
        // and finished threads cost nothing per scheduling step.
        if !self.threads.is_empty() {
            let t = self.threads[0].core.time();
            self.queue.post_at(t, 0); // main thread starts ready
        }
        loop {
            let Some((_, i)) = self.queue.pop() else {
                if self.threads.iter().all(|t| t.status == Status::Done) {
                    break;
                }
                let stuck: Vec<usize> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Blocked)
                    .map(|(i, _)| i)
                    .collect();
                panic!(
                    "deadlock: threads {stuck:?} blocked forever in {}",
                    self.source.name()
                );
            };
            debug_assert_eq!(self.threads[i].status, Status::Ready);
            let t0 = self.threads[i].core.time();

            let limit = t0 + QUANTUM;
            loop {
                let Engine {
                    cursors,
                    threads,
                    mem,
                    ..
                } = &mut self;
                match cursors[i].peek_block() {
                    None => {
                        self.finish_thread(i);
                        break;
                    }
                    Some(BlockItem::Sync(op)) => {
                        cursors[i].consume_sync();
                        probe.on_sync(i, &op);
                        if self.handle_sync(i, op) {
                            break;
                        }
                        if self.threads[i].core.time() > limit {
                            break;
                        }
                    }
                    Some(BlockItem::Ops(ops)) => {
                        // Hand the whole lent slice to the core model; it
                        // enforces the quantum after each op exactly like
                        // the per-op loop did (op latencies vary, so the
                        // budget cannot be precomputed as an op count).
                        let th = &mut threads[i];
                        let (used, over) = th.core.run_ops(ops, mem, i, limit);
                        probe.on_ops(i, &ops[..used]);
                        cursors[i].consume_ops(used);
                        if over {
                            break;
                        }
                    }
                }
            }
            // Re-post the thread if it is still runnable after its slice
            // (blocked threads are re-posted by whoever wakes them).
            if self.threads[i].status == Status::Ready {
                let t = self.threads[i].core.time();
                self.queue.post_at(t, i);
            }
        }

        for (i, th) in self.threads.iter().enumerate() {
            let (dispatches, fused) = th.core.dispatch_stats();
            probe.on_thread_finish(i, dispatches, fused);
        }

        self.collect()
    }

    fn collect(self) -> SimResult {
        let mut threads = Vec::with_capacity(self.threads.len());
        let mut intervals = Vec::with_capacity(self.threads.len());
        let mut total_cycles: f64 = 0.0;
        for (i, th) in self.threads.iter().enumerate() {
            total_cycles = total_cycles.max(th.finish);
            let counters = th.core.counters();
            let stalls = th.core.stalls();
            let total = th.finish - th.start;
            let attributed = stalls.branch
                + stalls.icache
                + stalls.mem_l2
                + stalls.mem_l3
                + stalls.mem_dram
                + stalls.sync;
            let cpi = CpiStack {
                base: (total - attributed).max(0.0),
                ..*stalls
            };
            let ms = self.mem.stats(i);
            threads.push(ThreadResult {
                start: th.start,
                finish: th.finish,
                cpi,
                ops: counters.ops,
                branches: counters.branches,
                mispredicts: counters.mispredicts,
                loads: counters.loads,
                stores: counters.stores,
                dram_loads: counters.dram_loads,
                l1d_misses: ms.l1d_misses,
                l2_misses: ms.l2_misses,
                l3_misses: ms.l3_misses,
                remote_hits: ms.remote_hits,
                invalidations: ms.invalidations,
                l1i_misses: ms.l1i_misses,
                sync_overhead: th.core.sync_overhead_charged(),
            });
            intervals.push(th.intervals.clone());
        }
        SimResult {
            program: self.source.name().to_string(),
            config: self.config.name.clone(),
            total_cycles,
            total_seconds: self.config.cycles_to_seconds(total_cycles),
            threads,
            intervals,
            sync_events: self.counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{AddressPattern, BlockSpec, DesignPoint, ProgramBuilder, Region, ThreadId};

    fn base() -> MachineConfig {
        DesignPoint::Base.config()
    }

    fn compute_block(ops: u32, seed: u64) -> BlockSpec {
        BlockSpec::new(ops, seed).deps(0.3, 4.0)
    }

    #[test]
    fn single_thread_program_runs() {
        let mut b = ProgramBuilder::new("single", 1);
        b.thread(0u32).block(compute_block(10_000, 1));
        let p = b.build();
        let r = simulate(&p, &base());
        assert_eq!(r.threads.len(), 1);
        assert!(r.total_cycles > 0.0);
        assert_eq!(r.threads[0].ops, 10_000);
        assert!(r.total_seconds > 0.0);
    }

    #[test]
    fn fork_join_waits_for_workers() {
        let mut b = ProgramBuilder::new("forkjoin", 4);
        b.spawn_workers();
        for t in 1..4u32 {
            b.thread(t).block(compute_block(50_000, t as u64));
        }
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        // Main finishes after every worker.
        let main_fin = r.threads[0].finish;
        for t in 1..4 {
            assert!(r.threads[t].finish <= main_fin + 1e-6);
        }
        // Main accumulated join wait.
        assert!(r.threads[0].cpi.sync > 0.0);
    }

    #[test]
    fn barrier_synchronizes_epochs() {
        let mut b = ProgramBuilder::new("barrier", 2);
        let bar = b.alloc_barrier();
        b.spawn_workers();
        // Thread 0: short work. Thread 1: long work. Barrier between.
        b.thread(0u32)
            .block(compute_block(1_000, 1))
            .barrier(bar)
            .block(compute_block(1_000, 2));
        b.thread(1u32)
            .block(compute_block(100_000, 3))
            .barrier(bar)
            .block(compute_block(1_000, 4));
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        // Thread 0 must have waited for thread 1 at the barrier.
        assert!(
            r.threads[0].cpi.sync > 1000.0,
            "sync wait {}",
            r.threads[0].cpi.sync
        );
        assert_eq!(r.sync_events.barriers, 2);
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        let mut b = ProgramBuilder::new("mutex", 3);
        let m = b.alloc_mutex();
        let shared = b.alloc_region(64);
        b.spawn_workers();
        for t in 0..3u32 {
            let mut tb = b.thread(t);
            for k in 0..20 {
                tb.lock(m)
                    .block(
                        BlockSpec::new(2_000, (t as u64) << 8 | k)
                            .loads(0.2)
                            .stores(0.2)
                            .addr(AddressPattern::stream(Region::new(shared.base, 64)), 1.0),
                    )
                    .unlock(m);
            }
        }
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        assert_eq!(r.sync_events.critical_sections, 60);
        // With 3 threads contending, at least one accumulated lock wait.
        let total_sync: f64 = r.threads.iter().map(|t| t.cpi.sync).sum();
        assert!(total_sync > 1000.0, "total sync {total_sync}");
    }

    #[test]
    fn rwlock_readers_share_writer_excludes() {
        let mut b = ProgramBuilder::new("rwlock", 3);
        let rw = b.alloc_rwlock();
        b.spawn_workers();
        // Two readers hold the lock through long work; a late writer must
        // wait for both to release.
        for t in 0..2u32 {
            b.thread(t)
                .rw_lock(rw, false)
                .block(compute_block(50_000, t as u64))
                .rw_unlock(rw);
        }
        b.thread(2u32)
            .block(compute_block(1_000, 9))
            .rw_lock(rw, true)
            .block(compute_block(1_000, 10))
            .rw_unlock(rw);
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        // Acquisitions count as critical sections (releases do not).
        assert_eq!(r.sync_events.critical_sections, 3);
        // Readers enter concurrently, so neither waits on the other; the
        // writer queues behind both and eats the read-section latency.
        let writer_wait = r.threads[2].cpi.sync;
        assert!(writer_wait > 1_000.0, "writer wait {writer_wait}");
        for t in 0..2 {
            assert!(
                r.threads[t].cpi.sync < writer_wait,
                "reader {t} waited {} >= writer {writer_wait}",
                r.threads[t].cpi.sync
            );
        }
    }

    #[test]
    fn semaphore_permits_gate_waiters() {
        let mut b = ProgramBuilder::new("sem", 2);
        let s = b.alloc_sem();
        b.spawn_workers();
        b.thread(0u32)
            .block(compute_block(50_000, 1))
            .sem_post(s, 2);
        b.thread(1u32)
            .sem_wait(s)
            .sem_wait(s)
            .block(compute_block(1_000, 2));
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        // The waiter blocked until the post: most of its time is sync wait.
        assert!(
            r.threads[1].cpi.sync > r.threads[1].cpi.base,
            "waiter should be starved: {:?}",
            r.threads[1].cpi
        );
        // One post plus two waits, all condition-variable events.
        assert_eq!(r.sync_events.cond_vars, 3);
    }

    #[test]
    fn producer_consumer_pipeline() {
        let mut b = ProgramBuilder::new("pipeline", 2);
        let q = b.alloc_queue();
        b.spawn_workers();
        // Worker consumes 10 items; main produces them slowly.
        for k in 0..10u64 {
            b.thread(0u32).block(compute_block(20_000, k)).produce(q, 1);
        }
        for k in 0..10u64 {
            b.thread(1u32)
                .consume(q)
                .block(compute_block(1_000, 100 + k));
        }
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        // The consumer is starved: most of its time is sync wait.
        assert!(
            r.threads[1].cpi.sync > r.threads[1].cpi.base,
            "consumer should be starved: {:?}",
            r.threads[1].cpi
        );
        assert_eq!(r.sync_events.cond_vars, 20);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unproduced_consume_deadlocks() {
        let mut b = ProgramBuilder::new("deadlock", 1);
        let q = b.alloc_queue();
        b.thread(0u32).consume(q);
        let p = b.build();
        simulate(&p, &base());
    }

    #[test]
    fn coherence_visible_in_sharing_workload() {
        let mut b = ProgramBuilder::new("sharing", 2);
        let shared = b.alloc_region(512);
        let bar = b.alloc_barrier();
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(50_000, t as u64)
                        .loads(0.3)
                        .stores(0.1)
                        .addr(AddressPattern::random(shared), 1.0),
                )
                .barrier(bar);
        }
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        let inval: u64 = r.threads.iter().map(|t| t.invalidations).sum();
        assert!(inval > 0, "write sharing must invalidate");
    }

    #[test]
    fn intervals_cover_active_time() {
        let mut b = ProgramBuilder::new("intervals", 2);
        let bar = b.alloc_barrier();
        b.spawn_workers();
        b.thread(0u32).block(compute_block(1_000, 1)).barrier(bar);
        b.thread(1u32).block(compute_block(50_000, 2)).barrier(bar);
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        for (t, iv) in r.intervals.iter().enumerate() {
            assert!(!iv.is_empty(), "thread {t} has no intervals");
            // Intervals are ordered and disjoint.
            for w in iv.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9);
            }
            let active: f64 = iv.iter().map(|(s, e)| e - s).sum();
            let th = &r.threads[t];
            // Library overhead is active time charged to sync.
            let expected = th.finish - th.start - th.cpi.sync + th.sync_overhead;
            assert!(
                (active - expected).abs() / expected.max(1.0) < 0.05,
                "thread {t}: active {active} vs finish-start-sync {expected}"
            );
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mk = || {
            let mut b = ProgramBuilder::new("det", 2);
            let bar = b.alloc_barrier();
            let r = b.alloc_region(4096);
            b.spawn_workers();
            for t in 0..2u32 {
                b.thread(t)
                    .block(
                        BlockSpec::new(20_000, t as u64)
                            .loads(0.25)
                            .branches(0.1)
                            .addr(AddressPattern::random(r), 1.0),
                    )
                    .barrier(bar);
            }
            b.join_workers();
            b.build()
        };
        let r1 = simulate(&mk(), &base());
        let r2 = simulate(&mk(), &base());
        assert_eq!(r1.total_cycles, r2.total_cycles);
        assert_eq!(r1.threads[0].cpi.mem_dram, r2.threads[0].cpi.mem_dram);
    }

    #[test]
    fn cpi_stack_sums_to_total() {
        let mut b = ProgramBuilder::new("stack", 2);
        let bar = b.alloc_barrier();
        let reg = b.alloc_region(1 << 18);
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(30_000, t as u64 + 7)
                        .loads(0.3)
                        .branches(0.15)
                        .branch_pattern(rppm_trace::BranchPattern::bernoulli(0.7))
                        .addr(AddressPattern::stream(reg), 1.0),
                )
                .barrier(bar);
        }
        b.join_workers();
        let p = b.build();
        let r = simulate(&p, &base());
        for t in &r.threads {
            let total = t.finish - t.start;
            assert!(
                (t.cpi.total() - total).abs() / total < 1e-6,
                "stack {} vs total {}",
                t.cpi.total(),
                total
            );
        }
    }

    #[test]
    #[should_panic(expected = "one thread per core")]
    fn too_many_threads_rejected() {
        let mut b = ProgramBuilder::new("toomany", 8);
        b.spawn_workers();
        for t in 0..8u32 {
            b.thread(t).block(compute_block(10, t as u64));
        }
        b.join_workers();
        let p = b.build();
        simulate(&p, &base());
    }

    #[test]
    fn join_of_finished_thread_does_not_block() {
        let mut b = ProgramBuilder::new("fastchild", 2);
        b.thread(0u32).create(ThreadId(1));
        b.thread(1u32).block(compute_block(100, 1));
        // Main does a lot of work, then joins the long-finished child.
        b.thread(0u32)
            .block(compute_block(200_000, 2))
            .join(ThreadId(1));
        let p = b.build();
        let r = simulate(&p, &base());
        // Join wait should be ~0 (child done long ago).
        assert!(r.threads[0].cpi.sync < 5000.0, "{}", r.threads[0].cpi.sync);
    }

    #[test]
    fn profiled_result_matches_simulate_bit_for_bit() {
        let mut b = ProgramBuilder::new("profiled", 2);
        let bar = b.alloc_barrier();
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(20_000, t as u64 + 3)
                        .loads(0.25)
                        .branches(0.08),
                )
                .barrier(bar);
        }
        b.join_workers();
        let p = b.build();
        let plain = simulate(&p, &base());
        let (probed, profile) = simulate_profiled(&p, &base());
        assert_eq!(plain.total_cycles.to_bits(), probed.total_cycles.to_bits());
        for (a, b) in plain.threads.iter().zip(probed.threads.iter()) {
            assert_eq!(a.finish.to_bits(), b.finish.to_bits());
            assert_eq!(a.ops, b.ops);
        }
        // The profile saw every executed op and the sync mix.
        assert_eq!(profile.total_ops(), plain.total_ops());
        assert_eq!(
            profile.sync.barriers + profile.sync.cond_barriers,
            plain.sync_events.barriers + plain.sync_events.cond_vars,
            "barrier count mismatch: {:?} vs {:?}",
            profile.sync,
            plain.sync_events
        );
        assert_eq!(
            profile.dispatches + profile.fused_pairs,
            profile.total_ops()
        );
        assert!(profile.fused_pairs > 0, "compute blocks must fuse");
        assert!(profile.threads.iter().all(|t| t.runs > 0));
    }
}

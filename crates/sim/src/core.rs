//! Instruction-grain out-of-order core timing model.
//!
//! The model tracks, per dynamic micro-op: its dispatch cycle (bounded by
//! front-end width, front-end stalls after mispredictions and I-cache
//! misses, and ROB availability), its ready time (register dependences via a
//! completion ring buffer), its execution start (functional-unit port
//! contention, MSHR availability for loads) and its completion. Retirement
//! is in order; dispatch stalls when the ROB is full, so a long-latency load
//! at the ROB head naturally blocks the window while independent misses
//! underneath it overlap — the mechanism behind memory-level parallelism.
//!
//! This is the same modeling altitude as the "instruction-window centric"
//! core models validated in Carlson et al. (TACO 2014), which the paper uses
//! as its golden reference.

use crate::bpred::TournamentPredictor;
use crate::mem::{MemorySystem, ServiceLevel};
use rppm_trace::{CpiStack, MachineConfig, MicroOp, OpClass};
use std::collections::VecDeque;

/// Ring-buffer size for completion times (must exceed the maximum register
/// dependence distance, which is bounded by `u16::MAX`).
const RING: usize = 1 << 16;

/// Stall-attribution component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    Base,
    Branch,
    ICache,
    MemL2,
    MemL3,
    MemDram,
}

/// Per-thread execution counters reported by the core model.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoreCounters {
    /// Micro-ops executed.
    pub ops: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Loads serviced by DRAM.
    pub dram_loads: u64,
}

/// Out-of-order core timing state for one thread.
#[derive(Debug)]
pub struct CoreModel {
    // Configuration scalars.
    width: u32,
    rob_size: usize,
    frontend_depth: f64,
    mshrs: usize,
    ports: [u8; rppm_trace::op::NUM_PORT_POOLS],

    // Timing state.
    cycle: f64,
    dispatched: u32,
    fe_stall_until: f64,
    fe_cause: Cause,
    completions: Vec<f64>,
    op_index: u64,
    rob: VecDeque<(f64, Cause)>,
    last_retire: f64,
    fu_free: [[f64; 8]; rppm_trace::op::NUM_PORT_POOLS],
    /// Ring of the last `mshrs` miss completion times (program order).
    mshr: Vec<f64>,
    miss_index: u64,
    last_code_line: u64,

    predictor: TournamentPredictor,

    // Accounting.
    stalls: CpiStack,
    overhead: f64,
    counters: CoreCounters,
}

impl CoreModel {
    /// Creates a core in its reset state, with the thread's clock at
    /// `start_time`.
    pub fn new(config: &MachineConfig, start_time: f64) -> Self {
        let mut ports = [1u8; rppm_trace::op::NUM_PORT_POOLS];
        for class in OpClass::ALL {
            ports[class.port_pool()] = config.ports_for(class).clamp(1, 8) as u8;
        }
        CoreModel {
            width: config.dispatch_width,
            rob_size: config.rob_size as usize,
            frontend_depth: config.frontend_depth as f64,
            mshrs: config.mshrs as usize,
            ports,
            cycle: start_time,
            dispatched: 0,
            fe_stall_until: 0.0,
            fe_cause: Cause::Branch,
            completions: vec![0.0; RING],
            op_index: 0,
            rob: VecDeque::with_capacity(config.rob_size as usize + 1),
            last_retire: start_time,
            fu_free: [[0.0; 8]; rppm_trace::op::NUM_PORT_POOLS],
            mshr: vec![0.0; config.mshrs as usize],
            miss_index: 0,
            last_code_line: u64::MAX,
            predictor: TournamentPredictor::new(&config.bpred),
            stalls: CpiStack::default(),
            overhead: 0.0,
            counters: CoreCounters::default(),
        }
    }

    /// Current thread-local time (dispatch clock) in cycles.
    pub fn time(&self) -> f64 {
        self.cycle
    }

    /// Time at which every in-flight op will have retired.
    pub fn drain_time(&self) -> f64 {
        self.cycle.max(self.last_retire)
    }

    /// Sets the thread's initial clock (thread creation), without charging
    /// any component.
    pub fn set_start_time(&mut self, t: f64) {
        self.cycle = t;
        self.last_retire = t;
    }

    /// Moves the clock forward to `t` (synchronization resume), charging the
    /// jump to the sync component.
    pub fn resume_at(&mut self, t: f64) {
        if t > self.cycle {
            self.stalls.sync += t - self.cycle;
            self.cycle = t;
            self.dispatched = 0;
        }
    }

    /// Charges `cycles` of synchronization-library overhead and advances the
    /// clock past them. Overhead is *executed* time (the thread is active),
    /// but the paper accounts it to the sync component.
    pub fn charge_sync_overhead(&mut self, cycles: f64) {
        self.stalls.sync += cycles;
        self.overhead += cycles;
        self.cycle += cycles;
        self.dispatched = 0;
    }

    /// Total synchronization-library overhead charged (a subset of the sync
    /// component during which the thread was active, not blocked).
    pub fn sync_overhead_charged(&self) -> f64 {
        self.overhead
    }

    fn attribute(stalls: &mut CpiStack, cause: Cause, delta: f64) {
        match cause {
            Cause::Base => stalls.base += delta,
            Cause::Branch => stalls.branch += delta,
            Cause::ICache => stalls.icache += delta,
            Cause::MemL2 => stalls.mem_l2 += delta,
            Cause::MemL3 => stalls.mem_l3 += delta,
            Cause::MemDram => stalls.mem_dram += delta,
        }
    }

    /// Processes one micro-op, advancing the thread's timing state.
    pub fn process(&mut self, op: &MicroOp, mem: &mut MemorySystem, core_id: usize) {
        self.counters.ops += 1;

        // Instruction fetch: charge a front-end stall on an I-cache miss
        // whenever execution enters a new code line.
        if op.code_line != self.last_code_line {
            self.last_code_line = op.code_line;
            let stall = mem.icache_access(core_id, op.code_line);
            if stall > 0.0 {
                let until = self.cycle + stall;
                if until > self.fe_stall_until {
                    self.fe_stall_until = until;
                    self.fe_cause = Cause::ICache;
                }
            }
        }

        // Front-end stall (misprediction redirect or I-cache refill).
        if self.fe_stall_until > self.cycle {
            Self::attribute(
                &mut self.stalls,
                self.fe_cause,
                self.fe_stall_until - self.cycle,
            );
            self.cycle = self.fe_stall_until;
            self.dispatched = 0;
        }

        // ROB availability: dispatch stalls until the head retires.
        if self.rob.len() >= self.rob_size {
            let (retire, cause) = self.rob.pop_front().expect("rob nonempty");
            if retire > self.cycle {
                Self::attribute(&mut self.stalls, cause, retire - self.cycle);
                self.cycle = retire;
                self.dispatched = 0;
            }
        }

        // Dispatch-width throttle.
        if self.dispatched >= self.width {
            self.cycle += 1.0;
            self.dispatched = 0;
        }
        let dispatch_time = self.cycle;
        self.dispatched += 1;

        // Register readiness.
        let mut ready = dispatch_time;
        if op.src1 != 0 && (op.src1 as u64) <= self.op_index {
            let idx = ((self.op_index - op.src1 as u64) as usize) & (RING - 1);
            ready = ready.max(self.completions[idx]);
        }
        if op.src2 != 0 && (op.src2 as u64) <= self.op_index {
            let idx = ((self.op_index - op.src2 as u64) as usize) & (RING - 1);
            ready = ready.max(self.completions[idx]);
        }

        // Functional-unit port.
        let class = op.class;
        let pool = class.port_pool();
        let nports = self.ports[pool] as usize;
        let fu = &mut self.fu_free[pool];
        let mut port = 0;
        for p in 1..nports {
            if fu[p] < fu[port] {
                port = p;
            }
        }
        let issue = ready.max(fu[port]);
        let mut start = issue;

        let (complete, cause) = match class {
            OpClass::Load => {
                self.counters.loads += 1;
                // MSHR limit: with `mshrs` miss registers allocated in
                // program order, miss k cannot start before miss k−mshrs
                // completed (a k-server queue). The wait happens in the load
                // queue — it does NOT hold the issue port (real LSUs issue
                // around a full miss queue).
                if self.miss_index >= self.mshrs as u64 {
                    let gate = self.mshr[(self.miss_index as usize) % self.mshrs];
                    start = start.max(gate);
                }
                let (lat, level) = mem.access(core_id, op.line, false);
                let complete = start + lat;
                let cause = match level {
                    ServiceLevel::L1 => Cause::Base,
                    ServiceLevel::L2 => Cause::MemL2,
                    ServiceLevel::L3 | ServiceLevel::Remote => Cause::MemL3,
                    ServiceLevel::Dram => {
                        self.counters.dram_loads += 1;
                        self.mshr[(self.miss_index as usize) % self.mshrs] = complete;
                        self.miss_index += 1;
                        Cause::MemDram
                    }
                };
                (complete, cause)
            }
            OpClass::Store => {
                self.counters.stores += 1;
                // Stores retire through the store buffer; coherence state is
                // updated now, latency is hidden.
                let _ = mem.access(core_id, op.line, true);
                (start + 1.0, Cause::Base)
            }
            OpClass::Branch => {
                self.counters.branches += 1;
                let miss = self.predictor.predict_and_update(op.site, op.taken);
                let complete = start + class.latency() as f64;
                if miss {
                    self.counters.mispredicts += 1;
                    // Redirect: front-end refills after the branch resolves.
                    let until = complete + self.frontend_depth;
                    if until > self.fe_stall_until {
                        self.fe_stall_until = until;
                        self.fe_cause = Cause::Branch;
                    }
                }
                (complete, Cause::Base)
            }
            _ => (start + class.latency() as f64, Cause::Base),
        };

        fu[port] = if class.pipelined() {
            issue + 1.0
        } else {
            complete
        };

        // In-order retirement.
        let retire = complete.max(self.last_retire);
        self.last_retire = retire;
        self.rob.push_back((retire, cause));

        self.completions[(self.op_index as usize) & (RING - 1)] = complete;
        self.op_index += 1;
    }

    /// Finishes the thread: drains the ROB and returns the final time.
    pub fn finish(&mut self) -> f64 {
        let t = self.drain_time();
        self.cycle = t;
        t
    }

    /// Stall attribution accumulated so far. The `base` field is *not* yet
    /// populated (it is the residual, computed by the engine as active time
    /// minus attributed stalls).
    pub fn stalls(&self) -> &CpiStack {
        &self.stalls
    }

    /// Execution counters.
    pub fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// Observed branch misprediction rate.
    pub fn branch_miss_rate(&self) -> f64 {
        self.predictor.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BlockSpec, DesignPoint};

    fn run_block(spec: BlockSpec, config: &rppm_trace::MachineConfig) -> (CoreModel, MemorySystem) {
        let mut mem = MemorySystem::new(config);
        let mut core = CoreModel::new(config, 0.0);
        for op in spec.expand() {
            core.process(&op, &mut mem, 0);
        }
        core.finish();
        (core, mem)
    }

    #[test]
    fn ideal_ilp_reaches_dispatch_width() {
        let cfg = DesignPoint::Base.config();
        // Independent integer ops, no memory, no branches.
        let spec = BlockSpec::new(100_000, 1).deps(0.0, 1.0).deps2(0.0);
        let (core, _) = run_block(spec, &cfg);
        let ipc = core.counters().ops as f64 / core.drain_time();
        assert!(
            (ipc - cfg.dispatch_width as f64).abs() < 0.2,
            "ipc {ipc} vs width {}",
            cfg.dispatch_width
        );
    }

    #[test]
    fn serial_chain_runs_at_one_over_latency() {
        let cfg = DesignPoint::Base.config();
        // Every op depends on the previous one: IPC ~ 1 (IntAlu latency 1).
        let spec = BlockSpec::new(50_000, 2).deps(1.0, 1.0).deps2(0.0);
        let (core, _) = run_block(spec, &cfg);
        let ipc = core.counters().ops as f64 / core.drain_time();
        assert!(ipc < 1.25, "chain ipc {ipc}");
    }

    #[test]
    fn fu_contention_limits_throughput() {
        let cfg = DesignPoint::Base.config(); // 2 FP pipes at width 4
        let spec = BlockSpec::new(50_000, 3)
            .fp(1.0, 0.0)
            .deps(0.0, 1.0)
            .deps2(0.0);
        let (core, _) = run_block(spec, &cfg);
        let ipc = core.counters().ops as f64 / core.drain_time();
        assert!(ipc < 2.3, "fp-bound ipc {ipc} must respect 2 FP ports");
    }

    #[test]
    fn dram_misses_dominate_streaming() {
        let cfg = DesignPoint::Base.config();
        let region = rppm_trace::Region::new(0, 4 << 20); // far beyond LLC
        let spec = BlockSpec::new(100_000, 4)
            .loads(0.3)
            .addr(rppm_trace::AddressPattern::stream(region), 1.0);
        let (core, _) = run_block(spec, &cfg);
        assert!(core.counters().dram_loads > 1000);
        assert!(core.stalls().mem_dram > 0.0);
        let cpi = core.drain_time() / core.counters().ops as f64;
        assert!(cpi > 0.5, "memory-bound cpi {cpi}");
    }

    #[test]
    fn mlp_overlaps_independent_misses() {
        let cfg = DesignPoint::Base.config();
        let region = rppm_trace::Region::new(0, 4 << 20);
        // Independent streaming loads: misses overlap.
        let indep = BlockSpec::new(50_000, 5)
            .loads(0.3)
            .deps(0.0, 1.0)
            .addr(rppm_trace::AddressPattern::stream(region), 1.0);
        // Pointer-chasing loads: serialized misses.
        let chained = BlockSpec::new(50_000, 5)
            .loads(0.3)
            .deps(0.0, 1.0)
            .load_chain(1.0)
            .addr(rppm_trace::AddressPattern::stream(region), 1.0);
        let (c1, _) = run_block(indep, &cfg);
        let (c2, _) = run_block(chained, &cfg);
        let t1 = c1.drain_time();
        let t2 = c2.drain_time();
        assert!(
            t2 > t1 * 2.0,
            "chained ({t2}) should be much slower than independent ({t1})"
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let cfg = DesignPoint::Base.config();
        let predictable = BlockSpec::new(50_000, 6)
            .branches(0.2)
            .branch_pattern(rppm_trace::BranchPattern::loop_every(64));
        let random = BlockSpec::new(50_000, 6)
            .branches(0.2)
            .branch_pattern(rppm_trace::BranchPattern::bernoulli(0.5));
        let (c1, _) = run_block(predictable, &cfg);
        let (c2, _) = run_block(random, &cfg);
        assert!(c2.counters().mispredicts > 10 * c1.counters().mispredicts.max(1));
        assert!(c2.drain_time() > c1.drain_time() * 1.3);
        assert!(c2.stalls().branch > c1.stalls().branch);
    }

    #[test]
    fn icache_misses_from_large_code_footprint() {
        let cfg = DesignPoint::Base.config();
        // 32 KB L1I = 512 lines; a 4096-line loop body thrashes it.
        let big_code = BlockSpec::new(200_000, 7).code_footprint(4096);
        let (core, mem) = run_block(big_code, &cfg);
        assert!(mem.stats(0).l1i_misses > 1000);
        assert!(core.stalls().icache > 0.0);
    }

    #[test]
    fn small_rob_hurts_mlp() {
        let small = DesignPoint::Smallest.config(); // ROB 32
        let big = DesignPoint::Biggest.config(); // ROB 288
        let region = rppm_trace::Region::new(0, 4 << 20);
        let mk = || {
            BlockSpec::new(50_000, 8)
                .loads(0.2)
                .deps(0.2, 8.0)
                .addr(rppm_trace::AddressPattern::stream(region), 1.0)
        };
        let (c_small, _) = run_block(mk(), &small);
        let (c_big, _) = run_block(mk(), &big);
        // Same DRAM miss count, but the small window overlaps fewer misses:
        // higher stall per miss.
        let per_miss_small = c_small.stalls().mem_dram / c_small.counters().dram_loads as f64;
        let per_miss_big = c_big.stalls().mem_dram / c_big.counters().dram_loads.max(1) as f64;
        assert!(
            per_miss_small > per_miss_big,
            "small {per_miss_small} vs big {per_miss_big}"
        );
    }

    #[test]
    fn resume_and_sync_accounting() {
        let cfg = DesignPoint::Base.config();
        let mut core = CoreModel::new(&cfg, 0.0);
        core.resume_at(1000.0);
        assert_eq!(core.time(), 1000.0);
        assert_eq!(core.stalls().sync, 1000.0);
        core.charge_sync_overhead(40.0);
        assert_eq!(core.time(), 1040.0);
        assert_eq!(core.stalls().sync, 1040.0);
        // Resuming to the past is a no-op.
        core.resume_at(10.0);
        assert_eq!(core.time(), 1040.0);
    }
}

//! Instruction-grain out-of-order core timing model.
//!
//! The model tracks, per dynamic micro-op: its dispatch cycle (bounded by
//! front-end width, front-end stalls after mispredictions and I-cache
//! misses, and ROB availability), its ready time (register dependences via a
//! completion ring buffer), its execution start (functional-unit port
//! contention, MSHR availability for loads) and its completion. Retirement
//! is in order; dispatch stalls when the ROB is full, so a long-latency load
//! at the ROB head naturally blocks the window while independent misses
//! underneath it overlap — the mechanism behind memory-level parallelism.
//!
//! This is the same modeling altitude as the "instruction-window centric"
//! core models validated in Carlson et al. (TACO 2014), which the paper uses
//! as its golden reference.
//!
//! # Profile-driven dispatch
//!
//! The catalog-wide self-profile (`rppm sim-profile`, committed under
//! `results/`) shows ~55% of dynamic ops are compute (IntAlu/Mul/Div,
//! FpAdd/Mul/Div) and the dominant dynamic op pairs are compute→compute.
//! [`CoreModel::run_ops`] exploits both: compute ops take a table-driven
//! fast path ahead of the memory/branch match, and a compute op followed by
//! a same-code-line compute op is *fused* into one dispatch action that
//! skips the front-end re-check (provably a no-op for the second member —
//! see the inline proof). The retirement bookkeeping (ROB) runs on a flat
//! ring buffer instead of a `VecDeque`. None of this changes any arithmetic:
//! every micro-op sees the exact f64 operation sequence of the naive
//! dispatch in [`crate::reference`], which differential tests pin
//! bit-identical.

use crate::bpred::TournamentPredictor;
use crate::mem::{MemorySystem, ServiceLevel};
use rppm_trace::{CpiStack, MachineConfig, MicroOp, OpClass};

/// Completion-ring size of the naive reference core: large enough for the
/// maximum register dependence distance, which is bounded by `u16::MAX`.
///
/// The optimized [`CoreModel`] sizes its ring at `rob_size + 1` rounded up
/// to a power of two instead (a few KB that stay L1-resident, against 512 KB
/// per thread here). That is bit-identical because a dependence on an op
/// more than `rob_size` back can never raise the ready time: by then the
/// producer has been popped from the ROB (S3 pops exactly when the window is
/// full, i.e. on every dispatch once `op_index >= rob_size`), and the pop
/// already advanced `cycle` to at least its retire time — which is `>=` its
/// completion time — so `ready.max(completion)` is a no-op. Distances that
/// the small ring cannot index are therefore skipped outright; the
/// differential suite pins the equivalence against this reference.
pub(crate) const RING: usize = 1 << 16;

/// Number of compute (non-memory, non-branch) op classes; their dense
/// [`OpClass::index`] values are `0..NUM_COMPUTE_CLASSES`.
pub(crate) const NUM_COMPUTE_CLASSES: usize = 6;

/// Per-class execution latency for the compute fast path, as f64 (must
/// equal `OpClass::latency() as f64`; checked by a unit test).
const COMPUTE_LAT: [f64; NUM_COMPUTE_CLASSES] = [1.0, 3.0, 18.0, 3.0, 4.0, 15.0];
/// Per-class issue-port pool for the compute fast path (mirrors
/// [`OpClass::port_pool`]).
const COMPUTE_POOL: [usize; NUM_COMPUTE_CLASSES] = [0, 1, 1, 2, 2, 2];
/// Per-class pipelining for the compute fast path (mirrors
/// [`OpClass::pipelined`]; divides are unpipelined).
const COMPUTE_PIPELINED: [bool; NUM_COMPUTE_CLASSES] = [true, true, false, true, true, false];

/// Stall-attribution component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cause {
    Base,
    Branch,
    ICache,
    MemL2,
    MemL3,
    MemDram,
}

pub(crate) fn attribute(stalls: &mut CpiStack, cause: Cause, delta: f64) {
    match cause {
        Cause::Base => stalls.base += delta,
        Cause::Branch => stalls.branch += delta,
        Cause::ICache => stalls.icache += delta,
        Cause::MemL2 => stalls.mem_l2 += delta,
        Cause::MemL3 => stalls.mem_l3 += delta,
        Cause::MemDram => stalls.mem_dram += delta,
    }
}

/// Per-thread execution counters reported by the core model.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoreCounters {
    /// Micro-ops executed.
    pub ops: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Loads serviced by DRAM.
    pub dram_loads: u64,
}

/// Out-of-order core timing state for one thread.
#[derive(Debug)]
pub struct CoreModel {
    // Configuration scalars.
    width: u32,
    rob_size: usize,
    frontend_depth: f64,
    mshrs: usize,
    ports: [u8; rppm_trace::op::NUM_PORT_POOLS],

    // Timing state.
    cycle: f64,
    dispatched: u32,
    fe_stall_until: f64,
    fe_cause: Cause,
    /// Completion-time ring of the last `ring_mask + 1` ops (see the note on
    /// [`RING`] for why `rob_size + 1` entries suffice bit-identically).
    completions: Vec<f64>,
    ring_mask: usize,
    op_index: u64,
    /// Retirement window as a flat ring: `rob[rob_head..rob_head+rob_len]`
    /// (mod `rob_size`) are the in-flight `(retire_time, cause)` entries in
    /// dispatch order. Capacity is exactly `rob_size`, so "full" is
    /// `rob_len == rob_size`.
    rob: Vec<(f64, Cause)>,
    rob_head: usize,
    rob_len: usize,
    last_retire: f64,
    fu_free: [[f64; 8]; rppm_trace::op::NUM_PORT_POOLS],
    /// Ring of the last `mshrs` miss completion times (program order).
    mshr: Vec<f64>,
    miss_index: u64,
    last_code_line: u64,

    predictor: TournamentPredictor,

    // Accounting.
    stalls: CpiStack,
    overhead: f64,
    counters: CoreCounters,
    /// Superinstruction pairs retired in a single dispatch action.
    fused: u64,
}

impl CoreModel {
    /// Creates a core in its reset state, with the thread's clock at
    /// `start_time`.
    pub fn new(config: &MachineConfig, start_time: f64) -> Self {
        let mut ports = [1u8; rppm_trace::op::NUM_PORT_POOLS];
        for class in OpClass::ALL {
            ports[class.port_pool()] = config.ports_for(class).clamp(1, 8) as u8;
        }
        let ring = (config.rob_size as usize + 1).next_power_of_two().min(RING);
        CoreModel {
            width: config.dispatch_width,
            rob_size: config.rob_size as usize,
            frontend_depth: config.frontend_depth as f64,
            mshrs: config.mshrs as usize,
            ports,
            cycle: start_time,
            dispatched: 0,
            fe_stall_until: 0.0,
            fe_cause: Cause::Branch,
            completions: vec![0.0; ring],
            ring_mask: ring - 1,
            op_index: 0,
            rob: vec![(0.0, Cause::Base); config.rob_size as usize],
            rob_head: 0,
            rob_len: 0,
            last_retire: start_time,
            fu_free: [[0.0; 8]; rppm_trace::op::NUM_PORT_POOLS],
            mshr: vec![0.0; config.mshrs as usize],
            miss_index: 0,
            last_code_line: u64::MAX,
            predictor: TournamentPredictor::new(&config.bpred),
            stalls: CpiStack::default(),
            overhead: 0.0,
            counters: CoreCounters::default(),
            fused: 0,
        }
    }

    /// Current thread-local time (dispatch clock) in cycles.
    pub fn time(&self) -> f64 {
        self.cycle
    }

    /// Time at which every in-flight op will have retired.
    pub fn drain_time(&self) -> f64 {
        self.cycle.max(self.last_retire)
    }

    /// Sets the thread's initial clock (thread creation), without charging
    /// any component.
    pub fn set_start_time(&mut self, t: f64) {
        self.cycle = t;
        self.last_retire = t;
    }

    /// Moves the clock forward to `t` (synchronization resume), charging the
    /// jump to the sync component.
    pub fn resume_at(&mut self, t: f64) {
        if t > self.cycle {
            self.stalls.sync += t - self.cycle;
            self.cycle = t;
            self.dispatched = 0;
        }
    }

    /// Charges `cycles` of synchronization-library overhead and advances the
    /// clock past them. Overhead is *executed* time (the thread is active),
    /// but the paper accounts it to the sync component.
    pub fn charge_sync_overhead(&mut self, cycles: f64) {
        self.stalls.sync += cycles;
        self.overhead += cycles;
        self.cycle += cycles;
        self.dispatched = 0;
    }

    /// Total synchronization-library overhead charged (a subset of the sync
    /// component during which the thread was active, not blocked).
    pub fn sync_overhead_charged(&self) -> f64 {
        self.overhead
    }

    /// Instruction fetch and front-end stalls: charge an I-cache refill when
    /// execution enters a new code line (S1), then apply any pending
    /// front-end stall — misprediction redirect or I-cache refill (S2).
    #[inline(always)]
    fn fetch(&mut self, op: &MicroOp, mem: &mut MemorySystem, core_id: usize) {
        if op.code_line != self.last_code_line {
            self.last_code_line = op.code_line;
            let stall = mem.icache_access(core_id, op.code_line);
            if stall > 0.0 {
                let until = self.cycle + stall;
                if until > self.fe_stall_until {
                    self.fe_stall_until = until;
                    self.fe_cause = Cause::ICache;
                }
            }
        }
        if self.fe_stall_until > self.cycle {
            attribute(
                &mut self.stalls,
                self.fe_cause,
                self.fe_stall_until - self.cycle,
            );
            self.cycle = self.fe_stall_until;
            self.dispatched = 0;
        }
    }

    /// Window entry: ROB availability (S3), dispatch-width throttle (S4) and
    /// register readiness (S5). Returns the op's ready time.
    #[inline(always)]
    fn dispatch_ready(&mut self, op: &MicroOp) -> f64 {
        if self.rob_len == self.rob_size {
            let (retire, cause) = self.rob[self.rob_head];
            self.rob_head += 1;
            if self.rob_head == self.rob_size {
                self.rob_head = 0;
            }
            self.rob_len -= 1;
            if retire > self.cycle {
                attribute(&mut self.stalls, cause, retire - self.cycle);
                self.cycle = retire;
                self.dispatched = 0;
            }
        }

        if self.dispatched >= self.width {
            self.cycle += 1.0;
            self.dispatched = 0;
        }
        let dispatch_time = self.cycle;
        self.dispatched += 1;

        // Distances beyond `ring_mask` (>= rob_size + 1) are provably
        // no-ops — the producer retired before the S3 pop above and `cycle`
        // already covers its completion (see the note on [`RING`]).
        let mut ready = dispatch_time;
        let d1 = op.src1 as usize;
        if d1 != 0 && d1 <= self.ring_mask && (d1 as u64) <= self.op_index {
            let idx = ((self.op_index as usize).wrapping_sub(d1)) & self.ring_mask;
            ready = ready.max(self.completions[idx]);
        }
        let d2 = op.src2 as usize;
        if d2 != 0 && d2 <= self.ring_mask && (d2 as u64) <= self.op_index {
            let idx = ((self.op_index as usize).wrapping_sub(d2)) & self.ring_mask;
            ready = ready.max(self.completions[idx]);
        }
        ready
    }

    /// Least-loaded issue port in `pool` (S6).
    #[inline(always)]
    fn pick_port(&self, pool: usize) -> usize {
        let nports = self.ports[pool] as usize;
        let fu = &self.fu_free[pool];
        let mut port = 0;
        for p in 1..nports {
            if fu[p] < fu[port] {
                port = p;
            }
        }
        port
    }

    /// Retirement bookkeeping shared by every class (S8–S9).
    #[inline(always)]
    fn retire(&mut self, complete: f64, cause: Cause) {
        let retire = complete.max(self.last_retire);
        self.last_retire = retire;
        let mut tail = self.rob_head + self.rob_len;
        if tail >= self.rob_size {
            tail -= self.rob_size;
        }
        self.rob[tail] = (retire, cause);
        self.rob_len += 1;
        self.completions[(self.op_index as usize) & self.ring_mask] = complete;
        self.op_index += 1;
    }

    /// Hot path: a compute op (class index < [`NUM_COMPUTE_CLASSES`]) with
    /// its latency/pool/pipelining taken from the const tables. Touches
    /// neither the data memory system nor the predictor.
    #[inline(always)]
    fn exec_compute(&mut self, op: &MicroOp, c: usize) {
        self.counters.ops += 1;
        let ready = self.dispatch_ready(op);
        let pool = COMPUTE_POOL[c];
        let port = self.pick_port(pool);
        let fu = &mut self.fu_free[pool];
        let issue = ready.max(fu[port]);
        let complete = issue + COMPUTE_LAT[c];
        fu[port] = if COMPUTE_PIPELINED[c] {
            issue + 1.0
        } else {
            complete
        };
        self.retire(complete, Cause::Base);
    }

    /// Cold path: loads, stores and branches (plus a general fallback for
    /// compute classes so [`CoreModel::process`] stays total).
    fn exec_other(&mut self, op: &MicroOp, mem: &mut MemorySystem, core_id: usize) {
        self.counters.ops += 1;
        let ready = self.dispatch_ready(op);
        let class = op.class;
        let pool = class.port_pool();
        let port = self.pick_port(pool);
        let issue = ready.max(self.fu_free[pool][port]);
        let mut start = issue;

        let (complete, cause) = match class {
            OpClass::Load => {
                self.counters.loads += 1;
                // MSHR limit: with `mshrs` miss registers allocated in
                // program order, miss k cannot start before miss k−mshrs
                // completed (a k-server queue). The wait happens in the load
                // queue — it does NOT hold the issue port (real LSUs issue
                // around a full miss queue).
                if self.miss_index >= self.mshrs as u64 {
                    let gate = self.mshr[(self.miss_index as usize) % self.mshrs];
                    start = start.max(gate);
                }
                let (lat, level) = mem.access(core_id, op.line, false);
                let complete = start + lat;
                let cause = match level {
                    ServiceLevel::L1 => Cause::Base,
                    ServiceLevel::L2 => Cause::MemL2,
                    ServiceLevel::L3 | ServiceLevel::Remote => Cause::MemL3,
                    ServiceLevel::Dram => {
                        self.counters.dram_loads += 1;
                        self.mshr[(self.miss_index as usize) % self.mshrs] = complete;
                        self.miss_index += 1;
                        Cause::MemDram
                    }
                };
                (complete, cause)
            }
            OpClass::Store => {
                self.counters.stores += 1;
                // Stores retire through the store buffer; coherence state is
                // updated now, latency is hidden.
                let _ = mem.access(core_id, op.line, true);
                (start + 1.0, Cause::Base)
            }
            OpClass::Branch => {
                self.counters.branches += 1;
                let miss = self.predictor.predict_and_update(op.site, op.taken);
                let complete = start + class.latency() as f64;
                if miss {
                    self.counters.mispredicts += 1;
                    // Redirect: front-end refills after the branch resolves.
                    let until = complete + self.frontend_depth;
                    if until > self.fe_stall_until {
                        self.fe_stall_until = until;
                        self.fe_cause = Cause::Branch;
                    }
                }
                (complete, Cause::Base)
            }
            _ => (start + class.latency() as f64, Cause::Base),
        };

        self.fu_free[pool][port] = if class.pipelined() {
            issue + 1.0
        } else {
            complete
        };
        self.retire(complete, cause);
    }

    /// Processes one micro-op, advancing the thread's timing state.
    pub fn process(&mut self, op: &MicroOp, mem: &mut MemorySystem, core_id: usize) {
        self.fetch(op, mem, core_id);
        let c = op.class.index();
        if c < NUM_COMPUTE_CLASSES {
            self.exec_compute(op, c);
        } else {
            self.exec_other(op, mem, core_id);
        }
    }

    /// Processes a prefix of `ops`, stopping after the first op that pushes
    /// the clock past `limit`. Returns `(ops_used, over_limit)` — exactly
    /// the contract of a per-op [`CoreModel::process`] loop with a
    /// `time() > limit` check after each op, but dispatched hot-first and
    /// with superinstruction fusion of compute pairs.
    ///
    /// Fusion soundness: the second member of a fused pair skips
    /// `CoreModel::fetch`. That is a provable no-op there — (a) its
    /// code line equals the first member's (the fusion condition), which the
    /// first member just stored in `last_code_line`, so the I-cache check
    /// would not fire; and (b) `fe_stall_until <= cycle` holds after the
    /// first member's fetch (which jumped the clock past any pending stall)
    /// because a compute op never raises `fe_stall_until` and the clock only
    /// moves forward. Timing is therefore bit-identical to the naive loop.
    pub fn run_ops(
        &mut self,
        ops: &[MicroOp],
        mem: &mut MemorySystem,
        core_id: usize,
        limit: f64,
    ) -> (usize, bool) {
        let n = ops.len();
        let mut i = 0;
        while i < n {
            let op = &ops[i];
            let c = op.class.index();
            i += 1;
            if c < NUM_COMPUTE_CLASSES {
                self.fetch(op, mem, core_id);
                self.exec_compute(op, c);
                if self.cycle > limit {
                    return (i, true);
                }
                // Superinstruction: fuse a same-code-line compute successor
                // into this dispatch action, skipping its front-end re-check
                // (see the soundness note above). The quantum check between
                // the members already happened, so the fused pair never
                // overshoots the scheduling contract.
                if i < n {
                    let op2 = &ops[i];
                    let c2 = op2.class.index();
                    if c2 < NUM_COMPUTE_CLASSES && op2.code_line == op.code_line {
                        i += 1;
                        self.fused += 1;
                        self.exec_compute(op2, c2);
                        if self.cycle > limit {
                            return (i, true);
                        }
                    }
                }
            } else {
                self.fetch(op, mem, core_id);
                self.exec_other(op, mem, core_id);
                if self.cycle > limit {
                    return (i, true);
                }
            }
        }
        (n, false)
    }

    /// Finishes the thread: drains the ROB and returns the final time.
    pub fn finish(&mut self) -> f64 {
        let t = self.drain_time();
        self.cycle = t;
        t
    }

    /// Stall attribution accumulated so far. The `base` field is *not* yet
    /// populated (it is the residual, computed by the engine as active time
    /// minus attributed stalls).
    pub fn stalls(&self) -> &CpiStack {
        &self.stalls
    }

    /// Execution counters.
    pub fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// Dispatch statistics: `(dispatch_actions, fused_pairs)`. A fused
    /// superinstruction pair retires two ops in one dispatch action, so
    /// `dispatch_actions = ops - fused_pairs`.
    pub fn dispatch_stats(&self) -> (u64, u64) {
        (self.counters.ops - self.fused, self.fused)
    }

    /// Observed branch misprediction rate.
    pub fn branch_miss_rate(&self) -> f64 {
        self.predictor.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BlockSpec, DesignPoint};

    fn run_block(spec: BlockSpec, config: &rppm_trace::MachineConfig) -> (CoreModel, MemorySystem) {
        let mut mem = MemorySystem::new(config);
        let mut core = CoreModel::new(config, 0.0);
        for op in spec.expand() {
            core.process(&op, &mut mem, 0);
        }
        core.finish();
        (core, mem)
    }

    #[test]
    fn fast_path_tables_match_opclass() {
        for c in 0..NUM_COMPUTE_CLASSES {
            let class = OpClass::ALL[c];
            assert!(!class.is_mem() && class != OpClass::Branch);
            assert_eq!(COMPUTE_LAT[c], class.latency() as f64, "{class}");
            assert_eq!(COMPUTE_POOL[c], class.port_pool(), "{class}");
            assert_eq!(COMPUTE_PIPELINED[c], class.pipelined(), "{class}");
        }
        // Everything past the compute prefix is memory or branch.
        for class in &OpClass::ALL[NUM_COMPUTE_CLASSES..] {
            assert!(class.is_mem() || *class == OpClass::Branch);
        }
    }

    #[test]
    fn run_ops_matches_per_op_process() {
        let cfg = DesignPoint::Base.config();
        let spec = BlockSpec::new(20_000, 11)
            .loads(0.25)
            .stores(0.1)
            .branches(0.1)
            .deps(0.3, 4.0);
        let ops: Vec<_> = spec.expand();

        let mut mem_a = MemorySystem::new(&cfg);
        let mut a = CoreModel::new(&cfg, 0.0);
        for op in &ops {
            a.process(op, &mut mem_a, 0);
        }

        let mut mem_b = MemorySystem::new(&cfg);
        let mut b = CoreModel::new(&cfg, 0.0);
        let (used, over) = b.run_ops(&ops, &mut mem_b, 0, f64::INFINITY);
        assert_eq!(used, ops.len());
        assert!(!over);

        assert_eq!(a.time().to_bits(), b.time().to_bits());
        assert_eq!(a.drain_time().to_bits(), b.drain_time().to_bits());
        assert_eq!(a.counters().mispredicts, b.counters().mispredicts);
        assert_eq!(a.stalls().mem_dram.to_bits(), b.stalls().mem_dram.to_bits());
        let (dispatches, fused) = b.dispatch_stats();
        assert!(fused > 0, "compute-heavy block must fuse pairs");
        assert_eq!(dispatches + fused, b.counters().ops);
    }

    #[test]
    fn run_ops_respects_limit_per_op() {
        let cfg = DesignPoint::Base.config();
        let ops: Vec<_> = BlockSpec::new(5_000, 3).deps(0.3, 4.0).expand();
        // Replay with a limit: the batched loop must stop exactly where the
        // naive per-op loop stops.
        let mut mem_a = MemorySystem::new(&cfg);
        let mut a = CoreModel::new(&cfg, 0.0);
        let limit = 200.0;
        let mut naive_used = 0;
        for op in &ops {
            a.process(op, &mut mem_a, 0);
            naive_used += 1;
            if a.time() > limit {
                break;
            }
        }
        let mut mem_b = MemorySystem::new(&cfg);
        let mut b = CoreModel::new(&cfg, 0.0);
        let (used, over) = b.run_ops(&ops, &mut mem_b, 0, limit);
        assert_eq!(used, naive_used);
        assert!(over);
        assert_eq!(a.time().to_bits(), b.time().to_bits());
    }

    #[test]
    fn ideal_ilp_reaches_dispatch_width() {
        let cfg = DesignPoint::Base.config();
        // Independent integer ops, no memory, no branches.
        let spec = BlockSpec::new(100_000, 1).deps(0.0, 1.0).deps2(0.0);
        let (core, _) = run_block(spec, &cfg);
        let ipc = core.counters().ops as f64 / core.drain_time();
        assert!(
            (ipc - cfg.dispatch_width as f64).abs() < 0.2,
            "ipc {ipc} vs width {}",
            cfg.dispatch_width
        );
    }

    #[test]
    fn serial_chain_runs_at_one_over_latency() {
        let cfg = DesignPoint::Base.config();
        // Every op depends on the previous one: IPC ~ 1 (IntAlu latency 1).
        let spec = BlockSpec::new(50_000, 2).deps(1.0, 1.0).deps2(0.0);
        let (core, _) = run_block(spec, &cfg);
        let ipc = core.counters().ops as f64 / core.drain_time();
        assert!(ipc < 1.25, "chain ipc {ipc}");
    }

    #[test]
    fn fu_contention_limits_throughput() {
        let cfg = DesignPoint::Base.config(); // 2 FP pipes at width 4
        let spec = BlockSpec::new(50_000, 3)
            .fp(1.0, 0.0)
            .deps(0.0, 1.0)
            .deps2(0.0);
        let (core, _) = run_block(spec, &cfg);
        let ipc = core.counters().ops as f64 / core.drain_time();
        assert!(ipc < 2.3, "fp-bound ipc {ipc} must respect 2 FP ports");
    }

    #[test]
    fn dram_misses_dominate_streaming() {
        let cfg = DesignPoint::Base.config();
        let region = rppm_trace::Region::new(0, 4 << 20); // far beyond LLC
        let spec = BlockSpec::new(100_000, 4)
            .loads(0.3)
            .addr(rppm_trace::AddressPattern::stream(region), 1.0);
        let (core, _) = run_block(spec, &cfg);
        assert!(core.counters().dram_loads > 1000);
        assert!(core.stalls().mem_dram > 0.0);
        let cpi = core.drain_time() / core.counters().ops as f64;
        assert!(cpi > 0.5, "memory-bound cpi {cpi}");
    }

    #[test]
    fn mlp_overlaps_independent_misses() {
        let cfg = DesignPoint::Base.config();
        let region = rppm_trace::Region::new(0, 4 << 20);
        // Independent streaming loads: misses overlap.
        let indep = BlockSpec::new(50_000, 5)
            .loads(0.3)
            .deps(0.0, 1.0)
            .addr(rppm_trace::AddressPattern::stream(region), 1.0);
        // Pointer-chasing loads: serialized misses.
        let chained = BlockSpec::new(50_000, 5)
            .loads(0.3)
            .deps(0.0, 1.0)
            .load_chain(1.0)
            .addr(rppm_trace::AddressPattern::stream(region), 1.0);
        let (c1, _) = run_block(indep, &cfg);
        let (c2, _) = run_block(chained, &cfg);
        let t1 = c1.drain_time();
        let t2 = c2.drain_time();
        assert!(
            t2 > t1 * 2.0,
            "chained ({t2}) should be much slower than independent ({t1})"
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let cfg = DesignPoint::Base.config();
        let predictable = BlockSpec::new(50_000, 6)
            .branches(0.2)
            .branch_pattern(rppm_trace::BranchPattern::loop_every(64));
        let random = BlockSpec::new(50_000, 6)
            .branches(0.2)
            .branch_pattern(rppm_trace::BranchPattern::bernoulli(0.5));
        let (c1, _) = run_block(predictable, &cfg);
        let (c2, _) = run_block(random, &cfg);
        assert!(c2.counters().mispredicts > 10 * c1.counters().mispredicts.max(1));
        assert!(c2.drain_time() > c1.drain_time() * 1.3);
        assert!(c2.stalls().branch > c1.stalls().branch);
    }

    #[test]
    fn icache_misses_from_large_code_footprint() {
        let cfg = DesignPoint::Base.config();
        // 32 KB L1I = 512 lines; a 4096-line loop body thrashes it.
        let big_code = BlockSpec::new(200_000, 7).code_footprint(4096);
        let (core, mem) = run_block(big_code, &cfg);
        assert!(mem.stats(0).l1i_misses > 1000);
        assert!(core.stalls().icache > 0.0);
    }

    #[test]
    fn small_rob_hurts_mlp() {
        let small = DesignPoint::Smallest.config(); // ROB 32
        let big = DesignPoint::Biggest.config(); // ROB 288
        let region = rppm_trace::Region::new(0, 4 << 20);
        let mk = || {
            BlockSpec::new(50_000, 8)
                .loads(0.2)
                .deps(0.2, 8.0)
                .addr(rppm_trace::AddressPattern::stream(region), 1.0)
        };
        let (c_small, _) = run_block(mk(), &small);
        let (c_big, _) = run_block(mk(), &big);
        // Same DRAM miss count, but the small window overlaps fewer misses:
        // higher stall per miss.
        let per_miss_small = c_small.stalls().mem_dram / c_small.counters().dram_loads as f64;
        let per_miss_big = c_big.stalls().mem_dram / c_big.counters().dram_loads.max(1) as f64;
        assert!(
            per_miss_small > per_miss_big,
            "small {per_miss_small} vs big {per_miss_big}"
        );
    }

    #[test]
    fn resume_and_sync_accounting() {
        let cfg = DesignPoint::Base.config();
        let mut core = CoreModel::new(&cfg, 0.0);
        core.resume_at(1000.0);
        assert_eq!(core.time(), 1000.0);
        assert_eq!(core.stalls().sync, 1000.0);
        core.charge_sync_overhead(40.0);
        assert_eq!(core.time(), 1040.0);
        assert_eq!(core.stalls().sync, 1040.0);
        // Resuming to the past is a no-op.
        core.resume_at(10.0);
        assert_eq!(core.time(), 1040.0);
    }
}

//! Simulator self-profiling: cheap dynamic counters behind a zero-cost hook.
//!
//! The golden simulator is itself an interpreter — a dispatch loop over
//! dynamic micro-ops — so it profits from the same profile-guided
//! optimization playbook as any bytecode VM: count what actually executes,
//! then reorder the dispatch hot-first and fuse the dominant op sequences
//! into superinstructions. This module is the measurement half of that loop.
//!
//! A [`SimProbe`] is threaded through the engine's run loop. The default
//! [`NoProbe`] has empty inline methods, so `simulate()` monomorphizes to
//! exactly the unprobed code — profiling is zero-cost when off. A
//! [`ProfileCollector`] records per-[`OpClass`] execution frequencies, the
//! dynamic op-*pair* histogram (the superinstruction candidates), the
//! synchronization-event mix, and per-thread dispatch-batch shapes, and
//! folds them into a [`SimProfile`] that serializes to deterministic JSON —
//! committed under `results/` so the optimization stays data-driven and
//! regression-visible.

use rppm_trace::op::NUM_OP_CLASSES;
use rppm_trace::{MicroOp, OpClass, SyncOp};

/// Observation hook for the simulation engine's dispatch loop.
///
/// Every consumed op batch and synchronization event is reported. All
/// methods have empty default bodies; [`NoProbe`] relies on them so the
/// probed engine compiles down to the unprobed one.
pub trait SimProbe {
    /// Called after the engine dispatched `ops` (a consumed prefix of a
    /// trace block) on `thread`.
    #[inline]
    fn on_ops(&mut self, thread: usize, ops: &[MicroOp]) {
        let _ = (thread, ops);
    }

    /// Called when `thread` consumes the synchronization event `op`
    /// (before it blocks or resumes other threads).
    #[inline]
    fn on_sync(&mut self, thread: usize, op: &SyncOp) {
        let _ = (thread, op);
    }

    /// Called once per thread after the whole program finished, with the
    /// core's dispatch statistics: total dispatch actions taken and how
    /// many of them were fused superinstruction pairs.
    #[inline]
    fn on_thread_finish(&mut self, thread: usize, dispatches: u64, fused_pairs: u64) {
        let _ = (thread, dispatches, fused_pairs);
    }
}

/// The disabled probe: every hook is an empty `#[inline]` default, so the
/// engine generic over it is exactly as fast as one with no hooks at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl SimProbe for NoProbe {}

/// Dynamic synchronization-event mix (counts by [`SyncOp`] variant).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncMix {
    /// Thread creations.
    pub creates: u64,
    /// Thread joins.
    pub joins: u64,
    /// Plain barrier waits.
    pub barriers: u64,
    /// Condition-variable-implemented barrier waits.
    pub cond_barriers: u64,
    /// Mutex acquisitions.
    pub locks: u64,
    /// Mutex releases.
    pub unlocks: u64,
    /// Queue produce events.
    pub produces: u64,
    /// Queue consume events.
    pub consumes: u64,
}

impl SyncMix {
    /// Total synchronization events.
    pub fn total(&self) -> u64 {
        self.creates
            + self.joins
            + self.barriers
            + self.cond_barriers
            + self.locks
            + self.unlocks
            + self.produces
            + self.consumes
    }

    fn add(&mut self, other: &SyncMix) {
        self.creates += other.creates;
        self.joins += other.joins;
        self.barriers += other.barriers;
        self.cond_barriers += other.cond_barriers;
        self.locks += other.locks;
        self.unlocks += other.unlocks;
        self.produces += other.produces;
        self.consumes += other.consumes;
    }
}

/// Per-thread dispatch-batch shape statistics.
///
/// A *run* is one uninterrupted op batch handed to the core model (a
/// consumed prefix of a zero-copy trace block, bounded by block ends, sync
/// events and quantum expiry) — exactly the unit the superinstruction
/// fuser works within.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ThreadShape {
    /// Micro-ops dispatched on this thread.
    pub ops: u64,
    /// Dispatch batches (runs) observed.
    pub runs: u64,
    /// Longest single run in ops.
    pub longest_run: u64,
    /// Synchronization events consumed.
    pub syncs: u64,
}

/// Aggregated self-profile of one (or many merged) simulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimProfile {
    /// Executed micro-ops per [`OpClass`] (indexed by [`OpClass::index`]).
    pub op_freq: [u64; NUM_OP_CLASSES],
    /// Dynamic op-pair histogram: `pairs[a][b]` counts op of class `b`
    /// immediately following class `a` on the same thread. Adjacency is
    /// tracked across dispatch batches and reset at synchronization events
    /// (a sync breaks any fusion opportunity).
    pub pairs: [[u64; NUM_OP_CLASSES]; NUM_OP_CLASSES],
    /// Synchronization-event mix.
    pub sync: SyncMix,
    /// Per-thread dispatch-batch shapes.
    pub threads: Vec<ThreadShape>,
    /// Dispatch actions taken by the cores (a fused pair is one action).
    pub dispatches: u64,
    /// Superinstruction pairs handled in a single dispatch.
    pub fused_pairs: u64,
}

impl Default for SimProfile {
    fn default() -> Self {
        SimProfile {
            op_freq: [0; NUM_OP_CLASSES],
            pairs: [[0; NUM_OP_CLASSES]; NUM_OP_CLASSES],
            sync: SyncMix::default(),
            threads: Vec::new(),
            dispatches: 0,
            fused_pairs: 0,
        }
    }
}

impl SimProfile {
    /// Total executed micro-ops.
    pub fn total_ops(&self) -> u64 {
        self.op_freq.iter().sum()
    }

    /// Fraction of ops retired through a fused pair dispatch.
    pub fn fused_fraction(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            (2 * self.fused_pairs) as f64 / ops as f64
        }
    }

    /// Dispatch reduction achieved by fusion: `1 - dispatches / ops`.
    pub fn dispatch_reduction(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            1.0 - self.dispatches as f64 / ops as f64
        }
    }

    /// The `n` most frequent dynamic op pairs, most frequent first.
    /// Zero-count pairs are omitted; ties break in class-index order so the
    /// listing is deterministic.
    pub fn top_pairs(&self, n: usize) -> Vec<(OpClass, OpClass, u64)> {
        let mut v: Vec<(OpClass, OpClass, u64)> = Vec::new();
        for (a, row) in self.pairs.iter().enumerate() {
            for (b, &count) in row.iter().enumerate() {
                if count > 0 {
                    v.push((OpClass::ALL[a], OpClass::ALL[b], count));
                }
            }
        }
        v.sort_by(|x, y| {
            y.2.cmp(&x.2)
                .then(x.0.index().cmp(&y.0.index()))
                .then(x.1.index().cmp(&y.1.index()))
        });
        v.truncate(n);
        v
    }

    /// Folds another profile into this one (catalog-wide aggregation).
    /// Thread shapes merge index-wise.
    pub fn merge(&mut self, other: &SimProfile) {
        for (a, b) in self.op_freq.iter_mut().zip(other.op_freq.iter()) {
            *a += b;
        }
        for (ra, rb) in self.pairs.iter_mut().zip(other.pairs.iter()) {
            for (a, b) in ra.iter_mut().zip(rb.iter()) {
                *a += b;
            }
        }
        self.sync.add(&other.sync);
        if self.threads.len() < other.threads.len() {
            self.threads
                .resize(other.threads.len(), ThreadShape::default());
        }
        for (t, o) in self.threads.iter_mut().zip(other.threads.iter()) {
            t.ops += o.ops;
            t.runs += o.runs;
            t.longest_run = t.longest_run.max(o.longest_run);
            t.syncs += o.syncs;
        }
        self.dispatches += other.dispatches;
        self.fused_pairs += other.fused_pairs;
    }

    /// Serializes the profile to a deterministic JSON object (stable key
    /// order, zero-count pairs omitted).
    pub fn to_json_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(s, "\"ops\":{}", self.total_ops());
        let _ = write!(s, ",\"dispatches\":{}", self.dispatches);
        let _ = write!(s, ",\"fused_pairs\":{}", self.fused_pairs);
        s.push_str(",\"op_freq\":{");
        for (k, class) in OpClass::ALL.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{class}\":{}", self.op_freq[k]);
        }
        s.push('}');
        s.push_str(",\"pairs\":[");
        let mut first = true;
        for (a, row) in self.pairs.iter().enumerate() {
            for (b, &count) in row.iter().enumerate() {
                if count > 0 {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let _ = write!(
                        s,
                        "{{\"first\":\"{}\",\"second\":\"{}\",\"count\":{count}}}",
                        OpClass::ALL[a],
                        OpClass::ALL[b]
                    );
                }
            }
        }
        s.push(']');
        let m = &self.sync;
        let _ = write!(
            s,
            ",\"sync\":{{\"creates\":{},\"joins\":{},\"barriers\":{},\"cond_barriers\":{},\
             \"locks\":{},\"unlocks\":{},\"produces\":{},\"consumes\":{}}}",
            m.creates,
            m.joins,
            m.barriers,
            m.cond_barriers,
            m.locks,
            m.unlocks,
            m.produces,
            m.consumes
        );
        s.push_str(",\"threads\":[");
        for (k, t) in self.threads.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"ops\":{},\"runs\":{},\"longest_run\":{},\"syncs\":{}}}",
                t.ops, t.runs, t.longest_run, t.syncs
            );
        }
        s.push_str("]}");
        s
    }
}

/// A [`SimProbe`] that accumulates a [`SimProfile`].
#[derive(Debug, Default)]
pub struct ProfileCollector {
    profile: SimProfile,
    /// Class index of the previous op on each thread (`NUM_OP_CLASSES` =
    /// none: start of thread or just past a sync event).
    last: Vec<u8>,
}

impl ProfileCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn shape(&mut self, thread: usize) -> &mut ThreadShape {
        if self.profile.threads.len() <= thread {
            self.profile
                .threads
                .resize(thread + 1, ThreadShape::default());
            self.last.resize(thread + 1, NUM_OP_CLASSES as u8);
        }
        &mut self.profile.threads[thread]
    }

    /// Consumes the collector, returning the accumulated profile.
    pub fn into_profile(self) -> SimProfile {
        self.profile
    }
}

impl SimProbe for ProfileCollector {
    fn on_ops(&mut self, thread: usize, ops: &[MicroOp]) {
        if ops.is_empty() {
            return;
        }
        let shape = self.shape(thread);
        shape.ops += ops.len() as u64;
        shape.runs += 1;
        shape.longest_run = shape.longest_run.max(ops.len() as u64);
        let mut prev = self.last[thread] as usize;
        for op in ops {
            let c = op.class.index();
            self.profile.op_freq[c] += 1;
            if prev < NUM_OP_CLASSES {
                self.profile.pairs[prev][c] += 1;
            }
            prev = c;
        }
        self.last[thread] = prev as u8;
    }

    fn on_sync(&mut self, thread: usize, op: &SyncOp) {
        self.shape(thread).syncs += 1;
        self.last[thread] = NUM_OP_CLASSES as u8;
        let m = &mut self.profile.sync;
        match op {
            SyncOp::Create { .. } => m.creates += 1,
            SyncOp::Join { .. } => m.joins += 1,
            SyncOp::Barrier { via_cond, .. } => {
                if *via_cond {
                    m.cond_barriers += 1;
                } else {
                    m.barriers += 1;
                }
            }
            SyncOp::Lock { .. } => m.locks += 1,
            SyncOp::Unlock { .. } => m.unlocks += 1,
            SyncOp::Produce { .. } => m.produces += 1,
            SyncOp::Consume { .. } => m.consumes += 1,
            // Version-2 events fold into their closest version-1 kin so the
            // SimProfile schema (and its goldens) stay unchanged: rwlocks
            // are critical sections, semaphores are produce/consume pairs.
            SyncOp::RwLock { .. } => m.locks += 1,
            SyncOp::RwUnlock { .. } => m.unlocks += 1,
            SyncOp::SemPost { .. } => m.produces += 1,
            SyncOp::SemWait { .. } => m.consumes += 1,
        }
    }

    fn on_thread_finish(&mut self, thread: usize, dispatches: u64, fused_pairs: u64) {
        self.shape(thread);
        self.profile.dispatches += dispatches;
        self.profile.fused_pairs += fused_pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(class: OpClass) -> MicroOp {
        MicroOp::compute(class, 0, 0)
    }

    #[test]
    fn collector_counts_freq_and_pairs() {
        let mut c = ProfileCollector::new();
        c.on_ops(
            0,
            &[op(OpClass::IntAlu), op(OpClass::IntAlu), op(OpClass::Load)],
        );
        // Adjacency chains across batches on the same thread...
        c.on_ops(0, &[op(OpClass::Store)]);
        // ...but not across threads.
        c.on_ops(1, &[op(OpClass::Branch)]);
        let p = c.into_profile();
        assert_eq!(p.total_ops(), 5);
        assert_eq!(p.op_freq[OpClass::IntAlu.index()], 2);
        assert_eq!(p.pairs[OpClass::IntAlu.index()][OpClass::IntAlu.index()], 1);
        assert_eq!(p.pairs[OpClass::IntAlu.index()][OpClass::Load.index()], 1);
        assert_eq!(p.pairs[OpClass::Load.index()][OpClass::Store.index()], 1);
        let branch_row: u64 = p.pairs.iter().map(|r| r[OpClass::Branch.index()]).sum();
        assert_eq!(branch_row, 0, "first op of a thread has no predecessor");
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].runs, 2);
        assert_eq!(p.threads[0].longest_run, 3);
    }

    #[test]
    fn sync_resets_adjacency_and_counts_mix() {
        let mut c = ProfileCollector::new();
        c.on_ops(0, &[op(OpClass::IntAlu)]);
        c.on_sync(
            0,
            &SyncOp::Barrier {
                id: rppm_trace::BarrierId(0),
                via_cond: false,
            },
        );
        c.on_ops(0, &[op(OpClass::IntAlu)]);
        let p = c.into_profile();
        assert_eq!(p.sync.barriers, 1);
        assert_eq!(p.threads[0].syncs, 1);
        assert_eq!(
            p.pairs[OpClass::IntAlu.index()][OpClass::IntAlu.index()],
            0,
            "sync must break adjacency"
        );
    }

    #[test]
    fn top_pairs_sorted_and_deterministic() {
        let mut p = SimProfile::default();
        p.pairs[0][6] = 10;
        p.pairs[6][0] = 10;
        p.pairs[3][4] = 99;
        let top = p.top_pairs(2);
        assert_eq!(top[0], (OpClass::FpAdd, OpClass::FpMul, 99));
        // Tie at 10: class-index order picks (IntAlu, Load) first.
        assert_eq!(top[1], (OpClass::IntAlu, OpClass::Load, 10));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimProfile::default();
        a.op_freq[0] = 5;
        a.dispatches = 5;
        a.threads.push(ThreadShape {
            ops: 5,
            runs: 1,
            longest_run: 5,
            syncs: 0,
        });
        let mut b = SimProfile::default();
        b.op_freq[0] = 3;
        b.fused_pairs = 1;
        b.dispatches = 2;
        b.threads = vec![ThreadShape::default(), ThreadShape::default()];
        a.merge(&b);
        assert_eq!(a.op_freq[0], 8);
        assert_eq!(a.dispatches, 7);
        assert_eq!(a.fused_pairs, 1);
        assert_eq!(a.threads.len(), 2);
    }

    #[test]
    fn json_is_deterministic_and_parseable_shape() {
        let mut c = ProfileCollector::new();
        c.on_ops(0, &[op(OpClass::IntAlu), op(OpClass::Load)]);
        c.on_thread_finish(0, 2, 0);
        let p = c.into_profile();
        let s = p.to_json_string();
        assert_eq!(s, p.to_json_string());
        assert!(s.starts_with("{\"ops\":2,"));
        assert!(s.contains("\"op_freq\":{\"int\":1,"));
        assert!(s.contains("\"first\":\"int\",\"second\":\"load\",\"count\":1"));
        assert!(s.contains("\"sync\":{\"creates\":0,"));
        assert!(s.ends_with("]}"));
    }

    #[test]
    fn noprobe_is_inert() {
        let mut p = NoProbe;
        p.on_ops(0, &[op(OpClass::IntAlu)]);
        p.on_sync(
            0,
            &SyncOp::Lock {
                id: rppm_trace::MutexId(0),
            },
        );
        p.on_thread_finish(0, 1, 0);
    }
}

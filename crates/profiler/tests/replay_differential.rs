//! Differential suite pinning out-of-core replay to in-memory expansion:
//! profiling a recorded op stream through [`rppm_profiler::profile_replay`]
//! must produce a profile bit-identical (as serialized JSON) to
//! [`rppm_profiler::profile`] on the program it was recorded from — for a
//! sync-rich fixed program, for every catalog-style knob combination the
//! generator sweeps, and under an adversarially tiny chunk/pool budget.

use proptest::prelude::*;
use rppm_profiler::{profile, profile_replay};
use rppm_trace::{AddressPattern, BlockSpec, OpReplay, Program, ProgramBuilder, StreamOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rppm-profdiff-test-{}-{tag}-{seq}.rpt",
        std::process::id()
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Every synchronization kind, shared addresses, and uneven per-thread
/// work — the profile must capture identical sync behavior either way.
fn rich_program() -> Program {
    let mut b = ProgramBuilder::new("rich", 3);
    let bar = b.alloc_barrier();
    let mx = b.alloc_mutex();
    let q = b.alloc_queue();
    let rw = b.alloc_rwlock();
    let sem = b.alloc_sem();
    let reg = b.alloc_region(512);
    b.spawn_workers();
    for t in 0..3u32 {
        b.thread(t)
            .block(
                BlockSpec::new(300 + 70 * t, 11 + t as u64)
                    .loads(0.3)
                    .stores(0.08)
                    .branches(0.12)
                    .deps(0.3, 5.0)
                    .addr(AddressPattern::stream(reg), 1.0),
            )
            .barrier(bar)
            .lock(mx)
            .unlock(mx)
            .rw_lock(rw, t == 0)
            .rw_unlock(rw)
            .block(BlockSpec::new(128, 90 + t as u64).fp(0.2, 0.1));
    }
    b.thread(0u32).produce(q, 2).sem_post(sem, 2);
    b.thread(1u32).consume(q).sem_wait(sem);
    b.thread(2u32).consume(q).sem_wait(sem);
    b.join_workers();
    b.build()
}

/// Records `program`, reopens it under `options`, and asserts the replayed
/// profile serializes byte-identically to the expansion profile.
fn assert_profiles_match(program: &Program, options: StreamOptions, what: &str) {
    let path = tmp_path("diff");
    let _guard = TempFile(path.clone());
    rppm_trace::write_program_ops(program, &path).expect("record");
    let replay = OpReplay::open_with(&path, options).expect("open");
    let from_replay = profile_replay(&replay).to_json();
    let from_expansion = profile(program).to_json();
    assert_eq!(from_replay, from_expansion, "{what}: profiles diverge");
}

#[test]
fn rich_program_profiles_identically_from_replay() {
    assert_profiles_match(&rich_program(), StreamOptions::default(), "default options");
}

#[test]
fn tiny_chunk_budget_profiles_identically() {
    // Out-of-core worst case: 3-op decode chunks, a 64-byte buffer pool,
    // no mmap — peak memory is bounded far below the stream size and the
    // profile still cannot move.
    assert_profiles_match(
        &rich_program(),
        StreamOptions {
            chunk_ops: 3,
            pool_bytes: 64,
            mmap: false,
            ..StreamOptions::default()
        },
        "tiny chunk budget",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated-program sweep: arbitrary block shapes and sync mixes
    /// profile identically from replay, across chunk sizes.
    #[test]
    fn generated_programs_profile_identically(
        seed in 1u64..1_000_000,
        ops in 16u32..500,
        loads in 0u32..40,
        stores in 0u32..15,
        branches in 0u32..20,
        chunk_ops in 1usize..1500,
        use_barrier in any::<bool>(),
        use_queue in any::<bool>(),
    ) {
        let mut b = ProgramBuilder::new("prop", 2);
        let bar = b.alloc_barrier();
        let q = b.alloc_queue();
        let reg = b.alloc_region(256);
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t).block(
                BlockSpec::new(ops + t, seed + t as u64)
                    .loads(loads as f64 / 100.0)
                    .stores(stores as f64 / 100.0)
                    .branches(branches as f64 / 100.0)
                    .addr(AddressPattern::stream(reg), 1.0),
            );
            if use_barrier {
                b.thread(t).barrier(bar);
                b.thread(t).block(BlockSpec::new(ops / 3 + 1, seed ^ 0x5A5A));
            }
        }
        if use_queue {
            b.thread(0u32).produce(q, 1);
            b.thread(1u32).consume(q);
        }
        b.join_workers();
        let program = b.build();

        let path = tmp_path("prop");
        let _guard = TempFile(path.clone());
        rppm_trace::write_program_ops(&program, &path).expect("record");
        let replay = OpReplay::open_with(&path, StreamOptions {
            chunk_ops,
            mmap: seed % 2 == 0,
            ..StreamOptions::default()
        }).expect("open");
        prop_assert_eq!(
            profile_replay(&replay).to_json(),
            profile(&program).to_json(),
            "replayed and expanded profiles diverge"
        );
    }
}

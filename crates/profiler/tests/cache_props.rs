//! Property tests for the bounded [`ProfileCache`]: random multi-threaded
//! interleavings of `get_or_profile` under a tiny budget must never exceed
//! the bound, never run two profiling passes for a key concurrently, and
//! always return bit-identical profiles across eviction/re-profile cycles.

use proptest::prelude::*;
use rppm_profiler::{CacheBudget, ProfileCache, ProfileKey};
use rppm_trace::{BlockSpec, Program, ProgramBuilder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

fn tiny(seed: u64) -> Arc<Program> {
    let mut b = ProgramBuilder::new("prop", 2);
    b.spawn_workers();
    b.thread(1u32)
        .block(BlockSpec::new(200 + (seed % 7) as u32, seed));
    b.join_workers();
    Arc::new(b.build())
}

fn key(seed: u64) -> ProfileKey {
    ProfileKey::generated("prop", 0.5, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of lookups from several threads, against a cache
    /// whose budget is far smaller than the key universe, holds three
    /// invariants: the resident count never exceeds the budget, every
    /// build is accounted as exactly one profiling run, and a key's
    /// profile bytes are identical no matter how many eviction cycles it
    /// went through.
    #[test]
    fn bounded_cache_survives_concurrent_churn(
        max_entries in 1usize..4,
        ops in proptest::collection::vec((0u64..6, 0usize..3), 9..36),
    ) {
        let cache = Arc::new(ProfileCache::with_budget(CacheBudget::entries(max_entries)));
        let builds = Arc::new(AtomicUsize::new(0));
        let canonical: Arc<Mutex<HashMap<u64, String>>> = Arc::default();

        // Partition the sampled ops across 3 threads by their thread tag;
        // the OS supplies the interleaving.
        let mut per_thread: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for &(seed, thread) in &ops {
            per_thread[thread].push(seed);
        }
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|seeds| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let canonical = Arc::clone(&canonical);
                std::thread::spawn(move || {
                    for seed in seeds {
                        let got = cache.get_or_profile(key(seed), || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            tiny(seed)
                        });
                        let json = got.profile.to_json();
                        let mut map = canonical.lock().unwrap();
                        match map.get(&seed) {
                            Some(first) => assert_eq!(
                                first, &json,
                                "profile for seed {seed} changed across eviction cycles"
                            ),
                            None => {
                                map.insert(seed, json);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }

        prop_assert!(
            cache.resident() <= max_entries,
            "resident {} exceeds budget {}",
            cache.resident(),
            max_entries
        );
        // Every closure invocation is one counted profiling run — the cache
        // never double-builds a slot and never loses track of one.
        prop_assert_eq!(builds.load(Ordering::Relaxed), cache.profiles_collected());
        prop_assert_eq!(cache.lookups(), ops.len());
        let distinct = canonical.lock().unwrap().len();
        prop_assert!(cache.profiles_collected() >= distinct || ops.is_empty());
    }
}

/// Concurrent requests for one key always coalesce onto a single profiling
/// run — including requests for a key that was evicted and is being
/// re-profiled. Each rendezvous round of 4 threads must trigger exactly
/// one build, no matter how many eviction cycles separate the rounds.
#[test]
fn in_flight_key_is_profiled_exactly_once_per_round() {
    let cache = Arc::new(ProfileCache::with_budget(CacheBudget::entries(1)));
    let builds = Arc::new(AtomicUsize::new(0));
    const THREADS: usize = 4;

    let mut expected_builds = 0;
    for round in 0..3u64 {
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let got = cache.get_or_profile(key(7), || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window: every thread in the round
                        // arrives while this build is still in flight.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        tiny(7)
                    });
                    got.profile.to_json()
                })
            })
            .collect();
        let jsons: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().expect("round thread panicked"))
            .collect();
        assert!(
            jsons.windows(2).all(|w| w[0] == w[1]),
            "round {round}: coalesced callers saw different profiles"
        );
        expected_builds += 1;
        assert_eq!(
            builds.load(Ordering::Relaxed),
            expected_builds,
            "round {round}: an in-flight key was profiled more than once"
        );
        // Evict key 7 so the next round re-profiles it from scratch.
        cache.get_or_profile(key(1000 + round), tiny_builder(1000 + round));
        assert!(
            cache.peek(&key(7)).is_none(),
            "round {round}: key 7 evicted"
        );
    }
    assert_eq!(cache.resident(), 1);
}

fn tiny_builder(seed: u64) -> impl FnOnce() -> Arc<Program> {
    move || tiny(seed)
}

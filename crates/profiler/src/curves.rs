//! Precomputed ILP/MLP interpolation tables for the batched predictor.
//!
//! [`crate::EpochProfile::ilp_at`] recomputes the logarithms of the profiled
//! window grid on every call; fine for one prediction, dominant when a
//! design-space sweep evaluates the same epoch against 10⁵ configurations.
//! [`EpochCurves`] caches `ln(window)` per curve point and `ln(latitude)`
//! per grid latitude once per epoch, so each interpolation costs one table
//! scan and (at most) one fresh `ln` for the query latency.
//!
//! **Bit-identity contract**: every evaluation reproduces the exact
//! arithmetic expression of [`crate::EpochProfile::ilp_at`] /
//! [`crate::EpochProfile::mlp_at`] — same clamps, same comparison
//! boundaries, same operation order — so batched predictions are
//! bit-identical to scalar ones. The property tests below pin this.

use crate::microtrace::LOAD_LAT_GRID;
use crate::EpochProfile;

/// One point of a log-linear `(window, value)` curve with its cached
/// logarithm.
#[derive(Debug, Clone, Copy)]
struct CurvePoint {
    w: f64,
    v: f64,
    ln_w: f64,
}

/// A `(window, value)` curve with precomputed window logarithms.
#[derive(Debug, Clone, Default)]
struct CurveTable {
    pts: Vec<CurvePoint>,
}

impl CurveTable {
    fn new(curve: &[(u32, f64)]) -> Self {
        CurveTable {
            pts: curve
                .iter()
                .map(|&(w, v)| {
                    let wf = w as f64;
                    CurvePoint {
                        w: wf,
                        v,
                        ln_w: wf.ln(),
                    }
                })
                .collect(),
        }
    }

    /// Mirrors the profiler's private `interp_curve` exactly; `w` and
    /// `ln_w` must come from [`ln_window`].
    fn eval(&self, w: f64, ln_w: f64) -> Option<f64> {
        let pts = &self.pts;
        let first = pts.first()?;
        if w <= first.w {
            return Some(first.v);
        }
        for pair in pts.windows(2) {
            if w <= pair[1].w {
                let t = (ln_w - pair[0].ln_w) / (pair[1].ln_w - pair[0].ln_w);
                return Some(pair[0].v + t * (pair[1].v - pair[0].v));
            }
        }
        Some(pts.last().expect("nonempty").v)
    }
}

/// The effective window value and its logarithm for a window size, shared
/// across the several interpolations one Equation-1 evaluation performs.
pub fn ln_window(window: u32) -> (f64, f64) {
    let w = window.max(1) as f64;
    (w, w.ln())
}

/// Precomputed interpolation tables for one epoch's ILP and MLP curves.
///
/// Built once per epoch by `PreparedProfile` (in `rppm-core`) and evaluated
/// once per `(epoch, configuration)` cell of a batched sweep.
#[derive(Debug, Clone, Default)]
pub struct EpochCurves {
    ilp: Vec<CurveTable>,
    mlp: CurveTable,
    ln_grid: [f64; LOAD_LAT_GRID.len()],
}

impl EpochCurves {
    /// Builds the tables from an epoch's profiled curves.
    pub fn new(epoch: &EpochProfile) -> Self {
        let mut ln_grid = [0.0; LOAD_LAT_GRID.len()];
        for (slot, &g) in ln_grid.iter_mut().zip(&LOAD_LAT_GRID) {
            *slot = (g as f64).ln();
        }
        EpochCurves {
            ilp: epoch.ilp.iter().map(|c| CurveTable::new(c)).collect(),
            mlp: CurveTable::new(&epoch.mlp),
            ln_grid,
        }
    }

    /// [`EpochProfile::ilp_at`] with the window logarithm supplied by the
    /// caller (see [`ln_window`]); bit-identical to the profile method.
    pub fn ilp_at_ln(&self, w: f64, ln_w: f64, load_lat: f64) -> Option<f64> {
        if self.ilp.is_empty() {
            return None;
        }
        let grid = &LOAD_LAT_GRID;
        let lat = load_lat.clamp(grid[0] as f64, *grid.last().expect("grid") as f64);
        let mut k = 0;
        while k + 1 < grid.len() && (grid[k + 1] as f64) < lat {
            k += 1;
        }
        let lo = self.ilp.get(k)?.eval(w, ln_w)?;
        if k + 1 >= self.ilp.len() {
            return Some(lo);
        }
        let hi = self.ilp[k + 1].eval(w, ln_w)?;
        // `ln` of a value already on the grid is the cached grid logarithm
        // (same input, same function — identical bits); only off-grid
        // latencies pay a fresh `ln`.
        let ln_lat = if lat == grid[k] as f64 {
            self.ln_grid[k]
        } else {
            lat.ln()
        };
        let t =
            ((ln_lat - self.ln_grid[k]) / (self.ln_grid[k + 1] - self.ln_grid[k])).clamp(0.0, 1.0);
        Some(lo + t * (hi - lo))
    }

    /// [`EpochProfile::mlp_at`] with the window logarithm supplied by the
    /// caller; bit-identical to the profile method.
    pub fn mlp_at_ln(&self, w: f64, ln_w: f64) -> Option<f64> {
        self.mlp.eval(w, ln_w)
    }

    /// Convenience wrapper computing the window logarithm itself.
    pub fn ilp_at(&self, window: u32, load_lat: f64) -> Option<f64> {
        let (w, ln_w) = ln_window(window);
        self.ilp_at_ln(w, ln_w, load_lat)
    }

    /// Convenience wrapper computing the window logarithm itself.
    pub fn mlp_at(&self, window: u32) -> Option<f64> {
        let (w, ln_w) = ln_window(window);
        self.mlp_at_ln(w, ln_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn epoch_with(ilp: Vec<Vec<(u32, f64)>>, mlp: Vec<(u32, f64)>) -> EpochProfile {
        EpochProfile {
            ops: 1000,
            ilp,
            mlp,
            ..Default::default()
        }
    }

    #[test]
    fn empty_curves_return_none() {
        let e = epoch_with(vec![], vec![]);
        let c = EpochCurves::new(&e);
        assert_eq!(c.ilp_at(64, 10.0), None);
        assert_eq!(c.mlp_at(64), None);
    }

    #[test]
    fn short_ilp_vector_matches_profile() {
        // Fewer latitude curves than the grid: the `get(k)?` and
        // `k + 1 >= len` paths must match the profile method exactly.
        let e = epoch_with(vec![vec![(16, 2.0), (64, 3.0)]], vec![(16, 1.0)]);
        let c = EpochCurves::new(&e);
        for lat in [1.0, 3.0, 11.9, 12.0, 40.0, 300.0] {
            for w in [1u32, 8, 16, 33, 64, 512] {
                assert_eq!(
                    c.ilp_at(w, lat).map(f64::to_bits),
                    e.ilp_at(w, lat).map(f64::to_bits),
                    "w {w} lat {lat}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ilp_matches_profile_bit_for_bit(
            n_lats in 0usize..6,
            values in proptest::collection::vec(0.01f64..8.0, 36..37),
            windows in proptest::collection::vec(0u32..2048, 1..24),
            lats in proptest::collection::vec(0.0f64..400.0, 1..12),
        ) {
            let grid_w = [16u32, 32, 64, 128, 256, 512];
            let mut vals = values.iter().copied();
            let ilp: Vec<Vec<(u32, f64)>> = (0..n_lats)
                .map(|_| grid_w.iter().map(|&w| (w, vals.next().unwrap())).collect())
                .collect();
            let e = epoch_with(ilp, vec![]);
            let c = EpochCurves::new(&e);
            for &w in &windows {
                for &lat in &lats {
                    prop_assert_eq!(
                        c.ilp_at(w, lat).map(f64::to_bits),
                        e.ilp_at(w, lat).map(f64::to_bits),
                        "w {} lat {}", w, lat
                    );
                }
            }
        }

        #[test]
        fn mlp_matches_profile_bit_for_bit(
            values in proptest::collection::vec(0.0f64..16.0, 6..7),
            windows in proptest::collection::vec(0u32..2048, 1..24),
        ) {
            let grid_w = [16u32, 32, 64, 128, 256, 512];
            let mlp: Vec<(u32, f64)> = grid_w.iter().zip(&values).map(|(&w, &v)| (w, v)).collect();
            let e = epoch_with(vec![], mlp);
            let c = EpochCurves::new(&e);
            for &w in &windows {
                prop_assert_eq!(
                    c.mlp_at(w).map(f64::to_bits),
                    e.mlp_at(w).map(f64::to_bits),
                    "w {}", w
                );
            }
        }
    }
}

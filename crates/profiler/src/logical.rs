//! The profiling executor.
//!
//! The paper's profiler observes a real multi-threaded execution under Pin.
//! Our trace-driven equivalent replays the workload on a *unit-cost abstract
//! machine*: every micro-op costs one tick and synchronization has its usual
//! semantics, so threads interleave the way a timing-agnostic balanced
//! execution would. This interleaving drives the global reuse-distance
//! counters (shared-cache locality); all per-thread statistics are
//! interleaving-independent. Section III-A of the paper argues (and we
//! verify in integration tests) that predictions are insensitive to the
//! particular profiling interleaving.

use crate::microtrace::{self, LOAD_LAT_GRID, WINDOWS};
use crate::profile::{ApplicationProfile, EpochProfile, ThreadProfile};
use rppm_branch_model::EntropyCollector;
use rppm_statstack::{MultiThreadCollector, ReuseHistogram, ReuseTracker};
use rppm_trace::op::NUM_OP_CLASSES;
use rppm_trace::{
    BlockItem, ExecSource, MicroOp, OpClass, OpReplay, Program, SyncOp, ThreadCursor,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Ops per scheduling chunk of the unit-cost executor.
const CHUNK: u64 = 256;
/// A micro-trace of up to this many ops is sampled. 512 is the largest ILP
/// window the analysis measures ([`WINDOWS`]): a longer trace only adds
/// more small-window samples at proportional analysis cost, so the trace
/// length is pinned to the largest window.
const MICROTRACE_LEN: u64 = 512;
/// ...at the start of every window of this many ops (the paper samples 1000
/// instructions every 1M; our epochs are ~100-1000x shorter, so the sampling
/// period shrinks proportionally).
const SAMPLE_PERIOD: u64 = 10_000;

/// Process-wide count of [`profile`] invocations.
static PROFILE_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of times [`profile`] has run in this process.
///
/// Diagnostic hook for the "profile once" contract: harness tests snapshot
/// this counter around an experiment run to assert every workload was
/// profiled exactly once, no matter how many configurations it was
/// predicted on.
pub fn profile_call_count() -> u64 {
    PROFILE_CALLS.load(Ordering::Relaxed)
}

/// Profiles `program`, producing its microarchitecture-independent
/// [`ApplicationProfile`].
///
/// # Panics
///
/// Panics if the program is structurally invalid or deadlocks.
pub fn profile(program: &Program) -> ApplicationProfile {
    profile_source(program)
}

/// Profiles a recorded op stream replayed out-of-core (see
/// [`OpReplay`]), producing a profile bit-identical to what
/// [`profile`] yields on the same program — pinned by the differential
/// suite in `tests/replay_differential.rs`.
///
/// # Panics
///
/// Same contract as [`profile`].
pub fn profile_replay(replay: &OpReplay) -> ApplicationProfile {
    profile_source(replay)
}

/// Profiles any [`ExecSource`] (expansion-backed program or out-of-core
/// replay) through the shared cursor API.
///
/// # Panics
///
/// Panics if the underlying program is structurally invalid or deadlocks.
pub fn profile_source<S: ExecSource>(source: &S) -> ApplicationProfile {
    PROFILE_CALLS.fetch_add(1, Ordering::Relaxed);
    source.validate().expect("invalid program");
    Profiler::new(source).run()
}

/// Accumulates one epoch's statistics for one thread.
#[derive(Debug)]
struct EpochCollector {
    ops: u64,
    mix: [u64; NUM_OP_CLASSES],
    entropy: EntropyCollector,
    microtrace: Vec<MicroOp>,
    ilp_sum: Vec<Vec<f64>>,
    mlp_sum: Vec<f64>,
    curve_weight: f64,
    branch_depth_sum: f64,
    branch_slice_loads_sum: f64,
    branch_depth_weight: f64,
    icache_rd: ReuseHistogram,
    code_fetches: u64,
}

impl EpochCollector {
    fn new() -> Self {
        EpochCollector {
            ops: 0,
            mix: [0; NUM_OP_CLASSES],
            entropy: EntropyCollector::new(),
            microtrace: Vec::with_capacity(MICROTRACE_LEN as usize),
            ilp_sum: vec![vec![0.0; WINDOWS.len()]; LOAD_LAT_GRID.len()],
            mlp_sum: vec![0.0; WINDOWS.len()],
            curve_weight: 0.0,
            branch_depth_sum: 0.0,
            branch_slice_loads_sum: 0.0,
            branch_depth_weight: 0.0,
            icache_rd: ReuseHistogram::new(),
            code_fetches: 0,
        }
    }

    fn flush_microtrace(&mut self) {
        if self.microtrace.len() < 16 {
            self.microtrace.clear();
            return;
        }
        let a = microtrace::analyze(&self.microtrace);
        for (g, curve) in a.ilp.iter().enumerate() {
            for (k, &(_, v)) in curve.iter().enumerate() {
                if k < self.ilp_sum[g].len() {
                    self.ilp_sum[g][k] += v;
                }
            }
        }
        for (k, &(_, v)) in a.mlp.iter().enumerate() {
            if k < self.mlp_sum.len() {
                self.mlp_sum[k] += v;
            }
        }
        self.curve_weight += 1.0;
        if a.branch_depth > 0.0 {
            self.branch_depth_sum += a.branch_depth;
            self.branch_slice_loads_sum += a.branch_slice_loads;
            self.branch_depth_weight += 1.0;
        }
        self.microtrace.clear();
    }

    fn finalize(mut self, locality: rppm_statstack::EpochLocality) -> EpochProfile {
        self.flush_microtrace();
        let w = self.curve_weight;
        let ilp = if w > 0.0 {
            self.ilp_sum
                .iter()
                .map(|sums| {
                    WINDOWS
                        .iter()
                        .enumerate()
                        .map(|(k, &win)| (win, sums[k] / w))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        let mlp = if w > 0.0 {
            WINDOWS
                .iter()
                .enumerate()
                .map(|(k, &win)| (win, self.mlp_sum[k] / w))
                .collect()
        } else {
            Vec::new()
        };
        EpochProfile {
            ops: self.ops,
            mix: self.mix,
            ilp,
            mlp,
            branch: self.entropy.finish(),
            branch_depth: if self.branch_depth_weight > 0.0 {
                self.branch_depth_sum / self.branch_depth_weight
            } else {
                0.0
            },
            branch_slice_loads: if self.branch_depth_weight > 0.0 {
                self.branch_slice_loads_sum / self.branch_depth_weight
            } else {
                0.0
            },
            private_rd: locality.private,
            global_rd: locality.global,
            accesses: locality.accesses,
            stores: locality.stores,
            icache_rd: self.icache_rd,
            code_fetches: self.code_fetches,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Ready,
    Blocked,
    Done,
}

struct ThreadState {
    tick: u64,
    status: Status,
    epoch: EpochCollector,
    sample_phase: u64,
    /// Per-code-line last-fetch tracker for I-cache reuse distances
    /// (interner-backed; persists across epochs like the data-side state).
    code_rd: ReuseTracker,
    last_code_line: u64,
    epochs: Vec<EpochProfile>,
    events: Vec<SyncOp>,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
    max_tick: u64,
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    queue: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<u64>,
    waiting: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct RwLockState {
    writer: Option<usize>,
    readers: usize,
    /// Blocked acquirers in arrival order: `(thread, wants_write)`.
    queue: VecDeque<(usize, bool)>,
}

impl RwLockState {
    /// Admits queued acquirers after a release, FIFO by arrival: a run of
    /// consecutive readers at the front enters together; a writer at the
    /// front enters alone once the lock is fully free. Returns the threads
    /// to wake.
    fn admit(&mut self) -> Vec<usize> {
        let mut wake = Vec::new();
        if self.writer.is_some() {
            return wake;
        }
        if let Some(&(_, true)) = self.queue.front() {
            if self.readers == 0 {
                let (w, _) = self.queue.pop_front().expect("nonempty");
                self.writer = Some(w);
                wake.push(w);
            }
            return wake;
        }
        while let Some(&(_, false)) = self.queue.front() {
            let (w, _) = self.queue.pop_front().expect("nonempty");
            self.readers += 1;
            wake.push(w);
        }
        wake
    }
}

struct Profiler<'p, S: ExecSource> {
    source: &'p S,
    /// Per-thread stream cursors, parallel to `threads`. Kept separate so
    /// the zero-copy op slices a cursor lends out can be iterated while
    /// the thread's statistics (and the shared memory collector) are
    /// mutated.
    cursors: Vec<ThreadCursor<'p>>,
    threads: Vec<ThreadState>,
    mem: MultiThreadCollector,
    barriers: HashMap<u32, BarrierState>,
    participants: HashMap<u32, usize>,
    mutexes: HashMap<u32, MutexState>,
    queues: HashMap<u32, QueueState>,
    rwlocks: HashMap<u32, RwLockState>,
    /// Semaphores reuse queue bookkeeping: posted permits carry the tick
    /// they became available, exactly like produced items.
    sems: HashMap<u32, QueueState>,
    joiners: HashMap<usize, Vec<usize>>,
    finish_tick: Vec<u64>,
    /// Discrete-event ready queue: `(wake_tick, thread)` min-heap, the
    /// tick-domain twin of `rppm-core`'s scheduler (which this crate cannot
    /// depend on — the dependency points the other way). Threads are posted
    /// when they become runnable and popped in tick order, so blocked and
    /// finished threads cost nothing per scheduling step.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
}

impl<'p, S: ExecSource> Profiler<'p, S> {
    fn new(source: &'p S) -> Self {
        let n = source.num_threads();
        let cursors = (0..n).map(|t| source.cursor(t)).collect();
        let threads = (0..n)
            .map(|i| ThreadState {
                tick: 0,
                status: if i == 0 {
                    Status::Ready
                } else {
                    Status::NotStarted
                },
                epoch: EpochCollector::new(),
                sample_phase: 0,
                code_rd: ReuseTracker::new(),
                last_code_line: u64::MAX,
                epochs: Vec::new(),
                events: Vec::new(),
            })
            .collect();

        let mut participants: HashMap<u32, usize> = HashMap::new();
        for t in 0..n {
            let mut seen = std::collections::HashSet::new();
            for op in source.sync_ops(t) {
                if let SyncOp::Barrier { id, .. } = op {
                    if seen.insert(id.0) {
                        *participants.entry(id.0).or_insert(0) += 1;
                    }
                }
            }
        }

        Profiler {
            source,
            cursors,
            threads,
            mem: MultiThreadCollector::new(n),
            barriers: HashMap::new(),
            participants,
            mutexes: HashMap::new(),
            queues: HashMap::new(),
            rwlocks: HashMap::new(),
            sems: HashMap::new(),
            joiners: HashMap::new(),
            finish_tick: vec![0; n],
            ready: BinaryHeap::new(),
        }
    }

    /// Accounts one micro-op to thread `i`'s state (`th`) and the shared
    /// memory collector (`mem`). A free-standing function over disjoint
    /// borrows so the caller can iterate a cursor-lent op slice while
    /// mutating them.
    fn step_op(th: &mut ThreadState, mem: &mut MultiThreadCollector, i: usize, op: MicroOp) {
        th.tick += 1;
        let e = &mut th.epoch;
        e.ops += 1;
        e.mix[op.class.index()] += 1;

        // Micro-trace sampling: the first MICROTRACE_LEN ops of every
        // SAMPLE_PERIOD window, tracked with a wrapping phase counter
        // (equivalent to `op_idx % SAMPLE_PERIOD < MICROTRACE_LEN` without
        // the per-op division).
        if th.sample_phase < MICROTRACE_LEN {
            e.microtrace.push(op);
            if e.microtrace.len() >= MICROTRACE_LEN as usize {
                e.flush_microtrace();
            }
        }
        th.sample_phase += 1;
        if th.sample_phase == SAMPLE_PERIOD {
            th.sample_phase = 0;
        }

        // Branch entropy.
        if op.class == OpClass::Branch {
            e.entropy.record(op.site, op.taken);
        }

        // Instruction-line reuse (on code-line transitions, like a fetch
        // engine).
        if op.code_line != th.last_code_line {
            th.last_code_line = op.code_line;
            e.code_fetches += 1;
            match th.code_rd.access(op.code_line) {
                Some(d) => e.icache_rd.record(d),
                None => e.icache_rd.record_cold(1),
            }
        }

        // Data reuse (private + global counters, coherence detection).
        if op.is_mem() {
            mem.access(i, op.line, op.is_store());
        }
    }

    fn end_epoch(&mut self, i: usize, event: Option<SyncOp>) {
        let locality = self.mem.end_epoch(i);
        let th = &mut self.threads[i];
        let collector = std::mem::replace(&mut th.epoch, EpochCollector::new());
        th.epochs.push(collector.finalize(locality));
        th.sample_phase = 0;
        if let Some(ev) = event {
            th.events.push(ev);
        }
    }

    fn block(&mut self, i: usize) {
        self.threads[i].status = Status::Blocked;
    }

    fn resume(&mut self, i: usize, tick: u64) {
        let th = &mut self.threads[i];
        debug_assert_eq!(th.status, Status::Blocked);
        th.tick = th.tick.max(tick);
        th.status = Status::Ready;
        let wake = th.tick;
        self.ready.push(Reverse((wake, i)));
    }

    fn finish_thread(&mut self, i: usize) {
        self.end_epoch(i, None);
        self.threads[i].status = Status::Done;
        self.finish_tick[i] = self.threads[i].tick;
        if let Some(waiters) = self.joiners.remove(&i) {
            let t = self.finish_tick[i];
            for w in waiters {
                self.resume(w, t);
            }
        }
    }

    /// Returns `true` if the thread blocked.
    fn handle_sync(&mut self, i: usize, op: SyncOp) -> bool {
        self.end_epoch(i, Some(op));
        let t = self.threads[i].tick;
        match op {
            SyncOp::Create { child } => {
                let c = child.index();
                assert_eq!(self.threads[c].status, Status::NotStarted);
                self.threads[c].status = Status::Ready;
                self.threads[c].tick = t;
                self.ready.push(Reverse((t, c)));
                false
            }
            SyncOp::Join { child } => {
                let c = child.index();
                if self.threads[c].status == Status::Done {
                    let fin = self.finish_tick[c];
                    self.threads[i].tick = t.max(fin);
                    false
                } else {
                    self.joiners.entry(c).or_default().push(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Barrier { id, .. } => {
                let need = *self.participants.get(&id.0).expect("known barrier");
                let bar = self.barriers.entry(id.0).or_default();
                bar.arrived.push(i);
                bar.max_tick = bar.max_tick.max(t);
                if bar.arrived.len() >= need {
                    let release = bar.max_tick;
                    let arrived = std::mem::take(&mut bar.arrived);
                    bar.max_tick = 0;
                    for w in arrived {
                        if w != i {
                            self.resume(w, release);
                        }
                    }
                    self.threads[i].tick = release;
                    false
                } else {
                    self.block(i);
                    true
                }
            }
            SyncOp::Lock { id } => {
                let m = self.mutexes.entry(id.0).or_default();
                if m.held_by.is_none() && m.queue.is_empty() {
                    m.held_by = Some(i);
                    false
                } else {
                    m.queue.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::Unlock { id } => {
                let m = self.mutexes.entry(id.0).or_default();
                m.held_by = None;
                if let Some(w) = m.queue.pop_front() {
                    m.held_by = Some(w);
                    self.resume(w, t);
                }
                false
            }
            SyncOp::Produce { queue, count } => {
                let q = self.queues.entry(queue.0).or_default();
                for _ in 0..count {
                    q.items.push_back(t);
                }
                let mut wakeups = Vec::new();
                while !q.items.is_empty() && !q.waiting.is_empty() {
                    let item = q.items.pop_front().expect("nonempty");
                    let w = q.waiting.pop_front().expect("nonempty");
                    wakeups.push((w, item));
                }
                for (w, item) in wakeups {
                    self.resume(w, item);
                }
                false
            }
            SyncOp::Consume { queue } => {
                let q = self.queues.entry(queue.0).or_default();
                if let Some(item) = q.items.pop_front() {
                    self.threads[i].tick = t.max(item);
                    false
                } else {
                    q.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::RwLock { id, write } => {
                let rw = self.rwlocks.entry(id.0).or_default();
                let free = rw.writer.is_none() && rw.queue.is_empty();
                let grant = if write { free && rw.readers == 0 } else { free };
                if grant {
                    if write {
                        rw.writer = Some(i);
                    } else {
                        rw.readers += 1;
                    }
                    false
                } else {
                    rw.queue.push_back((i, write));
                    self.block(i);
                    true
                }
            }
            SyncOp::RwUnlock { id } => {
                let rw = self.rwlocks.entry(id.0).or_default();
                if rw.writer == Some(i) {
                    rw.writer = None;
                } else {
                    rw.readers = rw.readers.saturating_sub(1);
                }
                let wake = rw.admit();
                for w in wake {
                    self.resume(w, t);
                }
                false
            }
            SyncOp::SemWait { id } => {
                let s = self.sems.entry(id.0).or_default();
                if let Some(item) = s.items.pop_front() {
                    self.threads[i].tick = t.max(item);
                    false
                } else {
                    s.waiting.push_back(i);
                    self.block(i);
                    true
                }
            }
            SyncOp::SemPost { id, count } => {
                let s = self.sems.entry(id.0).or_default();
                for _ in 0..count {
                    s.items.push_back(t);
                }
                let mut wakeups = Vec::new();
                while !s.items.is_empty() && !s.waiting.is_empty() {
                    let item = s.items.pop_front().expect("nonempty");
                    let w = s.waiting.pop_front().expect("nonempty");
                    wakeups.push((w, item));
                }
                for (w, item) in wakeups {
                    self.resume(w, item);
                }
                false
            }
        }
    }

    fn run(mut self) -> ApplicationProfile {
        // Discrete-event scheduling: pop the runnable thread with the
        // smallest tick (ties to the lowest thread index, matching the
        // historical linear scan bit for bit).
        if !self.threads.is_empty() {
            let t = self.threads[0].tick;
            self.ready.push(Reverse((t, 0))); // main thread starts ready
        }
        loop {
            let Some(Reverse((_, i))) = self.ready.pop() else {
                if self.threads.iter().all(|t| t.status == Status::Done) {
                    break;
                }
                panic!("deadlock during profiling of {}", self.source.name());
            };
            debug_assert_eq!(self.threads[i].status, Status::Ready);
            let t0 = self.threads[i].tick;

            let limit = t0 + CHUNK;
            loop {
                let Profiler {
                    cursors,
                    threads,
                    mem,
                    ..
                } = &mut self;
                match cursors[i].peek_block() {
                    None => {
                        self.finish_thread(i);
                        break;
                    }
                    Some(BlockItem::Sync(op)) => {
                        cursors[i].consume_sync();
                        if self.handle_sync(i, op) {
                            break;
                        }
                    }
                    Some(BlockItem::Ops(ops)) => {
                        // Every op costs one tick, so the chunk budget
                        // translates directly into an op count. A thread
                        // arriving at/over the limit (a sync event can jump
                        // its tick forward) still makes one op of progress,
                        // matching the per-op cursor's behaviour.
                        let th = &mut threads[i];
                        let budget = limit.saturating_sub(th.tick).max(1) as usize;
                        let take = ops.len().min(budget);
                        for &op in &ops[..take] {
                            Self::step_op(th, mem, i, op);
                        }
                        cursors[i].consume_ops(take);
                        if th.tick >= limit {
                            break;
                        }
                    }
                }
            }
            // Re-post the thread if it is still runnable after its chunk
            // (blocked threads are re-posted by whoever wakes them).
            if self.threads[i].status == Status::Ready {
                let t = self.threads[i].tick;
                self.ready.push(Reverse((t, i)));
            }
        }

        ApplicationProfile {
            name: self.source.name().to_string(),
            threads: self
                .threads
                .into_iter()
                .map(|t| {
                    let tp = ThreadProfile {
                        epochs: t.epochs,
                        events: t.events,
                    };
                    debug_assert!(tp.is_consistent());
                    tp
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_statstack::StackDistanceModel;
    use rppm_trace::{AddressPattern, BlockSpec, BranchPattern, ProgramBuilder};

    fn simple_program(ops: u32) -> Program {
        let mut b = ProgramBuilder::new("prof-test", 2);
        let bar = b.alloc_barrier();
        let r = b.alloc_region(256);
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(ops, 11 + t as u64)
                        .loads(0.25)
                        .stores(0.05)
                        .branches(0.1)
                        .addr(AddressPattern::stream(r.chunk(t as u64, 2)), 1.0)
                        .branch_pattern(BranchPattern::loop_every(8)),
                )
                .barrier(bar)
                .block(BlockSpec::new(ops / 2, 23 + t as u64));
        }
        b.join_workers();
        b.build()
    }

    #[test]
    fn profile_structure_matches_script() {
        let p = simple_program(20_000);
        let prof = profile(&p);
        assert_eq!(prof.num_threads(), 2);
        assert!(prof.is_consistent());
        // Thread 0 script: create, block, barrier, block, join
        // => events: create, barrier, join => 4 epochs.
        assert_eq!(prof.threads[0].events.len(), 3);
        assert_eq!(prof.threads[0].epochs.len(), 4);
        // Thread 1: block barrier block => events: [barrier], 2 epochs.
        assert_eq!(prof.threads[1].events.len(), 1);
        assert_eq!(prof.threads[1].epochs.len(), 2);
    }

    #[test]
    fn ops_are_fully_accounted() {
        let p = simple_program(20_000);
        let prof = profile(&p);
        assert_eq!(prof.total_ops(), p.total_ops());
        assert_eq!(prof.threads[1].total_ops(), 30_000);
    }

    #[test]
    fn mix_matches_block_spec() {
        let p = simple_program(40_000);
        let prof = profile(&p);
        let big = &prof.threads[1].epochs[0];
        assert_eq!(big.ops, 40_000);
        let load_frac = big.mix_fraction(OpClass::Load);
        assert!((load_frac - 0.25).abs() < 0.02, "load frac {load_frac}");
        assert!(big.branches() > 3000);
    }

    #[test]
    fn ilp_and_mlp_curves_profiled() {
        let p = simple_program(40_000);
        let prof = profile(&p);
        let e = &prof.threads[1].epochs[0];
        assert!(!e.ilp.is_empty(), "ILP profiled");
        assert!(!e.mlp.is_empty(), "MLP profiled");
        let ipc = e.ilp_at(128, 3.0).expect("interpolates");
        let ipc_slow = e.ilp_at(128, 75.0).expect("interpolates");
        assert!(ipc_slow <= ipc, "slow loads cannot raise ILP");
        assert!(ipc > 1.0 && ipc < 20.0, "ipc {ipc}");
    }

    #[test]
    fn branch_profile_sees_loop_pattern() {
        let p = simple_program(40_000);
        let prof = profile(&p);
        let e = &prof.threads[1].epochs[0];
        // loop_every(8): 1/8 mispredicted without history, ~0 with.
        assert!(e.branch.miss_floor(12) < 0.03, "{:?}", e.branch.m);
        assert!(e.branch.miss_floor(0) > 0.05);
    }

    #[test]
    fn private_locality_predicts_small_cache_hit() {
        let p = simple_program(40_000);
        let prof = profile(&p);
        let e = &prof.threads[1].epochs[0];
        // Streaming over 128 lines: fits in anything >= 128 lines.
        let model = StackDistanceModel::new(&e.private_rd);
        assert!(model.miss_rate(512) < 0.05, "{}", model.miss_rate(512));
        assert!(e.accesses > 10_000);
    }

    #[test]
    fn global_rd_sees_interleaving() {
        // Two threads streaming disjoint data: global distances are longer
        // than private ones.
        let p = simple_program(40_000);
        let prof = profile(&p);
        let e = &prof.threads[1].epochs[0];
        let mp = e.private_rd.mean_finite().unwrap_or(0.0);
        let mg = e.global_rd.mean_finite().unwrap_or(0.0);
        assert!(mg > mp, "global {mg} should exceed private {mp}");
    }

    #[test]
    fn coherence_detected_for_migratory_sharing() {
        let mut b = ProgramBuilder::new("migratory", 2);
        let shared = b.alloc_region(64);
        let bar = b.alloc_barrier();
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(20_000, t as u64)
                        .loads(0.2)
                        .stores(0.2)
                        .addr(AddressPattern::random(shared), 1.0),
                )
                .barrier(bar);
        }
        b.join_workers();
        let prof = profile(&b.build());
        let inval: u64 = prof
            .threads
            .iter()
            .flat_map(|t| &t.epochs)
            .map(|e| e.private_rd.invalidated)
            .sum();
        assert!(
            inval > 100,
            "write sharing must be seen as invalidations: {inval}"
        );
    }

    #[test]
    fn icache_reuse_profiled() {
        let p = simple_program(20_000);
        let prof = profile(&p);
        let e = &prof.threads[1].epochs[0];
        assert!(e.code_fetches > 0);
        // The loop's code footprint is tiny: everything re-fetches quickly.
        let model = StackDistanceModel::new(&e.icache_rd);
        assert!(model.miss_rate(512) < 0.05);
    }

    #[test]
    fn profiling_is_deterministic() {
        let p1 = profile(&simple_program(20_000));
        let p2 = profile(&simple_program(20_000));
        assert_eq!(p1, p2);
    }

    #[test]
    fn rwlock_and_semaphore_profile_cleanly() {
        let mut b = ProgramBuilder::new("rw-sem", 3);
        let rw = b.alloc_rwlock();
        let s = b.alloc_sem();
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t)
                .rw_lock(rw, false)
                .block(BlockSpec::new(5_000, t as u64))
                .rw_unlock(rw);
        }
        b.thread(2u32)
            .rw_lock(rw, true)
            .block(BlockSpec::new(1_000, 9))
            .rw_unlock(rw)
            .sem_post(s, 1);
        b.thread(0u32).sem_wait(s);
        b.join_workers();
        let prof = profile(&b.build());
        assert!(prof.is_consistent());
        let (cs, bar, cond) = prof.sync_event_counts();
        assert_eq!(cs, 3, "three rw acquisitions are critical sections");
        assert_eq!(bar, 0);
        assert_eq!(cond, 2, "sem post + wait are cond-var events");
    }

    #[test]
    fn producer_consumer_profiles_cleanly() {
        let mut b = ProgramBuilder::new("pc", 2);
        let q = b.alloc_queue();
        b.spawn_workers();
        for k in 0..5u64 {
            b.thread(0u32).block(BlockSpec::new(5_000, k)).produce(q, 1);
            b.thread(1u32)
                .consume(q)
                .block(BlockSpec::new(1_000, 50 + k));
        }
        b.join_workers();
        let prof = profile(&b.build());
        assert!(prof.is_consistent());
        let (cs, bar, cond) = prof.sync_event_counts();
        assert_eq!((cs, bar), (0, 0));
        assert_eq!(cond, 10);
        let usage = prof.classify_cond_vars();
        assert_eq!(usage.len(), 1);
    }
}

//! The application profile: RPPM's "collect once, predict many" artifact.

use rppm_branch_model::BranchProfile;
use rppm_statstack::ReuseHistogram;
use rppm_trace::op::NUM_OP_CLASSES;
use rppm_trace::{OpClass, SyncOp};
use serde::{Deserialize, Serialize};

/// Microarchitecture-independent statistics of one thread over one
/// inter-synchronization epoch.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochProfile {
    /// Micro-ops executed in the epoch.
    pub ops: u64,
    /// Instruction mix (indexed by [`OpClass::index`]).
    pub mix: [u64; NUM_OP_CLASSES],
    /// ILP curves from micro-trace analysis: `ilp[k]` is the
    /// `(window size, achievable IPC)` curve with loads costing
    /// [`crate::microtrace::LOAD_LAT_GRID`]`[k]` cycles.
    pub ilp: Vec<Vec<(u32, f64)>>,
    /// MLP structure: `(window size, mean independent trailing loads)`.
    pub mlp: Vec<(u32, f64)>,
    /// Branch predictability profile.
    pub branch: BranchProfile,
    /// Mean dependence-chain latency feeding branches (`c_res`).
    pub branch_depth: f64,
    /// Mean loads on the critical dependence path feeding a branch.
    pub branch_slice_loads: f64,
    /// Private (per-thread) reuse-distance histogram → L1/L2 miss rates.
    pub private_rd: ReuseHistogram,
    /// Global (interleaved) reuse-distance histogram → shared LLC miss rate.
    pub global_rd: ReuseHistogram,
    /// Data accesses in the epoch.
    pub accesses: u64,
    /// Stores in the epoch.
    pub stores: u64,
    /// Instruction-line reuse-distance histogram → L1I miss rate.
    pub icache_rd: ReuseHistogram,
    /// Instruction-line fetches (code-line transitions).
    pub code_fetches: u64,
}

impl EpochProfile {
    /// Approximate heap + inline size in bytes (cache memory-budget
    /// accounting; see `ProfileCache`).
    pub fn approx_bytes(&self) -> u64 {
        let ilp: usize = self
            .ilp
            .iter()
            .map(|c| std::mem::size_of::<Vec<(u32, f64)>>() + c.capacity() * 16)
            .sum();
        std::mem::size_of::<Self>() as u64
            + ilp as u64
            + (self.mlp.capacity() * 16) as u64
            + self.private_rd.approx_bytes()
            + self.global_rd.approx_bytes()
            + self.icache_rd.approx_bytes()
    }

    /// Loads in the epoch.
    pub fn loads(&self) -> u64 {
        self.mix[OpClass::Load.index()]
    }

    /// Dynamic branches in the epoch.
    pub fn branches(&self) -> u64 {
        self.mix[OpClass::Branch.index()]
    }

    /// Fraction of ops in `class`.
    pub fn mix_fraction(&self, class: OpClass) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.mix[class.index()] as f64 / self.ops as f64
        }
    }

    /// Achievable IPC for an instruction window of `window` micro-ops and
    /// an expected per-load latency of `load_lat` cycles, interpolated
    /// (log-linearly in both dimensions) on the profiled grid. Returns
    /// `None` when the epoch was too small to profile ILP.
    pub fn ilp_at(&self, window: u32, load_lat: f64) -> Option<f64> {
        use crate::microtrace::LOAD_LAT_GRID;
        if self.ilp.is_empty() {
            return None;
        }
        let grid = &LOAD_LAT_GRID;
        let lat = load_lat.clamp(grid[0] as f64, *grid.last().expect("grid") as f64);
        // Find the surrounding latitude pair.
        let mut k = 0;
        while k + 1 < grid.len() && (grid[k + 1] as f64) < lat {
            k += 1;
        }
        let lo = interp_curve(self.ilp.get(k)?, window)?;
        if k + 1 >= self.ilp.len() {
            return Some(lo);
        }
        let hi = interp_curve(&self.ilp[k + 1], window)?;
        let l0 = (grid[k] as f64).ln();
        let l1 = (grid[k + 1] as f64).ln();
        let t = ((lat.ln() - l0) / (l1 - l0)).clamp(0.0, 1.0);
        Some(lo + t * (hi - lo))
    }

    /// Mean independent trailing loads within `window` micro-ops of a load,
    /// log-linearly interpolated. Returns `None` when unprofiled.
    pub fn mlp_at(&self, window: u32) -> Option<f64> {
        interp_curve(&self.mlp, window)
    }
}

/// Log-linear interpolation on a `(window, value)` curve.
fn interp_curve(curve: &[(u32, f64)], window: u32) -> Option<f64> {
    if curve.is_empty() {
        return None;
    }
    let w = window.max(1) as f64;
    let first = curve[0];
    if w <= first.0 as f64 {
        return Some(first.1);
    }
    for pair in curve.windows(2) {
        let (w0, v0) = pair[0];
        let (w1, v1) = pair[1];
        if w <= w1 as f64 {
            let lw0 = (w0 as f64).ln();
            let lw1 = (w1 as f64).ln();
            let t = (w.ln() - lw0) / (lw1 - lw0);
            return Some(v0 + t * (v1 - v0));
        }
    }
    Some(curve.last().expect("nonempty").1)
}

/// Profile of one thread: alternating epochs and synchronization events.
///
/// The stream structure is `epochs[0], events[0], epochs[1], events[1], …,
/// events[n-1], epochs[n]` — always `epochs.len() == events.len() + 1`
/// (epochs may be empty when two events are adjacent).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThreadProfile {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochProfile>,
    /// Synchronization events separating the epochs.
    pub events: Vec<SyncOp>,
}

impl ThreadProfile {
    /// Total micro-ops across epochs.
    pub fn total_ops(&self) -> u64 {
        self.epochs.iter().map(|e| e.ops).sum()
    }

    /// Structural invariant check.
    pub fn is_consistent(&self) -> bool {
        self.epochs.len() == self.events.len() + 1
    }

    /// Approximate heap + inline size in bytes (cache memory-budget
    /// accounting).
    pub fn approx_bytes(&self) -> u64 {
        self.epochs
            .iter()
            .map(EpochProfile::approx_bytes)
            .sum::<u64>()
            + (self.events.capacity() * std::mem::size_of::<SyncOp>()) as u64
            + std::mem::size_of::<Self>() as u64
    }
}

/// How a condition variable is used, recognized from the profile
/// (Section III-A of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CondVarUsage {
    /// All-but-one threads wait and any thread can release: a barrier.
    Barrier {
        /// Barrier identifier.
        id: u32,
        /// Number of participating threads.
        participants: u32,
    },
    /// A fixed producer set broadcasts items consumed by a disjoint consumer
    /// set.
    ProducerConsumer {
        /// Queue identifier.
        queue: u32,
        /// Producer thread indices.
        producers: Vec<u32>,
        /// Consumer thread indices.
        consumers: Vec<u32>,
    },
    /// Producers and consumers overlap or roles are unclear; modeled
    /// conservatively as producer/consumer.
    Mixed {
        /// Queue identifier.
        queue: u32,
    },
}

/// The complete application profile: the one-time-cost artifact from which
/// performance on any multicore configuration can be predicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationProfile {
    /// Workload name.
    pub name: String,
    /// Per-thread profiles (index = thread id; thread 0 is the main thread).
    pub threads: Vec<ThreadProfile>,
}

impl ApplicationProfile {
    /// Number of threads profiled.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total micro-ops across all threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(ThreadProfile::total_ops).sum()
    }

    /// Checks structural invariants of every thread profile.
    pub fn is_consistent(&self) -> bool {
        self.threads.iter().all(ThreadProfile::is_consistent)
    }

    /// Approximate heap + inline size in bytes — what a memory-bounded
    /// `ProfileCache` accounts a resident profile at.
    pub fn approx_bytes(&self) -> u64 {
        self.threads
            .iter()
            .map(ThreadProfile::approx_bytes)
            .sum::<u64>()
            + (self.name.capacity() + std::mem::size_of::<Self>()) as u64
    }

    /// Dynamic synchronization-event counts by paper category (Table III).
    pub fn sync_event_counts(&self) -> (u64, u64, u64) {
        let mut cs = 0;
        let mut bar = 0;
        let mut cond = 0;
        for th in &self.threads {
            for ev in &th.events {
                match ev.category() {
                    rppm_trace::sync::SyncCategory::CriticalSection => {
                        // Acquisitions only — releases belong to the same
                        // critical section and would double-count it.
                        if matches!(ev, SyncOp::Lock { .. } | SyncOp::RwLock { .. }) {
                            cs += 1;
                        }
                    }
                    rppm_trace::sync::SyncCategory::Barrier => bar += 1,
                    rppm_trace::sync::SyncCategory::CondVar => cond += 1,
                    rppm_trace::sync::SyncCategory::ThreadMgmt => {}
                }
            }
        }
        (cs, bar, cond)
    }

    /// Recognizes how each condition variable is used, per the paper's
    /// classification rules: a condition variable where all-but-one threads
    /// may wait and any thread releases is a barrier; disjoint producer and
    /// consumer thread sets form a producer-consumer relationship.
    pub fn classify_cond_vars(&self) -> Vec<CondVarUsage> {
        use std::collections::BTreeMap;
        let mut cond_barriers: BTreeMap<u32, std::collections::BTreeSet<u32>> = BTreeMap::new();
        let mut producers: BTreeMap<u32, std::collections::BTreeSet<u32>> = BTreeMap::new();
        let mut consumers: BTreeMap<u32, std::collections::BTreeSet<u32>> = BTreeMap::new();
        for (tid, th) in self.threads.iter().enumerate() {
            for ev in &th.events {
                match ev {
                    SyncOp::Barrier { id, via_cond: true } => {
                        cond_barriers.entry(id.0).or_default().insert(tid as u32);
                    }
                    SyncOp::Produce { queue, .. } => {
                        producers.entry(queue.0).or_default().insert(tid as u32);
                    }
                    SyncOp::Consume { queue } => {
                        consumers.entry(queue.0).or_default().insert(tid as u32);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for (id, parts) in cond_barriers {
            out.push(CondVarUsage::Barrier {
                id,
                participants: parts.len() as u32,
            });
        }
        let queues: std::collections::BTreeSet<u32> =
            producers.keys().chain(consumers.keys()).copied().collect();
        for q in queues {
            let p = producers.get(&q).cloned().unwrap_or_default();
            let c = consumers.get(&q).cloned().unwrap_or_default();
            if !p.is_empty() && !c.is_empty() && p.is_disjoint(&c) {
                out.push(CondVarUsage::ProducerConsumer {
                    queue: q,
                    producers: p.into_iter().collect(),
                    consumers: c.into_iter().collect(),
                });
            } else {
                out.push(CondVarUsage::Mixed { queue: q });
            }
        }
        out
    }

    /// Serializes the profile to JSON (the on-disk "profile once" artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile serialization cannot fail")
    }

    /// Deserializes a profile from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BarrierId, QueueId, ThreadId};

    fn epoch(ops: u64) -> EpochProfile {
        EpochProfile {
            ops,
            ..Default::default()
        }
    }

    #[test]
    fn thread_profile_consistency() {
        let tp = ThreadProfile {
            epochs: vec![epoch(10), epoch(20)],
            events: vec![SyncOp::Barrier {
                id: BarrierId(0),
                via_cond: false,
            }],
        };
        assert!(tp.is_consistent());
        assert_eq!(tp.total_ops(), 30);

        let bad = ThreadProfile {
            epochs: vec![epoch(10)],
            events: vec![SyncOp::Barrier {
                id: BarrierId(0),
                via_cond: false,
            }],
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn interp_curve_basics() {
        let curve = vec![(16u32, 2.0), (64, 4.0), (256, 4.0)];
        assert_eq!(interp_curve(&curve, 8), Some(2.0)); // clamp below
        assert_eq!(interp_curve(&curve, 16), Some(2.0));
        assert_eq!(interp_curve(&curve, 256), Some(4.0));
        assert_eq!(interp_curve(&curve, 1024), Some(4.0)); // clamp above
        let mid = interp_curve(&curve, 32).expect("interpolates");
        assert!(mid > 2.0 && mid < 4.0, "mid {mid}");
        assert_eq!(interp_curve(&[], 32), None);
    }

    #[test]
    fn mix_fractions() {
        let mut e = epoch(100);
        e.mix[OpClass::Load.index()] = 25;
        e.mix[OpClass::Branch.index()] = 10;
        assert_eq!(e.loads(), 25);
        assert_eq!(e.branches(), 10);
        assert!((e.mix_fraction(OpClass::Load) - 0.25).abs() < 1e-12);
        assert_eq!(epoch(0).mix_fraction(OpClass::Load), 0.0);
    }

    #[test]
    fn sync_event_counts_by_category() {
        let profile = ApplicationProfile {
            name: "t".into(),
            threads: vec![ThreadProfile {
                epochs: vec![epoch(1); 6],
                events: vec![
                    SyncOp::Lock { id: 0.into() },
                    SyncOp::Unlock { id: 0.into() },
                    SyncOp::Barrier {
                        id: BarrierId(0),
                        via_cond: false,
                    },
                    SyncOp::Barrier {
                        id: BarrierId(1),
                        via_cond: true,
                    },
                    SyncOp::Produce {
                        queue: QueueId(0),
                        count: 1,
                    },
                ],
            }],
        };
        let (cs, bar, cond) = profile.sync_event_counts();
        assert_eq!(cs, 1, "only Lock counts as a critical section");
        assert_eq!(bar, 1);
        assert_eq!(cond, 2);
    }

    #[test]
    fn classify_producer_consumer() {
        let mk_events = |evs: Vec<SyncOp>| ThreadProfile {
            epochs: vec![epoch(1); evs.len() + 1],
            events: evs,
        };
        let profile = ApplicationProfile {
            name: "t".into(),
            threads: vec![
                mk_events(vec![SyncOp::Produce {
                    queue: QueueId(3),
                    count: 2,
                }]),
                mk_events(vec![SyncOp::Consume { queue: QueueId(3) }]),
                mk_events(vec![SyncOp::Barrier {
                    id: BarrierId(7),
                    via_cond: true,
                }]),
            ],
        };
        let usage = profile.classify_cond_vars();
        assert!(usage.contains(&CondVarUsage::Barrier {
            id: 7,
            participants: 1
        }));
        assert!(usage.contains(&CondVarUsage::ProducerConsumer {
            queue: 3,
            producers: vec![0],
            consumers: vec![1],
        }));
    }

    #[test]
    fn classify_mixed_roles() {
        let profile = ApplicationProfile {
            name: "t".into(),
            threads: vec![ThreadProfile {
                epochs: vec![epoch(1); 3],
                events: vec![
                    SyncOp::Produce {
                        queue: QueueId(1),
                        count: 1,
                    },
                    SyncOp::Consume { queue: QueueId(1) },
                ],
            }],
        };
        assert_eq!(
            profile.classify_cond_vars(),
            vec![CondVarUsage::Mixed { queue: 1 }]
        );
        let _ = ThreadId(0);
    }

    #[test]
    fn json_round_trip() {
        let profile = ApplicationProfile {
            name: "rt".into(),
            threads: vec![ThreadProfile {
                epochs: vec![epoch(42)],
                events: vec![],
            }],
        };
        let json = profile.to_json();
        let back = ApplicationProfile::from_json(&json).expect("parses");
        assert_eq!(profile, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ApplicationProfile::from_json("not json").is_err());
    }
}

//! Micro-trace analysis: ILP, MLP and branch-resolution depth.
//!
//! Following Van den Steen et al., fine-grained characteristics are measured
//! on sampled *micro-traces* (about a thousand consecutive micro-ops):
//!
//! * **ILP curve** — for each window size `W`, the IPC an idealized machine
//!   (infinite fetch/issue bandwidth, window of `W` in-flight ops) can
//!   sustain given the trace's register dependences and instruction
//!   latencies: `W / mean(critical path of disjoint W-windows)`.
//! * **MLP structure** — for each window size `W`, the average number of
//!   loads within the next `W` ops that are *not* (transitively) data
//!   dependent on a given load; multiplied by the predicted per-load miss
//!   probability this yields the expected miss overlap (memory-level
//!   parallelism).
//! * **Branch resolution depth** — the average dependence-chain latency from
//!   window entry to a branch's execution, i.e. the paper's `c_res`.

use rppm_trace::{MicroOp, OpClass};

/// Window sizes (in micro-ops) at which ILP and MLP are profiled.
pub const WINDOWS: [u32; 6] = [16, 32, 64, 128, 256, 512];

/// Load latencies (cycles) at which the ILP curve is evaluated. The profile
/// stays microarchitecture-independent by *parameterizing* the critical-path
/// analysis over the load latency; at prediction time the model interpolates
/// at the expected per-load latency implied by the cache model (L1 hit …
/// coherence intervention). This is how mid-level cache latencies fold into
/// the effective dispatch rate, as in the paper's Equation 1.
pub const LOAD_LAT_GRID: [u32; 5] = [3, 12, 35, 75, 250];

/// Result of analyzing one micro-trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroTraceAnalysis {
    /// Per load latency in [`LOAD_LAT_GRID`]: `(window, achievable IPC)`
    /// per profiled window size.
    pub ilp: Vec<Vec<(u32, f64)>>,
    /// `(window, mean independent trailing loads per load)`.
    pub mlp: Vec<(u32, f64)>,
    /// Mean dependence-chain latency feeding branches (cycles at nominal
    /// latencies).
    pub branch_depth: f64,
    /// Mean number of loads on the critical dependence path feeding a
    /// branch — at prediction time each contributes its expected cache
    /// latency to the branch resolution time.
    pub branch_slice_loads: f64,
    /// Micro-ops analyzed.
    pub ops: usize,
}

/// Analyzes one micro-trace (typically ~1000 consecutive ops).
pub fn analyze(trace: &[MicroOp]) -> MicroTraceAnalysis {
    let (branch_depth, branch_slice_loads) = branch_resolution(trace);
    MicroTraceAnalysis {
        ilp: LOAD_LAT_GRID
            .iter()
            .map(|&lat| ilp_curve(trace, lat as f64))
            .collect(),
        mlp: mlp_curve(trace),
        branch_depth,
        branch_slice_loads,
        ops: trace.len(),
    }
}

/// Per-class latency with a parameterized load latency.
#[inline]
fn lat_of(op: &MicroOp, load_lat: f64) -> f64 {
    if op.class == OpClass::Load {
        load_lat
    } else {
        op.class.latency() as f64
    }
}

/// Critical path (in latency units) of `ops`, dependences outside the slice
/// ignored, with loads costing `load_lat` cycles.
fn critical_path(ops: &[MicroOp], load_lat: f64) -> f64 {
    let mut depth = vec![0.0f64; ops.len()];
    let mut max = 0.0f64;
    for (i, op) in ops.iter().enumerate() {
        let mut start = 0.0f64;
        if op.src1 != 0 {
            if let Some(j) = i.checked_sub(op.src1 as usize) {
                start = start.max(depth[j]);
            }
        }
        if op.src2 != 0 {
            if let Some(j) = i.checked_sub(op.src2 as usize) {
                start = start.max(depth[j]);
            }
        }
        let d = start + lat_of(op, load_lat);
        depth[i] = d;
        max = max.max(d);
    }
    max
}

/// ILP at each profiled window size, with loads costing `load_lat` cycles.
pub fn ilp_curve(trace: &[MicroOp], load_lat: f64) -> Vec<(u32, f64)> {
    let mut out = Vec::with_capacity(WINDOWS.len());
    for &w in &WINDOWS {
        let w_us = w as usize;
        if trace.len() < w_us {
            // Use the whole trace as a single (short) window if possible.
            if trace.len() >= 4 {
                let cp = critical_path(trace, load_lat).max(1.0);
                out.push((w, trace.len() as f64 / cp));
            }
            continue;
        }
        let mut total_cp = 0.0;
        let mut windows = 0u32;
        let mut i = 0;
        while i + w_us <= trace.len() {
            total_cp += critical_path(&trace[i..i + w_us], load_lat).max(1.0);
            windows += 1;
            i += w_us;
        }
        if windows > 0 {
            out.push((w, w as f64 / (total_cp / windows as f64)));
        }
    }
    out
}

/// Mean number of independent trailing loads per load, at each window size.
pub fn mlp_curve(trace: &[MicroOp]) -> Vec<(u32, f64)> {
    let max_w = *WINDOWS.last().expect("nonempty") as usize;
    let load_positions: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, o)| o.class == OpClass::Load)
        .map(|(i, _)| i)
        .collect();
    if load_positions.is_empty() {
        return WINDOWS.iter().map(|&w| (w, 0.0)).collect();
    }

    let mut sums = [0.0f64; WINDOWS.len()];
    let mut dep = vec![false; max_w + 1];
    for &i in &load_positions {
        // Propagate transitive dependence on load i through the next max_w
        // ops; count independent loads at each window checkpoint.
        let end = (i + max_w).min(trace.len() - 1);
        for d in dep.iter_mut() {
            *d = false;
        }
        dep[0] = true;
        let mut indep_so_far = 0u32;
        let mut checkpoint = 0usize;
        for k in (i + 1)..=end {
            let rel = k - i;
            let op = &trace[k];
            let mut d = false;
            if op.src1 != 0 && (op.src1 as usize) <= rel && dep[rel - op.src1 as usize] {
                d = true;
            }
            if !d && op.src2 != 0 && (op.src2 as usize) <= rel && dep[rel - op.src2 as usize] {
                d = true;
            }
            dep[rel] = d;
            if op.class == OpClass::Load && !d {
                indep_so_far += 1;
            }
            // Record counts when crossing each window boundary.
            while checkpoint < WINDOWS.len() && rel == WINDOWS[checkpoint] as usize {
                sums[checkpoint] += indep_so_far as f64;
                checkpoint += 1;
            }
        }
        // Short tail: credit remaining checkpoints with the final count.
        while checkpoint < WINDOWS.len() {
            sums[checkpoint] += indep_so_far as f64;
            checkpoint += 1;
        }
    }
    WINDOWS
        .iter()
        .enumerate()
        .map(|(k, &w)| (w, sums[k] / load_positions.len() as f64))
        .collect()
}

/// Mean dependence-chain latency feeding branch instructions (at nominal
/// latencies) and the mean number of loads on that critical path, measured
/// in disjoint 64-op windows (the paper's branch resolution time `c_res`;
/// the load count lets the model add cache-miss latencies at prediction
/// time).
pub fn branch_resolution(trace: &[MicroOp]) -> (f64, f64) {
    // Dependence chains persist through the register file, so the window
    // here reflects how far back a chain can realistically hold up a branch
    // (roughly the dispatch backlog), not the issue-queue depth.
    const W: usize = 64;
    // Load weight used when tracing the memory-critical path: high enough
    // that any path through a potentially-missing load dominates. The
    // *depth* is still reported at nominal latencies; only the load count
    // uses the memory-weighted path (a load that misses turns its path into
    // the critical one, so this is the count that matters at prediction
    // time).
    const MEM_W: f64 = 75.0;
    let mut total = 0.0f64;
    let mut total_loads = 0.0f64;
    let mut branches = 0u64;
    let mut i = 0;
    while i < trace.len() {
        let end = (i + W).min(trace.len());
        let slice = &trace[i..end];
        let mut depth = vec![0.0f64; slice.len()];
        let mut mem_depth = vec![0.0f64; slice.len()];
        let mut path_loads = vec![0.0f64; slice.len()];
        for (k, op) in slice.iter().enumerate() {
            let mut start = 0.0f64;
            let mut mstart = 0.0f64;
            let mut loads = 0.0f64;
            for src in [op.src1, op.src2] {
                if src != 0 {
                    if let Some(j) = k.checked_sub(src as usize) {
                        start = start.max(depth[j]);
                        if mem_depth[j] > mstart {
                            mstart = mem_depth[j];
                            loads = path_loads[j];
                        }
                    }
                }
            }
            depth[k] = start + op.class.latency() as f64;
            mem_depth[k] = mstart + lat_of(op, MEM_W);
            path_loads[k] = loads + (op.class == OpClass::Load) as u64 as f64;
            if op.class == OpClass::Branch {
                total += depth[k];
                total_loads += loads;
                branches += 1;
            }
        }
        i = end;
    }
    if branches == 0 {
        (0.0, 0.0)
    } else {
        (total / branches as f64, total_loads / branches as f64)
    }
}

/// Mean dependence-chain latency feeding branches (compatibility wrapper
/// around [`branch_resolution`]).
pub fn branch_depth(trace: &[MicroOp]) -> f64 {
    branch_resolution(trace).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{AddressPattern, BlockSpec, Region};

    #[test]
    fn independent_ops_have_high_ilp() {
        let trace = BlockSpec::new(2048, 1).deps(0.0, 1.0).deps2(0.0).expand();
        let a = analyze(&trace);
        for &(w, ipc) in &a.ilp[0] {
            assert!(ipc > w as f64 / 2.0, "window {w}: ipc {ipc}");
        }
    }

    #[test]
    fn serial_chain_has_ilp_one() {
        let trace = BlockSpec::new(2048, 2).deps(1.0, 1.0).deps2(0.0).expand();
        let a = analyze(&trace);
        for &(w, ipc) in &a.ilp[0] {
            assert!(ipc < 1.3, "window {w}: ipc {ipc}");
        }
    }

    #[test]
    fn ilp_grows_with_window_for_mixed_code() {
        let trace = BlockSpec::new(4096, 3).deps(0.6, 12.0).expand();
        let a = analyze(&trace);
        let first = a.ilp[0].first().expect("has windows").1;
        let last = a.ilp[0].last().expect("has windows").1;
        assert!(
            last >= first * 0.9,
            "ILP curve should not collapse: {:?}",
            a.ilp[0]
        );
    }

    #[test]
    fn higher_load_latency_lowers_ilp() {
        let trace = BlockSpec::new(4096, 13)
            .loads(0.3)
            .deps(0.5, 3.0)
            .addr(AddressPattern::random(Region::new(0, 4096)), 1.0)
            .expand();
        let a = analyze(&trace);
        // ILP at load latency 75 must be well below ILP at latency 3.
        let fast = a.ilp[0].last().expect("curve").1;
        let slow = a.ilp[3].last().expect("curve").1;
        assert!(slow < fast * 0.6, "fast {fast} slow {slow}");
    }

    #[test]
    fn branch_slice_loads_counts_memory_feeding_branches() {
        // Branches chained directly to loads have loads on their path.
        let loady = BlockSpec::new(4096, 14)
            .loads(0.4)
            .branches(0.2)
            .deps(1.0, 1.5)
            .addr(AddressPattern::random(Region::new(0, 4096)), 1.0)
            .expand();
        let (_, slice_loads) = branch_resolution(&loady);
        assert!(slice_loads > 1.0, "loady slice loads {slice_loads}");

        let pure = BlockSpec::new(4096, 15)
            .branches(0.2)
            .deps(1.0, 1.5)
            .expand();
        let (_, none) = branch_resolution(&pure);
        assert!(none < 0.2, "pure-compute slice loads {none}");
    }

    #[test]
    fn independent_loads_give_mlp() {
        let region = Region::new(0, 1 << 20);
        let trace = BlockSpec::new(4096, 4)
            .loads(0.25)
            .deps(0.0, 1.0)
            .addr(AddressPattern::stream(region), 1.0)
            .expand();
        let a = analyze(&trace);
        // In a 128-op window with 25% loads, ~32 trailing loads, all
        // independent.
        let (w, v) = a.mlp[3];
        assert_eq!(w, 128);
        assert!(v > 20.0, "mlp@128 {v}");
    }

    #[test]
    fn chained_loads_have_no_mlp() {
        let region = Region::new(0, 1 << 20);
        let trace = BlockSpec::new(4096, 5)
            .loads(0.25)
            .deps(0.0, 1.0)
            .load_chain(1.0)
            .addr(AddressPattern::random(region), 1.0)
            .expand();
        let a = analyze(&trace);
        for &(w, v) in &a.mlp {
            assert!(
                v < 1.0,
                "window {w}: chained loads should be dependent, got {v}"
            );
        }
    }

    #[test]
    fn mlp_monotone_in_window() {
        let region = Region::new(0, 1 << 18);
        let trace = BlockSpec::new(4096, 6)
            .loads(0.2)
            .deps(0.3, 6.0)
            .addr(AddressPattern::random(region), 1.0)
            .expand();
        let a = analyze(&trace);
        let mut prev = -1.0;
        for &(w, v) in &a.mlp {
            assert!(v >= prev - 1e-9, "MLP decreased at window {w}");
            prev = v;
        }
    }

    #[test]
    fn branch_depth_zero_without_branches() {
        let trace = BlockSpec::new(512, 7).expand();
        let no_branch: Vec<_> = trace
            .iter()
            .filter(|o| o.class != OpClass::Branch)
            .cloned()
            .collect();
        assert_eq!(branch_depth(&no_branch), 0.0);
    }

    #[test]
    fn dependent_branches_resolve_later() {
        // Branches depending on long chains resolve late.
        let chained = BlockSpec::new(2048, 8)
            .branches(0.1)
            .deps(1.0, 1.0)
            .expand();
        let free = BlockSpec::new(2048, 8)
            .branches(0.1)
            .deps(0.0, 1.0)
            .expand();
        let d_chained = branch_depth(&chained);
        let d_free = branch_depth(&free);
        assert!(
            d_chained > d_free * 2.0,
            "chained {d_chained} vs free {d_free}"
        );
    }

    #[test]
    fn empty_trace_is_benign() {
        let a = analyze(&[]);
        assert!(a.ilp.iter().all(|c| c.is_empty()));
        assert_eq!(a.branch_depth, 0.0);
        assert_eq!(a.branch_slice_loads, 0.0);
        assert_eq!(a.ops, 0);
    }

    #[test]
    fn short_trace_uses_whole_slice() {
        let trace = BlockSpec::new(10, 9).expand();
        let a = analyze(&trace);
        assert!(!a.ilp.is_empty(), "short traces still yield an ILP point");
    }
}

//! Micro-trace analysis: ILP, MLP and branch-resolution depth.
//!
//! Following Van den Steen et al., fine-grained characteristics are measured
//! on sampled *micro-traces* (about a thousand consecutive micro-ops):
//!
//! * **ILP curve** — for each window size `W`, the IPC an idealized machine
//!   (infinite fetch/issue bandwidth, window of `W` in-flight ops) can
//!   sustain given the trace's register dependences and instruction
//!   latencies: `W / mean(critical path of disjoint W-windows)`.
//! * **MLP structure** — for each window size `W`, the average number of
//!   loads within the next `W` ops that are *not* (transitively) data
//!   dependent on a given load; multiplied by the predicted per-load miss
//!   probability this yields the expected miss overlap (memory-level
//!   parallelism).
//! * **Branch resolution depth** — the average dependence-chain latency from
//!   window entry to a branch's execution, i.e. the paper's `c_res`.

use rppm_trace::{MicroOp, OpClass};

/// Window sizes (in micro-ops) at which ILP and MLP are profiled.
pub const WINDOWS: [u32; 6] = [16, 32, 64, 128, 256, 512];

/// Load latencies (cycles) at which the ILP curve is evaluated. The profile
/// stays microarchitecture-independent by *parameterizing* the critical-path
/// analysis over the load latency; at prediction time the model interpolates
/// at the expected per-load latency implied by the cache model (L1 hit …
/// coherence intervention). This is how mid-level cache latencies fold into
/// the effective dispatch rate, as in the paper's Equation 1.
pub const LOAD_LAT_GRID: [u32; 5] = [3, 12, 35, 75, 250];

/// Result of analyzing one micro-trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroTraceAnalysis {
    /// Per load latency in [`LOAD_LAT_GRID`]: `(window, achievable IPC)`
    /// per profiled window size.
    pub ilp: Vec<Vec<(u32, f64)>>,
    /// `(window, mean independent trailing loads per load)`.
    pub mlp: Vec<(u32, f64)>,
    /// Mean dependence-chain latency feeding branches (cycles at nominal
    /// latencies).
    pub branch_depth: f64,
    /// Mean number of loads on the critical dependence path feeding a
    /// branch — at prediction time each contributes its expected cache
    /// latency to the branch resolution time.
    pub branch_slice_loads: f64,
    /// Micro-ops analyzed.
    pub ops: usize,
}

/// Analyzes one micro-trace (typically ~500 consecutive ops).
pub fn analyze(trace: &[MicroOp]) -> MicroTraceAnalysis {
    let (branch_depth, branch_slice_loads) = branch_resolution(trace);
    MicroTraceAnalysis {
        ilp: ilp_curves(trace),
        mlp: mlp_curve(trace),
        branch_depth,
        branch_slice_loads,
        ops: trace.len(),
    }
}

/// Per-class latency with a parameterized load latency.
#[inline]
fn lat_of(op: &MicroOp, load_lat: f64) -> f64 {
    if op.class == OpClass::Load {
        load_lat
    } else {
        op.class.latency() as f64
    }
}

/// Number of profiled load latencies.
const NLAT: usize = LOAD_LAT_GRID.len();

/// Critical path (in latency units) of `ops`, dependences outside the slice
/// ignored, computed for every [`LOAD_LAT_GRID`] latency at once. `depth`
/// is caller-provided scratch of at least `ops.len()` entries (the batched
/// lanes share one dependence-resolution pass, which is what makes the
/// per-access profiling hot path affordable).
fn critical_path_lanes(ops: &[MicroOp], depth: &mut [[f64; NLAT]]) -> [f64; NLAT] {
    let mut max = [0.0f64; NLAT];
    for (i, op) in ops.iter().enumerate() {
        let mut start = [0.0f64; NLAT];
        if op.src1 != 0 {
            if let Some(j) = i.checked_sub(op.src1 as usize) {
                for (s, d) in start.iter_mut().zip(&depth[j]) {
                    *s = s.max(*d);
                }
            }
        }
        if op.src2 != 0 {
            if let Some(j) = i.checked_sub(op.src2 as usize) {
                for (s, d) in start.iter_mut().zip(&depth[j]) {
                    *s = s.max(*d);
                }
            }
        }
        if op.class == OpClass::Load {
            for (l, (s, lat)) in start.iter_mut().zip(LOAD_LAT_GRID).enumerate() {
                let d = *s + lat as f64;
                depth[i][l] = d;
                max[l] = max[l].max(d);
            }
        } else {
            let lat = op.class.latency() as f64;
            for (l, s) in start.iter_mut().enumerate() {
                let d = *s + lat;
                depth[i][l] = d;
                max[l] = max[l].max(d);
            }
        }
    }
    max
}

/// ILP at each profiled window size, for every [`LOAD_LAT_GRID`] latency:
/// `result[k]` is the `(window, IPC)` curve with loads costing
/// `LOAD_LAT_GRID[k]` cycles.
pub fn ilp_curves(trace: &[MicroOp]) -> Vec<Vec<(u32, f64)>> {
    let mut out: Vec<Vec<(u32, f64)>> = (0..NLAT)
        .map(|_| Vec::with_capacity(WINDOWS.len()))
        .collect();
    // Enough scratch for the largest chunk (full windows) and for the
    // whole-trace fallback (trace shorter than the window).
    let mut depth =
        vec![[0.0f64; NLAT]; trace.len().min(*WINDOWS.last().expect("nonempty") as usize)];
    for &w in &WINDOWS {
        let w_us = w as usize;
        if trace.len() < w_us {
            // Use the whole trace as a single (short) window if possible.
            if trace.len() >= 4 {
                let cp = critical_path_lanes(trace, &mut depth);
                for (l, curves) in out.iter_mut().enumerate() {
                    curves.push((w, trace.len() as f64 / cp[l].max(1.0)));
                }
            }
            continue;
        }
        let mut total_cp = [0.0f64; NLAT];
        let mut windows = 0u32;
        let mut i = 0;
        while i + w_us <= trace.len() {
            let cp = critical_path_lanes(&trace[i..i + w_us], &mut depth);
            for (t, c) in total_cp.iter_mut().zip(cp) {
                *t += c.max(1.0);
            }
            windows += 1;
            i += w_us;
        }
        if windows > 0 {
            for (l, curves) in out.iter_mut().enumerate() {
                curves.push((w, w as f64 / (total_cp[l] / windows as f64)));
            }
        }
    }
    out
}

/// Mean number of independent trailing loads per load, at each window size.
///
/// Counts, for every load, the later loads within each window that are not
/// transitively data-dependent on it. Dependence is propagated as one
/// bitset per op over the trace's load indices (`dep[k]` has bit `i` set
/// iff op `k` transitively depends on load `i`), so the whole trace takes
/// one forward pass of word-ORs plus a masked popcount per (load, window)
/// — the seed's per-load re-propagation was the profiler's single largest
/// cost.
pub fn mlp_curve(trace: &[MicroOp]) -> Vec<(u32, f64)> {
    let n_loads = trace.iter().filter(|o| o.class == OpClass::Load).count();
    if n_loads == 0 {
        return WINDOWS.iter().map(|&w| (w, 0.0)).collect();
    }
    let words = n_loads.div_ceil(64);
    // dep bitsets, op-major: dep[k*words..][..words].
    let mut dep = vec![0u64; trace.len() * words];
    // Positions of loads seen so far (sorted), and one sliding lower bound
    // per window: the first earlier load within `W[wi]` ops of the current
    // op. Pair counting: sums[wi] = #{(i, k) loads, 0 < pos_k - pos_i <=
    // W[wi], k independent of i} — identical to crediting each load i with
    // its independent trailing loads at every window checkpoint.
    let mut load_pos: Vec<usize> = Vec::with_capacity(n_loads);
    let mut lower = [0usize; WINDOWS.len()];
    let mut sums = [0u64; WINDOWS.len()];
    let mut li = 0usize; // load index of the current op, if it is a load
    for (k, op) in trace.iter().enumerate() {
        let (prev, cur) = dep.split_at_mut(k * words);
        let row = &mut cur[..words];
        let mut any = false;
        if op.src1 != 0 {
            if let Some(j) = k.checked_sub(op.src1 as usize) {
                for (r, p) in row.iter_mut().zip(&prev[j * words..(j + 1) * words]) {
                    *r |= p;
                    any |= *p != 0;
                }
            }
        }
        if op.src2 != 0 {
            if let Some(j) = k.checked_sub(op.src2 as usize) {
                for (r, p) in row.iter_mut().zip(&prev[j * words..(j + 1) * words]) {
                    *r |= p;
                    any |= *p != 0;
                }
            }
        }
        if op.class == OpClass::Load {
            for (wi, &w) in WINDOWS.iter().enumerate() {
                while lower[wi] < li && k - load_pos[lower[wi]] > w as usize {
                    lower[wi] += 1;
                }
                let eligible = (li - lower[wi]) as u64;
                let dependent = if any {
                    count_bits_in_range(row, lower[wi], li)
                } else {
                    0
                };
                sums[wi] += eligible - dependent;
            }
            // Self bit: later ops reading this load become dependent on it.
            row[li / 64] |= 1u64 << (li % 64);
            load_pos.push(k);
            li += 1;
        }
    }
    WINDOWS
        .iter()
        .enumerate()
        .map(|(k, &w)| (w, sums[k] as f64 / n_loads as f64))
        .collect()
}

/// Population count of `row` bits in `[lo, hi)`.
#[inline]
fn count_bits_in_range(row: &[u64], lo: usize, hi: usize) -> u64 {
    if lo >= hi {
        return 0;
    }
    let (lw, lb) = (lo / 64, lo % 64);
    let (hw, hb) = (hi / 64, hi % 64);
    if lw == hw {
        // Same word and hi > lo imply 0 <= lb < hb <= 63.
        let mask = (u64::MAX >> (64 - hb)) & (u64::MAX << lb);
        return (row[lw] & mask).count_ones() as u64;
    }
    let mut n = (row[lw] & (u64::MAX << lb)).count_ones() as u64;
    for w in &row[lw + 1..hw] {
        n += w.count_ones() as u64;
    }
    if hb > 0 {
        n += (row[hw] & (u64::MAX >> (64 - hb))).count_ones() as u64;
    }
    n
}

/// Mean dependence-chain latency feeding branch instructions (at nominal
/// latencies) and the mean number of loads on that critical path, measured
/// in disjoint 64-op windows (the paper's branch resolution time `c_res`;
/// the load count lets the model add cache-miss latencies at prediction
/// time).
pub fn branch_resolution(trace: &[MicroOp]) -> (f64, f64) {
    // Dependence chains persist through the register file, so the window
    // here reflects how far back a chain can realistically hold up a branch
    // (roughly the dispatch backlog), not the issue-queue depth.
    const W: usize = 64;
    // Load weight used when tracing the memory-critical path: high enough
    // that any path through a potentially-missing load dominates. The
    // *depth* is still reported at nominal latencies; only the load count
    // uses the memory-weighted path (a load that misses turns its path into
    // the critical one, so this is the count that matters at prediction
    // time).
    const MEM_W: f64 = 75.0;
    let mut total = 0.0f64;
    let mut total_loads = 0.0f64;
    let mut branches = 0u64;
    // Fixed-size window: stack scratch, no per-window allocation.
    let mut depth = [0.0f64; W];
    let mut mem_depth = [0.0f64; W];
    let mut path_loads = [0.0f64; W];
    let mut i = 0;
    while i < trace.len() {
        let end = (i + W).min(trace.len());
        let slice = &trace[i..end];
        for (k, op) in slice.iter().enumerate() {
            let mut start = 0.0f64;
            let mut mstart = 0.0f64;
            let mut loads = 0.0f64;
            for src in [op.src1, op.src2] {
                if src != 0 {
                    if let Some(j) = k.checked_sub(src as usize) {
                        start = start.max(depth[j]);
                        if mem_depth[j] > mstart {
                            mstart = mem_depth[j];
                            loads = path_loads[j];
                        }
                    }
                }
            }
            depth[k] = start + op.class.latency() as f64;
            mem_depth[k] = mstart + lat_of(op, MEM_W);
            path_loads[k] = loads + (op.class == OpClass::Load) as u64 as f64;
            if op.class == OpClass::Branch {
                total += depth[k];
                total_loads += loads;
                branches += 1;
            }
        }
        i = end;
    }
    if branches == 0 {
        (0.0, 0.0)
    } else {
        (total / branches as f64, total_loads / branches as f64)
    }
}

/// Mean dependence-chain latency feeding branches (compatibility wrapper
/// around [`branch_resolution`]).
pub fn branch_depth(trace: &[MicroOp]) -> f64 {
    branch_resolution(trace).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{AddressPattern, BlockSpec, Region};

    #[test]
    fn independent_ops_have_high_ilp() {
        let trace = BlockSpec::new(2048, 1).deps(0.0, 1.0).deps2(0.0).expand();
        let a = analyze(&trace);
        for &(w, ipc) in &a.ilp[0] {
            assert!(ipc > w as f64 / 2.0, "window {w}: ipc {ipc}");
        }
    }

    #[test]
    fn serial_chain_has_ilp_one() {
        let trace = BlockSpec::new(2048, 2).deps(1.0, 1.0).deps2(0.0).expand();
        let a = analyze(&trace);
        for &(w, ipc) in &a.ilp[0] {
            assert!(ipc < 1.3, "window {w}: ipc {ipc}");
        }
    }

    #[test]
    fn ilp_grows_with_window_for_mixed_code() {
        let trace = BlockSpec::new(4096, 3).deps(0.6, 12.0).expand();
        let a = analyze(&trace);
        let first = a.ilp[0].first().expect("has windows").1;
        let last = a.ilp[0].last().expect("has windows").1;
        assert!(
            last >= first * 0.9,
            "ILP curve should not collapse: {:?}",
            a.ilp[0]
        );
    }

    #[test]
    fn higher_load_latency_lowers_ilp() {
        let trace = BlockSpec::new(4096, 13)
            .loads(0.3)
            .deps(0.5, 3.0)
            .addr(AddressPattern::random(Region::new(0, 4096)), 1.0)
            .expand();
        let a = analyze(&trace);
        // ILP at load latency 75 must be well below ILP at latency 3.
        let fast = a.ilp[0].last().expect("curve").1;
        let slow = a.ilp[3].last().expect("curve").1;
        assert!(slow < fast * 0.6, "fast {fast} slow {slow}");
    }

    #[test]
    fn branch_slice_loads_counts_memory_feeding_branches() {
        // Branches chained directly to loads have loads on their path.
        let loady = BlockSpec::new(4096, 14)
            .loads(0.4)
            .branches(0.2)
            .deps(1.0, 1.5)
            .addr(AddressPattern::random(Region::new(0, 4096)), 1.0)
            .expand();
        let (_, slice_loads) = branch_resolution(&loady);
        assert!(slice_loads > 1.0, "loady slice loads {slice_loads}");

        let pure = BlockSpec::new(4096, 15)
            .branches(0.2)
            .deps(1.0, 1.5)
            .expand();
        let (_, none) = branch_resolution(&pure);
        assert!(none < 0.2, "pure-compute slice loads {none}");
    }

    #[test]
    fn independent_loads_give_mlp() {
        let region = Region::new(0, 1 << 20);
        let trace = BlockSpec::new(4096, 4)
            .loads(0.25)
            .deps(0.0, 1.0)
            .addr(AddressPattern::stream(region), 1.0)
            .expand();
        let a = analyze(&trace);
        // In a 128-op window with 25% loads, ~32 trailing loads, all
        // independent.
        let (w, v) = a.mlp[3];
        assert_eq!(w, 128);
        assert!(v > 20.0, "mlp@128 {v}");
    }

    #[test]
    fn chained_loads_have_no_mlp() {
        let region = Region::new(0, 1 << 20);
        let trace = BlockSpec::new(4096, 5)
            .loads(0.25)
            .deps(0.0, 1.0)
            .load_chain(1.0)
            .addr(AddressPattern::random(region), 1.0)
            .expand();
        let a = analyze(&trace);
        for &(w, v) in &a.mlp {
            assert!(
                v < 1.0,
                "window {w}: chained loads should be dependent, got {v}"
            );
        }
    }

    #[test]
    fn mlp_monotone_in_window() {
        let region = Region::new(0, 1 << 18);
        let trace = BlockSpec::new(4096, 6)
            .loads(0.2)
            .deps(0.3, 6.0)
            .addr(AddressPattern::random(region), 1.0)
            .expand();
        let a = analyze(&trace);
        let mut prev = -1.0;
        for &(w, v) in &a.mlp {
            assert!(v >= prev - 1e-9, "MLP decreased at window {w}");
            prev = v;
        }
    }

    #[test]
    fn branch_depth_zero_without_branches() {
        let trace = BlockSpec::new(512, 7).expand();
        let no_branch: Vec<_> = trace
            .iter()
            .filter(|o| o.class != OpClass::Branch)
            .cloned()
            .collect();
        assert_eq!(branch_depth(&no_branch), 0.0);
    }

    #[test]
    fn dependent_branches_resolve_later() {
        // Branches depending on long chains resolve late.
        let chained = BlockSpec::new(2048, 8)
            .branches(0.1)
            .deps(1.0, 1.0)
            .expand();
        let free = BlockSpec::new(2048, 8)
            .branches(0.1)
            .deps(0.0, 1.0)
            .expand();
        let d_chained = branch_depth(&chained);
        let d_free = branch_depth(&free);
        assert!(
            d_chained > d_free * 2.0,
            "chained {d_chained} vs free {d_free}"
        );
    }

    #[test]
    fn empty_trace_is_benign() {
        let a = analyze(&[]);
        assert!(a.ilp.iter().all(|c| c.is_empty()));
        assert_eq!(a.branch_depth, 0.0);
        assert_eq!(a.branch_slice_loads, 0.0);
        assert_eq!(a.ops, 0);
    }

    #[test]
    fn short_trace_uses_whole_slice() {
        let trace = BlockSpec::new(10, 9).expand();
        let a = analyze(&trace);
        assert!(!a.ilp.is_empty(), "short traces still yield an ILP point");
    }
}

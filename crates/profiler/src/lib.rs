//! Microarchitecture-independent workload profiler (the Pin-tool analog).
//!
//! [`profile()`] replays a multi-threaded workload once on a unit-cost
//! abstract machine and collects everything RPPM needs to predict its
//! performance on *any* multicore configuration:
//!
//! * per-thread, per-epoch instruction mix, ILP and MLP structure
//!   (micro-trace analysis), branch predictability (outcome entropy) and
//!   branch resolution depth;
//! * private and global reuse-distance histograms (StatStack multi-threaded
//!   extension) including cold misses and coherence write-invalidations;
//! * instruction-line reuse distances (I-cache behaviour);
//! * the synchronization-event sequence delimiting the epochs.
//!
//! The resulting [`ApplicationProfile`] is serializable: collect once, then
//! feed to `rppm-core` to predict any number of machine configurations —
//! the paper's headline workflow.
//!
//! # Example
//!
//! ```
//! use rppm_trace::{ProgramBuilder, BlockSpec};
//! use rppm_profiler::profile;
//!
//! let mut b = ProgramBuilder::new("demo", 2);
//! b.spawn_workers();
//! b.thread(1u32).block(BlockSpec::new(5_000, 3).loads(0.1).addr(
//!     rppm_trace::AddressPattern::stream(rppm_trace::Region::new(0, 128)), 1.0));
//! b.join_workers();
//!
//! let prof = profile(&b.build());
//! assert_eq!(prof.num_threads(), 2);
//! assert!(prof.is_consistent());
//! let json = prof.to_json(); // the on-disk, collect-once artifact
//! assert!(json.contains("demo"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod curves;
pub mod logical;
pub mod microtrace;
pub mod profile;

pub use cache::{CacheBudget, ProfileCache, ProfileKey, ProfiledWorkload};
pub use curves::{ln_window, EpochCurves};
pub use logical::{profile, profile_call_count, profile_replay, profile_source};
pub use microtrace::{analyze, MicroTraceAnalysis, WINDOWS};
pub use profile::{ApplicationProfile, CondVarUsage, EpochProfile, ThreadProfile};

//! The profile-once cache: RPPM's amortization engine as a public type.
//!
//! The paper's headline workflow is *profile once, predict many*: one
//! microarchitecture-independent [`ApplicationProfile`] per workload,
//! amortized over every machine configuration it is evaluated on.
//! [`ProfileCache`] enforces that contract process-wide — each
//! [`ProfileKey`] is built and profiled exactly once per cache, no matter
//! how many callers, experiments or worker threads ask for it. Concurrent
//! requests for the same key block on the single profiling run; requests
//! for different keys proceed in parallel.
//!
//! The cache is thread-safe and lives behind an `Arc` in the `rppm`
//! session facade; the `rppm-bench` experiment engine shares the same
//! type, so a harness run and a library caller observe the one contract.

use crate::logical::profile;
use crate::profile::ApplicationProfile;
use rppm_trace::Program;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of a profiled workload.
///
/// Generated workloads are identified by name and generation parameters
/// (same key ⇒ bit-identical program and profile); externally collected
/// traces by content fingerprint (their dynamic stream is fixed, so
/// generation parameters are deliberately not part of the key). The two
/// namespaces never collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProfileKey {
    /// A workload produced by a deterministic generator (the benchmark
    /// catalog, or any caller-defined parametric source).
    Generated {
        /// Generator name.
        name: String,
        /// Work-scale multiplier, as raw bits (hashable, exact).
        scale_bits: u64,
        /// Generation seed.
        seed: u64,
    },
    /// A fixed program, identified by its content fingerprint
    /// (see `rppm_trace::program_fingerprint`).
    Fingerprint {
        /// Content fingerprint, stable across containers and re-imports.
        fingerprint: u64,
    },
}

impl ProfileKey {
    /// Key for a generated workload.
    pub fn generated(name: impl Into<String>, scale: f64, seed: u64) -> Self {
        ProfileKey::Generated {
            name: name.into(),
            scale_bits: scale.to_bits(),
            seed,
        }
    }

    /// Key for a fixed program, fingerprinted by content.
    pub fn fingerprint(fingerprint: u64) -> Self {
        ProfileKey::Fingerprint { fingerprint }
    }
}

/// A workload built and profiled once, shared (via [`Arc`]) by every
/// caller that predicts or simulates it.
#[derive(Debug, Clone)]
pub struct ProfiledWorkload {
    /// The program (needed for golden-reference simulation).
    pub program: Arc<Program>,
    /// The one-time microarchitecture-independent profile.
    pub profile: Arc<ApplicationProfile>,
}

/// Shared profile store: each [`ProfileKey`] is built and profiled exactly
/// once per cache, no matter how many experiments, configurations, or
/// worker threads ask for it.
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<HashMap<ProfileKey, Arc<OnceLock<ProfiledWorkload>>>>,
    lookups: AtomicUsize,
    profiled: AtomicUsize,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the profiled workload for `key`, materializing the program
    /// with `build` and profiling it on first use. Concurrent callers for
    /// the same key block until the single profiling run finishes; callers
    /// for different keys proceed in parallel.
    pub fn get_or_profile(
        &self,
        key: ProfileKey,
        build: impl FnOnce() -> Arc<Program>,
    ) -> ProfiledWorkload {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut map = self.map.lock().expect("cache lock");
            Arc::clone(map.entry(key).or_default())
        };
        slot.get_or_init(|| {
            // Release pairs with the Acquire load in `profiles_collected`:
            // a reader that sees this increment also sees the `lookups`
            // increment above, keeping `hits()` non-negative.
            self.profiled.fetch_add(1, Ordering::Release);
            let program = build();
            let prof = Arc::new(profile(&program));
            ProfiledWorkload {
                program,
                profile: prof,
            }
        })
        .clone()
    }

    /// Number of distinct workloads profiled so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups served (hits + profiling runs).
    pub fn lookups(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups satisfied from an already-collected profile — the
    /// amortization the paper's "profile once, predict many" promises.
    pub fn hits(&self) -> usize {
        // Every miss increments `lookups` before `profiled`, and the
        // Acquire/Release pairing on `profiled` makes that prior lookup
        // visible here — so reading `profiled` first keeps the difference
        // non-negative; saturating_sub is a second line of defense.
        let profiled = self.profiles_collected();
        self.lookups().saturating_sub(profiled)
    }

    /// Number of profiling runs this cache has performed.
    pub fn profiles_collected(&self) -> usize {
        self.profiled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BlockSpec, ProgramBuilder};

    fn tiny(name: &str, seed: u64) -> Arc<Program> {
        let mut b = ProgramBuilder::new(name, 2);
        b.spawn_workers();
        b.thread(1u32).block(BlockSpec::new(500, seed));
        b.join_workers();
        Arc::new(b.build())
    }

    #[test]
    fn same_key_profiles_once() {
        let cache = ProfileCache::new();
        let key = ProfileKey::generated("t", 0.5, 1);
        let a = cache.get_or_profile(key.clone(), || tiny("t", 1));
        let b = cache.get_or_profile(key, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a.profile, &b.profile));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.profiles_collected(), 1);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn distinct_keys_profile_separately() {
        let cache = ProfileCache::new();
        cache.get_or_profile(ProfileKey::generated("t", 0.5, 1), || tiny("t", 1));
        cache.get_or_profile(ProfileKey::generated("t", 0.5, 2), || tiny("t", 2));
        cache.get_or_profile(ProfileKey::fingerprint(42), || tiny("t", 1));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.profiles_collected(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn scale_and_seed_are_part_of_generated_identity() {
        assert_ne!(
            ProfileKey::generated("t", 0.5, 1),
            ProfileKey::generated("t", 0.25, 1)
        );
        assert_ne!(
            ProfileKey::generated("t", 0.5, 1),
            ProfileKey::generated("t", 0.5, 2)
        );
        assert_eq!(ProfileKey::fingerprint(7), ProfileKey::fingerprint(7));
    }
}

//! The profile-once cache: RPPM's amortization engine as a public type.
//!
//! The paper's headline workflow is *profile once, predict many*: one
//! microarchitecture-independent [`ApplicationProfile`] per workload,
//! amortized over every machine configuration it is evaluated on.
//! [`ProfileCache`] enforces that contract process-wide — each
//! [`ProfileKey`] is built and profiled exactly once per cache, no matter
//! how many callers, experiments or worker threads ask for it. Concurrent
//! requests for the same key block on the single profiling run; requests
//! for different keys proceed in parallel.
//!
//! # Memory bounds
//!
//! By default the cache is **unbounded** — the right behavior for batch
//! runs (an `ExperimentPlan` touches each workload a handful of times and
//! exits). A long-lived process (`rppm serve`) instead constructs the
//! cache with a [`CacheBudget`]: a cap on resident entries and/or
//! approximate resident bytes. When a freshly collected profile pushes the
//! cache over its budget, least-recently-used **resident** entries are
//! evicted until the budget holds again ([`ProfileCache::evictions`]
//! counts them). Three guarantees survive eviction:
//!
//! * **Handles stay valid.** Eviction drops the cache's reference, not the
//!   caller's: a [`ProfiledWorkload`] obtained earlier keeps its `Arc`s
//!   alive for as long as the caller holds them.
//! * **In-flight keys still coalesce.** A key currently being profiled is
//!   never evicted, so concurrent requests — including requests for a key
//!   that was evicted and is being re-profiled — always fold onto one
//!   profiling run.
//! * **Re-profiling is bit-identical.** Builders are deterministic, so an
//!   evicted-then-re-requested key yields the same bytes it did the first
//!   time; eviction changes cost, never results.
//!
//! The cache is thread-safe and lives behind an `Arc` in the `rppm`
//! session facade; the `rppm-bench` experiment engine shares the same
//! type, so a harness run and a library caller observe the one contract.

use crate::logical::profile;
use crate::profile::ApplicationProfile;
use rppm_trace::Program;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of a profiled workload.
///
/// Generated workloads are identified by name and generation parameters
/// (same key ⇒ bit-identical program and profile); externally collected
/// traces by content fingerprint (their dynamic stream is fixed, so
/// generation parameters are deliberately not part of the key). The two
/// namespaces never collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProfileKey {
    /// A workload produced by a deterministic generator (the benchmark
    /// catalog, or any caller-defined parametric source).
    Generated {
        /// Generator name.
        name: String,
        /// Work-scale multiplier, as raw bits (hashable, exact).
        scale_bits: u64,
        /// Generation seed.
        seed: u64,
    },
    /// A fixed program, identified by its content fingerprint
    /// (see `rppm_trace::program_fingerprint`).
    Fingerprint {
        /// Content fingerprint, stable across containers and re-imports.
        fingerprint: u64,
    },
}

impl ProfileKey {
    /// Key for a generated workload.
    pub fn generated(name: impl Into<String>, scale: f64, seed: u64) -> Self {
        ProfileKey::Generated {
            name: name.into(),
            scale_bits: scale.to_bits(),
            seed,
        }
    }

    /// Key for a fixed program, fingerprinted by content.
    pub fn fingerprint(fingerprint: u64) -> Self {
        ProfileKey::Fingerprint { fingerprint }
    }
}

/// A workload built and profiled once, shared (via [`Arc`]) by every
/// caller that predicts or simulates it.
#[derive(Debug, Clone)]
pub struct ProfiledWorkload {
    /// The program (needed for golden-reference simulation).
    pub program: Arc<Program>,
    /// The one-time microarchitecture-independent profile.
    pub profile: Arc<ApplicationProfile>,
}

impl ProfiledWorkload {
    /// Approximate resident size of this entry (program + profile heap),
    /// the unit [`CacheBudget::max_bytes`] is accounted in.
    pub fn approx_bytes(&self) -> u64 {
        self.program.approx_bytes() + self.profile.approx_bytes()
    }
}

/// Memory budget for a [`ProfileCache`]: maximum resident entries and/or
/// approximate resident bytes (see [`ProfiledWorkload::approx_bytes`]).
///
/// The default ([`CacheBudget::unbounded`]) imposes no limit — existing
/// batch callers keep the grow-only behavior. Either cap may be set alone;
/// when both are set, exceeding either triggers eviction. A bound is
/// enforced over **resident** (fully profiled) entries: profiling runs in
/// flight are not counted (their size is unknown until they finish) and
/// are never evicted, preserving the profile-once coalescing guarantee.
/// The most recently completed entry itself is always retained, so a
/// single profile larger than `max_bytes` still serves its callers — the
/// cache then holds that one oversized entry alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum resident entries, or `None` for unlimited.
    pub max_entries: Option<usize>,
    /// Maximum approximate resident bytes, or `None` for unlimited.
    pub max_bytes: Option<u64>,
}

impl CacheBudget {
    /// No limits: the cache only grows (the pre-existing behavior).
    pub fn unbounded() -> Self {
        CacheBudget::default()
    }

    /// Caps the number of resident profiles.
    pub fn entries(n: usize) -> Self {
        CacheBudget {
            max_entries: Some(n),
            max_bytes: None,
        }
    }

    /// Caps the approximate resident bytes.
    pub fn bytes(n: u64) -> Self {
        CacheBudget {
            max_entries: None,
            max_bytes: Some(n),
        }
    }

    /// Adds an entry cap to this budget.
    pub fn with_entries(mut self, n: usize) -> Self {
        self.max_entries = Some(n);
        self
    }

    /// Adds a byte cap to this budget.
    pub fn with_bytes(mut self, n: u64) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Whether this budget imposes no limit.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// One cache slot: the shared profiling cell plus bookkeeping for LRU
/// eviction and byte accounting.
#[derive(Debug)]
struct Entry {
    slot: Arc<OnceLock<ProfiledWorkload>>,
    /// Monotonic use tick; smallest = least recently used.
    last_used: u64,
    /// Approximate bytes once resident; `None` while profiling is in
    /// flight (in-flight entries are uncounted and unevictable).
    bytes: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<ProfileKey, Entry>,
    tick: u64,
    resident: usize,
    resident_bytes: u64,
}

impl Inner {
    /// Evicts least-recently-used resident entries until the budget holds,
    /// never touching in-flight entries or `keep` (the entry that just
    /// became resident). Returns the number of evictions.
    fn enforce(&mut self, budget: &CacheBudget, keep: &ProfileKey) -> usize {
        let over = |inner: &Inner| {
            budget.max_entries.is_some_and(|m| inner.resident > m)
                || budget.max_bytes.is_some_and(|m| inner.resident_bytes > m)
        };
        let mut evicted = 0;
        while over(self) {
            let victim = self
                .map
                .iter()
                .filter(|(k, e)| e.bytes.is_some() && *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                // Only `keep` (or in-flight entries) remain: an oversized
                // single profile is retained rather than thrashing.
                break;
            };
            let entry = self.map.remove(&victim).expect("victim exists");
            self.resident -= 1;
            self.resident_bytes -= entry.bytes.unwrap_or(0);
            evicted += 1;
        }
        evicted
    }
}

/// Shared profile store: each [`ProfileKey`] is built and profiled exactly
/// once per cache, no matter how many experiments, configurations, or
/// worker threads ask for it. Optionally memory-bounded — see
/// [`CacheBudget`] and [`ProfileCache::with_budget`].
#[derive(Debug, Default)]
pub struct ProfileCache {
    inner: Mutex<Inner>,
    budget: CacheBudget,
    lookups: AtomicUsize,
    profiled: AtomicUsize,
    evictions: AtomicUsize,
}

impl ProfileCache {
    /// Creates an empty, unbounded cache (the batch-run default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache enforcing `budget` (see [`CacheBudget`]).
    pub fn with_budget(budget: CacheBudget) -> Self {
        ProfileCache {
            budget,
            ..Self::default()
        }
    }

    /// The budget this cache enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Returns the profiled workload for `key`, materializing the program
    /// with `build` and profiling it on first use. Concurrent callers for
    /// the same key block until the single profiling run finishes; callers
    /// for different keys proceed in parallel. Under a [`CacheBudget`],
    /// completing a fresh profile may evict least-recently-used resident
    /// entries (the returned workload itself is never the victim of its
    /// own insertion).
    pub fn get_or_profile(
        &self,
        key: ProfileKey,
        build: impl FnOnce() -> Arc<Program>,
    ) -> ProfiledWorkload {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.map.entry(key.clone()).or_insert_with(|| Entry {
                slot: Arc::default(),
                last_used: tick,
                bytes: None,
            });
            entry.last_used = tick;
            Arc::clone(&entry.slot)
        };
        let mut fresh = false;
        let workload = slot
            .get_or_init(|| {
                // Release pairs with the Acquire load in
                // `profiles_collected`: a reader that sees this increment
                // also sees the `lookups` increment above, keeping `hits()`
                // non-negative.
                self.profiled.fetch_add(1, Ordering::Release);
                fresh = true;
                let program = build();
                let prof = Arc::new(profile(&program));
                ProfiledWorkload {
                    program,
                    profile: prof,
                }
            })
            .clone();
        if fresh {
            self.mark_resident(&key, &slot, &workload);
        }
        workload
    }

    /// Returns the cached workload for `key` if (and only if) its profile
    /// is already resident, refreshing its LRU position. Never profiles;
    /// does not touch the lookup/hit counters (use [`ProfileCache::
    /// get_or_profile`] for the counted amortization path). This is the
    /// serving fast path: answer instantly on a hit, queue a profiling job
    /// on a miss.
    pub fn peek(&self, key: &ProfileKey) -> Option<ProfiledWorkload> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        entry.last_used = tick;
        let workload = entry.slot.get()?.clone();
        Some(workload)
    }

    /// Records a freshly profiled entry as resident and enforces the
    /// budget. The entry may already have been evicted (and even replaced)
    /// by a concurrent completion; only the slot this caller actually
    /// filled is accounted.
    fn mark_resident(
        &self,
        key: &ProfileKey,
        slot: &Arc<OnceLock<ProfiledWorkload>>,
        workload: &ProfiledWorkload,
    ) {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(entry) = inner.map.get_mut(key) {
            if Arc::ptr_eq(&entry.slot, slot) && entry.bytes.is_none() {
                let bytes = workload.approx_bytes();
                entry.bytes = Some(bytes);
                inner.resident += 1;
                inner.resident_bytes += bytes;
            }
        }
        if !self.budget.is_unbounded() {
            let evicted = inner.enforce(&self.budget, key);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Number of distinct workload slots currently tracked (resident
    /// profiles plus profiling runs in flight).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of fully profiled entries currently resident (what
    /// [`CacheBudget::max_entries`] bounds).
    pub fn resident(&self) -> usize {
        self.inner.lock().expect("cache lock").resident
    }

    /// Approximate bytes held by resident entries (what
    /// [`CacheBudget::max_bytes`] bounds).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("cache lock").resident_bytes
    }

    /// Total lookups served (hits + profiling runs).
    pub fn lookups(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups satisfied from an already-collected profile — the
    /// amortization the paper's "profile once, predict many" promises.
    pub fn hits(&self) -> usize {
        // Every miss increments `lookups` before `profiled`, and the
        // Acquire/Release pairing on `profiled` makes that prior lookup
        // visible here — so reading `profiled` first keeps the difference
        // non-negative; saturating_sub is a second line of defense.
        let profiled = self.profiles_collected();
        self.lookups().saturating_sub(profiled)
    }

    /// Number of profiling runs this cache has performed.
    pub fn profiles_collected(&self) -> usize {
        self.profiled.load(Ordering::Acquire)
    }

    /// Number of resident entries evicted to hold the [`CacheBudget`]
    /// (always 0 for unbounded caches).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::{BlockSpec, ProgramBuilder};

    fn tiny(name: &str, seed: u64) -> Arc<Program> {
        let mut b = ProgramBuilder::new(name, 2);
        b.spawn_workers();
        b.thread(1u32).block(BlockSpec::new(500, seed));
        b.join_workers();
        Arc::new(b.build())
    }

    #[test]
    fn same_key_profiles_once() {
        let cache = ProfileCache::new();
        let key = ProfileKey::generated("t", 0.5, 1);
        let a = cache.get_or_profile(key.clone(), || tiny("t", 1));
        let b = cache.get_or_profile(key, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a.profile, &b.profile));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.profiles_collected(), 1);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn distinct_keys_profile_separately() {
        let cache = ProfileCache::new();
        cache.get_or_profile(ProfileKey::generated("t", 0.5, 1), || tiny("t", 1));
        cache.get_or_profile(ProfileKey::generated("t", 0.5, 2), || tiny("t", 2));
        cache.get_or_profile(ProfileKey::fingerprint(42), || tiny("t", 1));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.profiles_collected(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn scale_and_seed_are_part_of_generated_identity() {
        assert_ne!(
            ProfileKey::generated("t", 0.5, 1),
            ProfileKey::generated("t", 0.25, 1)
        );
        assert_ne!(
            ProfileKey::generated("t", 0.5, 1),
            ProfileKey::generated("t", 0.5, 2)
        );
        assert_eq!(ProfileKey::fingerprint(7), ProfileKey::fingerprint(7));
    }

    #[test]
    fn entry_budget_evicts_least_recently_used() {
        let cache = ProfileCache::with_budget(CacheBudget::entries(2));
        let k = |s: u64| ProfileKey::generated("t", 0.5, s);
        cache.get_or_profile(k(1), || tiny("t", 1));
        cache.get_or_profile(k(2), || tiny("t", 2));
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.get_or_profile(k(1), || panic!("cached"));
        cache.get_or_profile(k(3), || tiny("t", 3));
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.evictions(), 1);
        // Key 1 survived; key 2 was evicted and must rebuild.
        cache.get_or_profile(k(1), || panic!("still cached"));
        let rebuilt = std::sync::atomic::AtomicUsize::new(0);
        cache.get_or_profile(k(2), || {
            rebuilt.fetch_add(1, Ordering::Relaxed);
            tiny("t", 2)
        });
        assert_eq!(rebuilt.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn byte_budget_holds_and_keeps_newest_oversized_entry() {
        // A budget smaller than any single profile: each insertion evicts
        // everything else but retains itself.
        let cache = ProfileCache::with_budget(CacheBudget::bytes(1));
        let k = |s: u64| ProfileKey::generated("t", 0.5, s);
        let a = cache.get_or_profile(k(1), || tiny("t", 1));
        assert!(a.approx_bytes() > 1);
        assert_eq!(cache.resident(), 1, "oversized entry retained");
        cache.get_or_profile(k(2), || tiny("t", 2));
        assert_eq!(cache.resident(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn eviction_and_reprofile_are_bit_identical() {
        let cache = ProfileCache::with_budget(CacheBudget::entries(1));
        let k = |s: u64| ProfileKey::generated("t", 0.5, s);
        let first = cache.get_or_profile(k(1), || tiny("t", 1));
        cache.get_or_profile(k(2), || tiny("t", 2)); // evicts key 1
        assert_eq!(cache.evictions(), 1);
        let again = cache.get_or_profile(k(1), || tiny("t", 1));
        assert!(!Arc::ptr_eq(&first.profile, &again.profile));
        assert_eq!(
            first.profile.to_json(),
            again.profile.to_json(),
            "re-profile after eviction is bit-identical"
        );
        // The evicted caller's handle stayed valid throughout.
        assert_eq!(first.program.name, "t");
    }

    #[test]
    fn peek_never_profiles() {
        let cache = ProfileCache::new();
        let key = ProfileKey::generated("t", 0.5, 1);
        assert!(cache.peek(&key).is_none());
        assert_eq!(cache.profiles_collected(), 0);
        assert_eq!(cache.lookups(), 0, "peek is uncounted");
        cache.get_or_profile(key.clone(), || tiny("t", 1));
        assert!(cache.peek(&key).is_some());
        assert_eq!(cache.profiles_collected(), 1);
    }

    #[test]
    fn peek_refreshes_lru_position() {
        let cache = ProfileCache::with_budget(CacheBudget::entries(2));
        let k = |s: u64| ProfileKey::generated("t", 0.5, s);
        cache.get_or_profile(k(1), || tiny("t", 1));
        cache.get_or_profile(k(2), || tiny("t", 2));
        assert!(cache.peek(&k(1)).is_some(), "refreshes key 1");
        cache.get_or_profile(k(3), || tiny("t", 3));
        assert!(cache.peek(&k(1)).is_some(), "key 1 survived");
        assert!(cache.peek(&k(2)).is_none(), "key 2 was the LRU victim");
    }
}

//! StatStack: statistical cache modeling from reuse distances.
//!
//! This crate implements the cache-locality substrate RPPM builds on:
//!
//! * [`ReuseHistogram`] — a log-bucketed histogram of *reuse distances* (the
//!   number of memory accesses between two accesses to the same cache line),
//!   the cheap-to-collect, microarchitecture-independent locality statistic
//!   of Eklöv & Hagersten's StatStack (ISPASS 2010). Cold accesses (first
//!   touch) and coherence-invalidated reuses (infinite distance) are tracked
//!   separately.
//! * [`StackDistanceModel`] — converts reuse distances into expected *stack
//!   distances* (unique lines touched in between) and predicts the miss rate
//!   of an LRU cache of a given capacity. The conversion uses the closed
//!   form `SD(r) = r − (1/N)·Σᵢ mᵢ·max(0, r − dᵢ)`, the expectation of the
//!   classic "count intervening accesses whose own reuse escapes the window"
//!   argument.
//! * [`MultiThreadCollector`] — the multi-threaded extension (Åhlman 2016)
//!   used by RPPM: it maintains *per-thread* counters (private-cache
//!   locality) and a *global* counter shared by all threads (shared-cache
//!   locality, capturing positive and negative interference), and detects
//!   write invalidations (another thread wrote the line between two accesses
//!   by this thread ⇒ infinite private reuse distance ⇒ coherence miss).
//!
//! # Example
//!
//! ```
//! use rppm_statstack::{ReuseHistogram, StackDistanceModel};
//!
//! // A loop over 100 lines: every reuse distance is 99 intervening accesses.
//! let mut h = ReuseHistogram::new();
//! for _ in 0..10_000u32 { h.record(99); }
//! h.record_cold(100);
//! let model = StackDistanceModel::new(&h);
//! // A 128-line cache holds the loop: only cold misses remain.
//! assert!(model.miss_rate(128) < 0.02);
//! // A 64-line cache thrashes.
//! assert!(model.miss_rate(64) > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collect;
pub mod hist;
pub mod intern;
pub mod model;

pub use collect::{EpochLocality, MultiThreadCollector, SingleThreadCollector};
pub use hist::ReuseHistogram;
pub use intern::{AddrInterner, FxHashMap, FxHasher, ReuseTracker};
pub use model::StackDistanceModel;

//! Reuse-distance → stack-distance conversion and LRU miss-rate prediction.

use crate::hist::ReuseHistogram;

/// StatStack's statistical LRU cache model, built from a [`ReuseHistogram`].
///
/// For an access with reuse distance `r` (number of intervening accesses),
/// the expected number of *unique* lines touched in between — the stack
/// distance — is the expected number of intervening accesses that are the
/// last access to their line within the window. An intervening access at
/// position `i` (0-based, window length `r`) is "last" when its own forward
/// reuse distance exceeds `r − i`. Approximating each access's forward reuse
/// by an i.i.d. draw from the aggregate distribution `D`:
///
/// ```text
/// SD(r) = Σ_{j=0}^{r−1} P(D > j) = r − (1/N)·Σᵢ mᵢ·max(0, r − dᵢ)
/// ```
///
/// where `(dᵢ, mᵢ)` are the histogram buckets and `N` the total access count
/// (cold/invalidated accesses have `D = ∞` and thus never truncate the sum).
/// `SD` is monotonically non-decreasing and `SD(r) ≤ r`, so for a cache of
/// capacity `C` lines there is a unique threshold reuse distance `r*` with
/// `SD(r*) ≥ C`; every access with `D ≥ r*` misses, plus all cold and
/// invalidated accesses.
///
/// [`StackDistanceModel::miss_rate`] uses StatStack's standard
/// fully-associative assumption; [`StackDistanceModel::miss_rate_assoc`]
/// adds Hill & Smith's set-mapping conflict model on top.
#[derive(Debug, Clone)]
pub struct StackDistanceModel {
    /// Sorted finite buckets: (distance, count).
    buckets: Vec<(u64, u64)>,
    /// Suffix counts: `suffix[i]` = number of finite accesses with distance
    /// ≥ `buckets[i].0`.
    suffix: Vec<u64>,
    total: u64,
    always_miss: u64,
}

impl StackDistanceModel {
    /// Builds the model from a histogram.
    pub fn new(hist: &ReuseHistogram) -> Self {
        let buckets: Vec<(u64, u64)> = hist.iter().collect();
        let mut suffix = vec![0u64; buckets.len()];
        let mut acc = 0u64;
        for i in (0..buckets.len()).rev() {
            acc += buckets[i].1;
            suffix[i] = acc;
        }
        StackDistanceModel {
            buckets,
            suffix,
            total: hist.total(),
            always_miss: hist.cold + hist.invalidated,
        }
    }

    /// Total accesses underlying the model.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Expected stack distance for reuse distance `r`.
    ///
    /// Returns 0 for an empty model.
    pub fn stack_distance(&self, r: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let r_f = r as f64;
        let mut truncated = 0.0;
        for &(d, m) in &self.buckets {
            if d >= r {
                break;
            }
            truncated += m as f64 * (r_f - d as f64);
        }
        (r_f - truncated / self.total as f64).max(0.0)
    }

    /// Predicted miss rate (misses per access) for a fully-associative LRU
    /// cache of `capacity_lines` lines.
    ///
    /// Includes cold and coherence-invalidated accesses, which miss at any
    /// capacity. Returns 0 for an empty model.
    pub fn miss_rate(&self, capacity_lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if capacity_lines == 0 {
            return 1.0;
        }
        let r_star = self.threshold_reuse(capacity_lines);
        let finite_misses = self.count_at_least(r_star);
        (finite_misses + self.always_miss) as f64 / self.total as f64
    }

    /// Smallest reuse distance whose expected stack distance reaches
    /// `capacity` (accesses at or beyond it miss).
    fn threshold_reuse(&self, capacity: u64) -> u64 {
        // SD(r) <= r, so r* >= capacity; SD is monotone: binary search.
        let mut lo = capacity;
        let mut hi = capacity.max(1);
        // Exponential search for an upper bound.
        while self.stack_distance(hi) < capacity as f64 {
            if hi > (1 << 62) {
                return u64::MAX; // cache bigger than any observed footprint
            }
            hi *= 2;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.stack_distance(mid) >= capacity as f64 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Number of finite accesses with reuse distance ≥ `r`.
    fn count_at_least(&self, r: u64) -> u64 {
        if r == u64::MAX {
            return 0;
        }
        // First bucket with distance >= r.
        let idx = self.buckets.partition_point(|&(d, _)| d < r);
        self.suffix.get(idx).copied().unwrap_or(0)
    }

    /// Predicted misses (absolute count) at the given capacity.
    pub fn misses(&self, capacity_lines: u64) -> f64 {
        self.miss_rate(capacity_lines) * self.total as f64
    }

    /// Predicted miss rate for a *set-associative* LRU cache with `sets`
    /// sets of `assoc` ways.
    ///
    /// Fully-associative LRU misses exactly when the stack distance reaches
    /// capacity; a set-associative cache also takes conflict misses near
    /// capacity. With random set mapping, the `s` unique intervening lines
    /// of an access with stack distance `s` fall into the access's own set
    /// as `Binomial(s, 1/sets) ≈ Poisson(s/sets)`; the access hits iff
    /// fewer than `assoc` of them landed there:
    ///
    /// ```text
    /// P(hit | s) = Σ_{k<assoc} e^{−s/sets} (s/sets)^k / k!
    /// ```
    ///
    /// (Hill & Smith's associativity model applied to StatStack's expected
    /// stack distances.) Cold and invalidated accesses miss regardless.
    pub fn miss_rate_assoc(&self, sets: u64, assoc: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if sets == 0 || assoc == 0 {
            return 1.0;
        }
        let mut miss_mass = 0.0f64;
        for &(d, m) in &self.buckets {
            let s = self.stack_distance(d);
            let lambda = s / sets as f64;
            // P(Poisson(lambda) >= assoc)
            let mut p_hit = 0.0f64;
            let mut term = (-lambda).exp();
            for k in 0..assoc {
                p_hit += term;
                term *= lambda / (k + 1) as f64;
            }
            miss_mass += m as f64 * (1.0 - p_hit.min(1.0));
        }
        (miss_mass + self.always_miss as f64) / self.total as f64
    }

    /// Predicted miss rate for a cache described by `geom`
    /// (set-associative; see [`StackDistanceModel::miss_rate_assoc`]).
    pub fn miss_rate_geom(&self, geom: &rppm_trace::CacheGeometry) -> f64 {
        self.miss_rate_assoc(geom.sets(), geom.assoc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn loop_hist(lines: u64, iters: u64) -> ReuseHistogram {
        // A loop over `lines` distinct lines: after the first pass, every
        // access has reuse distance lines-1.
        let mut h = ReuseHistogram::new();
        h.record_cold(lines);
        for _ in 0..(lines * iters) {
            h.record(lines - 1);
        }
        h
    }

    #[test]
    fn stack_distance_of_loop_equals_unique_lines() {
        let h = loop_hist(100, 100);
        let m = StackDistanceModel::new(&h);
        // Intervening 99 accesses touch 99 unique lines (all reuses escape
        // the window only when further than the window). SD(99) should be
        // close to 99 * fraction... exact reasoning: P(D > j) = 1 for j < 99
        // (ignoring cold mass), so SD(99) ≈ 99.
        let sd = m.stack_distance(99);
        assert!((sd - 99.0).abs() < 2.0, "sd {sd}");
    }

    #[test]
    fn loop_fits_or_thrashes() {
        let h = loop_hist(100, 1000);
        let m = StackDistanceModel::new(&h);
        assert!(m.miss_rate(128) < 0.01, "fit: {}", m.miss_rate(128));
        assert!(m.miss_rate(64) > 0.95, "thrash: {}", m.miss_rate(64));
    }

    #[test]
    fn cold_and_invalidated_always_miss() {
        let mut h = ReuseHistogram::new();
        h.record_cold(50);
        h.record_invalidated(50);
        let m = StackDistanceModel::new(&h);
        assert!((m.miss_rate(1 << 30) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_model_is_benign() {
        let m = StackDistanceModel::new(&ReuseHistogram::new());
        assert_eq!(m.miss_rate(1024), 0.0);
        assert_eq!(m.stack_distance(100), 0.0);
        assert_eq!(m.total_accesses(), 0);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let h = loop_hist(10, 10);
        let m = StackDistanceModel::new(&h);
        assert_eq!(m.miss_rate(0), 1.0);
    }

    #[test]
    fn tiny_distances_hit_tiny_caches() {
        let mut h = ReuseHistogram::new();
        for _ in 0..1000 {
            h.record(0); // immediate reuse
        }
        let m = StackDistanceModel::new(&h);
        assert!(m.miss_rate(2) < 0.01);
    }

    #[test]
    fn misses_scale_with_total() {
        let h = loop_hist(100, 10);
        let m = StackDistanceModel::new(&h);
        let misses = m.misses(64);
        assert!(misses > 900.0, "misses {misses}");
    }

    #[test]
    fn mixed_working_sets_have_intermediate_miss_rate() {
        // Half the accesses reuse within 8 lines, half within 10_000 lines.
        let mut h = ReuseHistogram::new();
        for _ in 0..10_000 {
            h.record(7);
            h.record(9_999);
        }
        let m = StackDistanceModel::new(&h);
        let mr = m.miss_rate(1024);
        assert!(mr > 0.40 && mr < 0.60, "miss rate {mr}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn stack_distance_is_monotone_and_bounded(
            ds in proptest::collection::vec(0u64..100_000, 1..200),
            probes in proptest::collection::vec(0u64..200_000, 2..20),
        ) {
            let mut h = ReuseHistogram::new();
            for d in &ds { h.record(*d); }
            let m = StackDistanceModel::new(&h);
            let mut sorted = probes.clone();
            sorted.sort_unstable();
            let mut prev = -1.0f64;
            for r in sorted {
                let sd = m.stack_distance(r);
                prop_assert!(sd <= r as f64 + 1e-9);
                prop_assert!(sd + 1e-9 >= prev, "SD not monotone");
                prev = sd;
            }
        }

        #[test]
        fn miss_rate_decreases_with_capacity(
            ds in proptest::collection::vec(0u64..50_000, 1..200),
            cold in 0u64..50,
        ) {
            let mut h = ReuseHistogram::new();
            for d in &ds { h.record(*d); }
            h.record_cold(cold);
            let m = StackDistanceModel::new(&h);
            let caps = [1u64, 4, 16, 64, 256, 1024, 4096, 65_536, 1 << 20];
            let mut prev = 1.0f64 + 1e-9;
            for c in caps {
                let mr = m.miss_rate(c);
                prop_assert!((0.0..=1.0).contains(&mr));
                prop_assert!(mr <= prev + 1e-9, "miss rate increased at {c}");
                prev = mr;
            }
        }

        #[test]
        fn miss_rate_lower_bounded_by_always_miss(
            ds in proptest::collection::vec(0u64..10_000, 0..100),
            cold in 1u64..100,
            inval in 0u64..100,
        ) {
            let mut h = ReuseHistogram::new();
            for d in &ds { h.record(*d); }
            h.record_cold(cold);
            h.record_invalidated(inval);
            let m = StackDistanceModel::new(&h);
            let floor = h.always_miss_fraction();
            prop_assert!(m.miss_rate(1 << 24) >= floor - 1e-9);
        }
    }
}

//! Log-bucketed reuse-distance histograms.

use serde::{Deserialize, Serialize};

/// Distances below this are stored exactly (one bucket per distance).
const EXACT: u64 = 64;
/// Sub-buckets per power-of-two octave above the exact range.
const SUB: u32 = 4;
/// Number of octaves covered (2^6 .. 2^(6+OCTAVES)).
const OCTAVES: u32 = 40;
/// Total number of finite buckets.
const BUCKETS: usize = EXACT as usize + (OCTAVES * SUB) as usize;

/// Maps a distance to its bucket index.
fn bucket_of(d: u64) -> usize {
    if d < EXACT {
        d as usize
    } else {
        let o = 63 - d.leading_zeros(); // floor(log2 d), >= 6
        let sub = ((d >> (o - 2)) & 0x3) as u32;
        let idx = EXACT as usize + ((o - 6) * SUB + sub) as usize;
        idx.min(BUCKETS - 1)
    }
}

/// Representative (lower-edge) distance of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < EXACT as usize {
        i as u64
    } else {
        let k = (i - EXACT as usize) as u32;
        let o = k / SUB + 6;
        let sub = (k % SUB) as u64;
        (1u64 << o) + sub * (1u64 << (o - 2))
    }
}

/// Geometric-ish midpoint used as the representative distance of bucket `i`.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lo(i);
    if i < EXACT as usize {
        lo
    } else {
        let hi = if i + 1 < BUCKETS {
            bucket_lo(i + 1)
        } else {
            lo * 2
        };
        lo + (hi - lo) / 2
    }
}

/// Histogram of reuse distances with dedicated cold and infinite buckets.
///
/// Reuse distance is the number of accesses *between* two accesses to the
/// same cache line (0 = immediately repeated). `cold` counts first-touch
/// accesses; `invalidated` counts reuses broken by a remote write (cache
/// coherence), which behave as compulsory misses in a private cache of any
/// size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    counts: Vec<u64>,
    /// First-touch accesses (miss at every cache size).
    pub cold: u64,
    /// Reuses broken by a remote write (coherence miss at every size).
    pub invalidated: u64,
    total_finite: u64,
}

impl Default for ReuseHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ReuseHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ReuseHistogram {
            counts: vec![0; BUCKETS],
            cold: 0,
            invalidated: 0,
            total_finite: 0,
        }
    }

    /// Records a finite reuse distance.
    pub fn record(&mut self, distance: u64) {
        self.counts[bucket_of(distance)] += 1;
        self.total_finite += 1;
    }

    /// Records `n` cold (first-touch) accesses.
    pub fn record_cold(&mut self, n: u64) {
        self.cold += n;
    }

    /// Records `n` coherence-invalidated reuses.
    pub fn record_invalidated(&mut self, n: u64) {
        self.invalidated += n;
    }

    /// Approximate heap + inline size of this histogram in bytes (cache
    /// memory-budget accounting).
    pub fn approx_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u64>()) as u64
    }

    /// Total recorded accesses (finite + cold + invalidated).
    pub fn total(&self) -> u64 {
        self.total_finite + self.cold + self.invalidated
    }

    /// Total accesses with a finite reuse distance.
    pub fn total_finite(&self) -> u64 {
        self.total_finite
    }

    /// Fraction of accesses that are cold or invalidated (always-miss).
    pub fn always_miss_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.cold + self.invalidated) as f64 / t as f64
        }
    }

    /// Iterates over the non-empty finite buckets as
    /// `(representative distance, count)`, in increasing distance order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_mid(i), c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.cold += other.cold;
        self.invalidated += other.invalidated;
        self.total_finite += other.total_finite;
    }

    /// Mean finite reuse distance (bucket-representative approximation);
    /// `None` when no finite reuses were recorded.
    pub fn mean_finite(&self) -> Option<f64> {
        if self.total_finite == 0 {
            return None;
        }
        let sum: f64 = self.iter().map(|(d, c)| d as f64 * c as f64).sum();
        Some(sum / self.total_finite as f64)
    }

    /// Returns whether no accesses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_buckets_are_exact() {
        for d in 0..EXACT {
            assert_eq!(bucket_lo(bucket_of(d)), d);
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0;
        for d in [0u64, 1, 5, 63, 64, 65, 100, 1000, 1 << 20, 1 << 33] {
            let b = bucket_of(d);
            assert!(b >= prev, "bucket_of({d}) = {b} < {prev}");
            prev = b;
        }
    }

    #[test]
    fn bucket_lo_below_or_equal_distance() {
        for d in [0u64, 1, 63, 64, 100, 999, 12345, 1 << 30] {
            let b = bucket_of(d);
            assert!(bucket_lo(b) <= d);
            if b + 1 < BUCKETS {
                assert!(bucket_lo(b + 1) > d, "d={d} b={b}");
            }
        }
    }

    #[test]
    fn record_and_total() {
        let mut h = ReuseHistogram::new();
        h.record(5);
        h.record(5);
        h.record(1000);
        h.record_cold(3);
        h.record_invalidated(2);
        assert_eq!(h.total(), 8);
        assert_eq!(h.total_finite(), 3);
        assert!((h.always_miss_fraction() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn iter_sorted_and_counts_match() {
        let mut h = ReuseHistogram::new();
        for d in [3u64, 3, 7, 100, 100, 100, 50_000] {
            h.record(d);
        }
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = ReuseHistogram::new();
        a.record(1);
        a.record_cold(1);
        let mut b = ReuseHistogram::new();
        b.record(1);
        b.record(1 << 20);
        b.record_invalidated(4);
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.total_finite(), 3);
        assert_eq!(a.cold, 1);
        assert_eq!(a.invalidated, 4);
    }

    #[test]
    fn mean_finite_handles_empty() {
        let h = ReuseHistogram::new();
        assert!(h.mean_finite().is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut h = ReuseHistogram::new();
        h.record(42);
        h.record_cold(1);
        let json = serde_json::to_string(&h).unwrap();
        let back: ReuseHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    proptest! {
        #[test]
        fn bucket_of_never_panics_and_is_in_range(d in any::<u64>()) {
            let b = bucket_of(d);
            prop_assert!(b < BUCKETS);
        }

        #[test]
        fn bucket_mid_within_bucket(d in 0u64..(1 << 40)) {
            let b = bucket_of(d);
            let mid = bucket_mid(b);
            prop_assert!(bucket_of(mid) == b, "mid {mid} of bucket {b} (d={d}) lands in {}", bucket_of(mid));
        }

        #[test]
        fn monotone_distance_monotone_bucket(a in 0u64..(1<<40), b in 0u64..(1<<40)) {
            if a <= b {
                prop_assert!(bucket_of(a) <= bucket_of(b));
            }
        }
    }
}

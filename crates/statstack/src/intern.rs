//! Address interning: dense `u32` ids for 64-bit line addresses.
//!
//! Reuse-distance collection touches its line-state table on *every* memory
//! access, so the seed's `HashMap<u64, LineState>` (SipHash, per-line boxed
//! slices) dominated profiling time. [`AddrInterner`] replaces it with an
//! open-addressing table under an FxHash-style multiplicative hash: one
//! probe sequence over a flat slot array, no per-entry allocation, and a
//! dense id that indexes struct-of-arrays state kept by the caller.

/// Golden-ratio multiplier used by FxHash-style mixers.
const FX_K: u64 = 0x517C_C1B7_2722_0A95;

/// Mixes a 64-bit key into a table hash (FxHash-style: xor-fold the high
/// half down, then one odd-constant multiply). Line addresses are
/// low-entropy in their low bits, so the fold keeps the high bits relevant.
#[inline(always)]
fn fx_hash(key: u64) -> u64 {
    (key ^ (key >> 32)).wrapping_mul(FX_K)
}

/// A [`std::hash::Hasher`] over the same multiplicative mix, usable as a
/// drop-in `HashMap` hasher on hot paths (and, unlike the std default,
/// unseeded — map iteration order is stable across processes).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(FX_K);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.hash = fx_hash(self.hash ^ n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = fx_hash(self.hash ^ n);
    }

    fn write_usize(&mut self, n: usize) {
        self.hash = fx_hash(self.hash ^ n as u64);
    }
}

/// A `HashMap` keyed by the FxHash-style hasher (fast, unseeded).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// Sentinel id marking an empty slot.
const EMPTY: u32 = u32::MAX;

/// An open-addressing interner mapping 64-bit addresses to dense `u32` ids
/// in first-seen order.
///
/// ```
/// use rppm_statstack::AddrInterner;
///
/// let mut it = AddrInterner::new();
/// assert_eq!(it.intern(0xDEAD_BEEF), (0, true));
/// assert_eq!(it.intern(0xFEED_FACE), (1, true));
/// assert_eq!(it.intern(0xDEAD_BEEF), (0, false));
/// assert_eq!(it.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AddrInterner {
    /// Interned keys, slot-parallel with `ids`.
    keys: Vec<u64>,
    /// Dense id per slot; `EMPTY` marks a free slot.
    ids: Vec<u32>,
    mask: usize,
    len: u32,
}

impl Default for AddrInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrInterner {
    /// Initial slot count (power of two).
    const INITIAL: usize = 1024;

    /// Creates an empty interner.
    pub fn new() -> Self {
        AddrInterner {
            keys: vec![0; Self::INITIAL],
            ids: vec![EMPTY; Self::INITIAL],
            mask: Self::INITIAL - 1,
            len: 0,
        }
    }

    /// Interns `addr`, returning `(id, first_time)`. Ids are dense and
    /// assigned in first-seen order, so they directly index caller-side
    /// state arrays.
    #[inline]
    pub fn intern(&mut self, addr: u64) -> (u32, bool) {
        let mut slot = (fx_hash(addr) as usize) & self.mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                let new_id = self.len;
                self.keys[slot] = addr;
                self.ids[slot] = new_id;
                self.len += 1;
                // Grow at 3/4 load to keep probe chains short.
                if (self.len as usize) * 4 > self.keys.len() * 3 {
                    self.grow();
                }
                return (new_id, true);
            }
            if self.keys[slot] == addr {
                return (id, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Number of distinct addresses interned.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns whether no addresses have been interned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_ids = std::mem::replace(&mut self.ids, vec![EMPTY; new_cap]);
        self.mask = new_cap - 1;
        for (key, id) in old_keys.into_iter().zip(old_ids) {
            if id == EMPTY {
                continue;
            }
            let mut slot = (fx_hash(key) as usize) & self.mask;
            while self.ids[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.keys[slot] = key;
            self.ids[slot] = id;
        }
    }
}

/// A per-stream reuse-distance tracker built on [`AddrInterner`]: one
/// access counter and a flat last-access table.
///
/// Returns the reuse distance of each access (`None` for a first touch), so
/// callers can feed whatever histogram they keep — the profiler uses one
/// per thread for instruction-line (I-cache) reuse.
#[derive(Debug, Clone, Default)]
pub struct ReuseTracker {
    interner: AddrInterner,
    last: Vec<u64>,
    count: u64,
}

impl ReuseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `addr`: `Some(distance)` for a reuse (number of
    /// accesses since the previous access to `addr`), `None` for a cold
    /// first touch.
    #[inline]
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let c = self.count;
        self.count += 1;
        let (id, first) = self.interner.intern(addr);
        if first {
            self.last.push(c);
            return None;
        }
        let idx = id as usize;
        let d = c - self.last[idx] - 1;
        self.last[idx] = c;
        Some(d)
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.count
    }

    /// Distinct addresses seen so far.
    pub fn unique(&self) -> usize {
        self.interner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = AddrInterner::new();
        assert_eq!(it.intern(10), (0, true));
        assert_eq!(it.intern(20), (1, true));
        assert_eq!(it.intern(10), (0, false));
        assert_eq!(it.intern(30), (2, true));
        assert_eq!(it.len(), 3);
        assert!(!it.is_empty());
    }

    #[test]
    fn survives_growth() {
        let mut it = AddrInterner::new();
        // Far past the initial capacity, with adversarially regular keys.
        for k in 0..100_000u64 {
            let (id, first) = it.intern(k * 64);
            assert_eq!(id as u64, k);
            assert!(first);
        }
        for k in 0..100_000u64 {
            assert_eq!(it.intern(k * 64), (k as u32, false));
        }
        assert_eq!(it.len(), 100_000);
    }

    #[test]
    fn colliding_high_bits_still_distinct() {
        let mut it = AddrInterner::new();
        let a = it.intern(0x0000_0001_0000_0000).0;
        let b = it.intern(0x0000_0002_0000_0000).0;
        let c = it.intern(0x0000_0000_0000_0000).0;
        assert_eq!(
            3,
            [a, b, c]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }

    #[test]
    fn tracker_matches_manual_distances() {
        let mut t = ReuseTracker::new();
        assert_eq!(t.access(7), None);
        assert_eq!(t.access(7), Some(0));
        assert_eq!(t.access(9), None);
        assert_eq!(t.access(7), Some(1));
        assert_eq!(t.accesses(), 4);
        assert_eq!(t.unique(), 2);
    }
}

//! Reuse-distance collectors.
//!
//! [`SingleThreadCollector`] reproduces the original StatStack measurement:
//! a per-location counter yields the reuse distance of every access in one
//! thread's stream.
//!
//! [`MultiThreadCollector`] implements the multi-threaded extension RPPM
//! relies on (Section III-A, "Memory Behavior"): every thread's accesses are
//! measured against *two* counters — the thread's private access counter
//! (private L1/L2 locality) and a single global counter shared by all
//! threads (shared LLC locality, capturing positive interference from data
//! sharing and negative interference from capacity contention). A reuse
//! broken by a remote write is recorded as an infinite private distance
//! (write invalidation ⇒ coherence miss).
//!
//! Both collectors sit on the profiler's per-access hot path, so line state
//! lives in flat struct-of-arrays tables indexed by interned dense line ids
//! ([`AddrInterner`]) rather than a per-line-allocating hash map. The
//! per-thread columns use a power-of-two stride (so the common 1–8-thread
//! case indexes with a shift) and the per-line "which threads touched this
//! line" set is a single bitmask word for up to 64 threads, with a
//! multi-word fallback beyond.

use crate::hist::ReuseHistogram;
use crate::intern::{AddrInterner, ReuseTracker};

/// Locality statistics of one thread over one inter-synchronization epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochLocality {
    /// Private (per-thread counter) reuse-distance histogram. Predicts the
    /// private L1/L2 miss rates.
    pub private: ReuseHistogram,
    /// Global (interleaved counter) reuse-distance histogram. Predicts the
    /// shared LLC miss rate.
    pub global: ReuseHistogram,
    /// Data accesses observed in the epoch.
    pub accesses: u64,
    /// Store accesses observed in the epoch.
    pub stores: u64,
}

/// Single-threaded reuse-distance collector (classic StatStack).
#[derive(Debug, Default)]
pub struct SingleThreadCollector {
    tracker: ReuseTracker,
    hist: ReuseHistogram,
}

impl SingleThreadCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line`.
    #[inline]
    pub fn access(&mut self, line: u64) {
        match self.tracker.access(line) {
            Some(d) => self.hist.record(d),
            None => self.hist.record_cold(1),
        }
    }

    /// Finishes collection, returning the histogram.
    pub fn into_histogram(self) -> ReuseHistogram {
        self.hist
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.tracker.accesses()
    }
}

/// Sentinel for "no thread has written this line".
const NO_WRITER: u32 = u32::MAX;

/// Multi-threaded reuse-distance collector with coherence detection.
///
/// The caller feeds an interleaved access stream via
/// [`MultiThreadCollector::access`]; per-thread epoch boundaries are marked
/// with [`MultiThreadCollector::end_epoch`], which returns the
/// [`EpochLocality`] accumulated for that thread since its previous
/// boundary. Line state persists across epochs (reuse distances legitimately
/// span synchronization events).
#[derive(Debug)]
pub struct MultiThreadCollector {
    n_threads: usize,
    /// log2 of the per-line stride of the per-thread columns
    /// (`n_threads.next_power_of_two()`), so `line_id << stride_shift + t`
    /// indexes without a multiply.
    stride_shift: u32,
    /// Bitmask words per line in `seen` (1 for up to 64 threads).
    seen_words: usize,
    global_count: u64,
    priv_count: Vec<u64>,
    interner: AddrInterner,
    /// Per (line, thread): private counter value at that thread's last
    /// access. Line-major, stride `1 << stride_shift`.
    priv_last: Vec<u64>,
    /// Per (line, thread): global counter value at that thread's last
    /// access. Same layout as `priv_last`.
    glob_last: Vec<u64>,
    /// Per line: bitmask of threads that have touched the line.
    seen: Vec<u64>,
    /// Per line: global counter value of the most recent access by anyone
    /// (the running max of `glob_last` across threads).
    last_any_glob: Vec<u64>,
    /// Per line: global counter value of the most recent write.
    last_write_glob: Vec<u64>,
    /// Per line: thread of the most recent write, or [`NO_WRITER`].
    last_writer: Vec<u32>,
    current: Vec<EpochLocality>,
}

impl MultiThreadCollector {
    /// Creates a collector for `n_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0);
        MultiThreadCollector {
            n_threads,
            stride_shift: n_threads.next_power_of_two().trailing_zeros(),
            seen_words: n_threads.div_ceil(64),
            global_count: 0,
            priv_count: vec![0; n_threads],
            interner: AddrInterner::new(),
            priv_last: Vec::new(),
            glob_last: Vec::new(),
            seen: Vec::new(),
            last_any_glob: Vec::new(),
            last_write_glob: Vec::new(),
            last_writer: Vec::new(),
            current: vec![EpochLocality::default(); n_threads],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// Appends zeroed state rows for a newly interned line.
    #[cold]
    fn push_line(&mut self) {
        let stride = 1usize << self.stride_shift;
        self.priv_last.resize(self.priv_last.len() + stride, 0);
        self.glob_last.resize(self.glob_last.len() + stride, 0);
        self.seen.resize(self.seen.len() + self.seen_words, 0);
        self.last_any_glob.push(0);
        self.last_write_glob.push(0);
        self.last_writer.push(NO_WRITER);
    }

    /// Records an access by `thread` to `line`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn access(&mut self, thread: usize, line: u64, is_write: bool) {
        assert!(thread < self.n_threads);
        let g = self.global_count;
        let p = self.priv_count[thread];

        let (id, first) = self.interner.intern(line);
        if first {
            self.push_line();
        }
        let idx = id as usize;
        let slot = (idx << self.stride_shift) + thread;

        // Test-and-set this thread's bit in the line's seen mask; the
        // single-word branch is the common (≤ 64 threads) fast path.
        let (was_seen, any_seen);
        if self.seen_words == 1 {
            let w = &mut self.seen[idx];
            any_seen = *w != 0;
            was_seen = (*w >> thread) & 1 == 1;
            *w |= 1 << thread;
        } else {
            let words = &mut self.seen[idx * self.seen_words..(idx + 1) * self.seen_words];
            any_seen = words.iter().any(|&w| w != 0);
            was_seen = (words[thread / 64] >> (thread % 64)) & 1 == 1;
            words[thread / 64] |= 1 << (thread % 64);
        }

        let epoch = &mut self.current[thread];
        epoch.accesses += 1;
        if is_write {
            epoch.stores += 1;
        }

        if was_seen {
            let glob_prev = self.glob_last[slot];
            // Write invalidation: a remote write after our last access breaks
            // the private reuse (the line was invalidated in our private
            // hierarchy), but the shared LLC still holds it.
            let writer = self.last_writer[idx];
            let invalidated = writer != NO_WRITER
                && writer != thread as u32
                && self.last_write_glob[idx] > glob_prev;
            if invalidated {
                epoch.private.record_invalidated(1);
            } else {
                epoch.private.record(p - self.priv_last[slot] - 1);
            }
            epoch.global.record(g - glob_prev - 1);
        } else {
            // First touch by this thread. For the *shared* cache the line may
            // have been brought in by another thread (positive interference):
            // measure against the most recent access by anyone.
            epoch.private.record_cold(1);
            if any_seen {
                epoch.global.record(g - self.last_any_glob[idx] - 1);
            } else {
                epoch.global.record_cold(1);
            }
        }

        self.priv_last[slot] = p;
        self.glob_last[slot] = g;
        self.last_any_glob[idx] = g;
        if is_write {
            self.last_write_glob[idx] = g;
            self.last_writer[idx] = thread as u32;
        }
        self.priv_count[thread] += 1;
        self.global_count += 1;
    }

    /// Ends the current epoch of `thread`, returning its locality statistics
    /// and starting a fresh accumulation.
    pub fn end_epoch(&mut self, thread: usize) -> EpochLocality {
        std::mem::take(&mut self.current[thread])
    }

    /// Total accesses recorded across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.global_count
    }

    /// Number of distinct lines touched so far (by anyone).
    pub fn unique_lines(&self) -> u64 {
        self.interner.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_loop_distances() {
        let mut c = SingleThreadCollector::new();
        for _ in 0..3 {
            for line in 0..4u64 {
                c.access(line);
            }
        }
        let h = c.into_histogram();
        assert_eq!(h.cold, 4);
        assert_eq!(h.total_finite(), 8);
        // All finite distances are 3.
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(3, 8)]);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut c = SingleThreadCollector::new();
        c.access(7);
        c.access(7);
        let h = c.into_histogram();
        assert_eq!(h.iter().next(), Some((0, 1)));
    }

    #[test]
    fn multithread_private_matches_single_when_disjoint() {
        // Two threads touching disjoint lines: private distances unaffected
        // by interleaving.
        let mut m = MultiThreadCollector::new(2);
        for _ in 0..3 {
            for line in 0..4u64 {
                m.access(0, line, false);
                m.access(1, 100 + line, false);
            }
        }
        let e0 = m.end_epoch(0);
        assert_eq!(e0.private.cold, 4);
        let buckets: Vec<(u64, u64)> = e0.private.iter().collect();
        assert_eq!(buckets, vec![(3, 8)]);
        // Global distances are doubled (+1) by interleaving: 2*3+1 = 7.
        let gbuckets: Vec<(u64, u64)> = e0.global.iter().collect();
        assert_eq!(gbuckets, vec![(7, 8)]);
    }

    #[test]
    fn paper_figure2_example() {
        // Thread 1: D E F F D — second D: private rd 3, global rd 7 after
        // interleaving with thread 2's A B B D A... Reproduce the figure's
        // interleaving: D A B E F B F D D A (t1 accesses D E F F D,
        // t2 accesses A B B D A).
        let mut m = MultiThreadCollector::new(2);
        // interleave exactly as drawn
        m.access(0, 'D' as u64, false); // t1 D
        m.access(1, 'A' as u64, false); // t2 A
        m.access(1, 'B' as u64, false); // t2 B
        m.access(0, 'E' as u64, false); // t1 E
        m.access(0, 'F' as u64, false); // t1 F
        m.access(1, 'B' as u64, false); // t2 B
        m.access(0, 'F' as u64, false); // t1 F
        m.access(1, 'D' as u64, false); // t2 D  (shares D with t1!)
        m.access(0, 'D' as u64, false); // t1 D  (second access)
        m.access(1, 'A' as u64, false); // t2 A

        let e0 = m.end_epoch(0);
        let e1 = m.end_epoch(1);
        // t1's second D: private distance = 3 (E F F in between).
        let d_priv: Vec<(u64, u64)> = e0.private.iter().collect();
        assert!(d_priv.contains(&(3, 1)), "{d_priv:?}");
        // t1's second F: private distance 0; global distance 1 (B between).
        assert!(e0.global.iter().any(|(d, _)| d == 1));
        // t2's D was brought in new for t2 but t1 accessed it at global 0:
        // positive interference — global distance finite (6), not cold.
        assert_eq!(e1.global.cold, 2, "only A and B are globally cold");
        assert!(e1.global.iter().any(|(d, _)| d == 6));
    }

    #[test]
    fn write_invalidation_detected() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 5, false); // t0 reads line 5
        m.access(1, 5, true); // t1 writes line 5
        m.access(0, 5, false); // t0 re-reads: invalidated
        let e0 = m.end_epoch(0);
        assert_eq!(e0.private.invalidated, 1);
        assert_eq!(e0.private.cold, 1); // the first access
                                        // Global reuse still finite (LLC keeps the line).
        assert_eq!(e0.global.total_finite(), 1);
    }

    #[test]
    fn own_writes_do_not_invalidate() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 5, true);
        m.access(0, 5, true);
        m.access(0, 5, false);
        let e0 = m.end_epoch(0);
        assert_eq!(e0.private.invalidated, 0);
        assert_eq!(e0.private.total_finite(), 2);
    }

    #[test]
    fn remote_write_before_first_access_is_positive_interference() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 9, true); // t0 writes (producer)
        m.access(1, 9, false); // t1 first touch: globally warm
        let e1 = m.end_epoch(1);
        assert_eq!(e1.private.cold, 1);
        assert_eq!(e1.global.cold, 0);
        assert_eq!(e1.global.total_finite(), 1);
    }

    #[test]
    fn epochs_reset_accumulation_but_not_line_state() {
        let mut m = MultiThreadCollector::new(1);
        m.access(0, 1, false);
        let e1 = m.end_epoch(0);
        assert_eq!(e1.accesses, 1);
        m.access(0, 1, false); // reuse across epoch boundary
        let e2 = m.end_epoch(0);
        assert_eq!(e2.accesses, 1);
        assert_eq!(e2.private.cold, 0, "line state persists across epochs");
        assert_eq!(e2.private.total_finite(), 1);
    }

    #[test]
    fn store_counting() {
        let mut m = MultiThreadCollector::new(1);
        m.access(0, 1, true);
        m.access(0, 2, false);
        m.access(0, 3, true);
        let e = m.end_epoch(0);
        assert_eq!(e.stores, 2);
        assert_eq!(e.accesses, 3);
    }

    #[test]
    fn unique_lines_counts_distinct() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 1, false);
        m.access(1, 1, false);
        m.access(0, 2, false);
        assert_eq!(m.unique_lines(), 2);
        assert_eq!(m.total_accesses(), 3);
    }

    #[test]
    fn wide_collector_uses_multiword_seen_masks() {
        // 100 threads forces the multi-word seen-mask path; the semantics
        // must match the narrow case.
        let n = 100;
        let mut m = MultiThreadCollector::new(n);
        for t in 0..n {
            m.access(t, 42, false); // everyone touches the same line
        }
        m.access(99, 42, false); // reuse by the last thread
        let e99 = m.end_epoch(99);
        assert_eq!(e99.private.cold, 1);
        assert_eq!(e99.private.total_finite(), 1);
        // First-touch accesses by threads 1.. see positive interference.
        let e1 = m.end_epoch(1);
        assert_eq!(e1.global.cold, 0);
        assert_eq!(e1.global.total_finite(), 1);
        let e0 = m.end_epoch(0);
        assert_eq!(e0.global.cold, 1, "thread 0 touched the line first");
    }

    #[test]
    fn state_survives_many_lines() {
        // Push far past the interner's initial capacity and check a reuse
        // distance that spans the growth.
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 0xABCD, false);
        for k in 0..50_000u64 {
            m.access(1, k, false);
        }
        m.access(0, 0xABCD, false);
        let e0 = m.end_epoch(0);
        // Private: 0 intervening accesses by thread 0 itself.
        assert_eq!(e0.private.iter().next(), Some((0, 1)));
        assert_eq!(m.unique_lines(), 50_000, "0xABCD is within 0..50_000");
    }
}

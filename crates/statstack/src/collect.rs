//! Reuse-distance collectors.
//!
//! [`SingleThreadCollector`] reproduces the original StatStack measurement:
//! a per-location counter yields the reuse distance of every access in one
//! thread's stream.
//!
//! [`MultiThreadCollector`] implements the multi-threaded extension RPPM
//! relies on (Section III-A, "Memory Behavior"): every thread's accesses are
//! measured against *two* counters — the thread's private access counter
//! (private L1/L2 locality) and a single global counter shared by all
//! threads (shared LLC locality, capturing positive interference from data
//! sharing and negative interference from capacity contention). A reuse
//! broken by a remote write is recorded as an infinite private distance
//! (write invalidation ⇒ coherence miss).

use crate::hist::ReuseHistogram;
use std::collections::HashMap;

/// Locality statistics of one thread over one inter-synchronization epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochLocality {
    /// Private (per-thread counter) reuse-distance histogram. Predicts the
    /// private L1/L2 miss rates.
    pub private: ReuseHistogram,
    /// Global (interleaved counter) reuse-distance histogram. Predicts the
    /// shared LLC miss rate.
    pub global: ReuseHistogram,
    /// Data accesses observed in the epoch.
    pub accesses: u64,
    /// Store accesses observed in the epoch.
    pub stores: u64,
}

/// Single-threaded reuse-distance collector (classic StatStack).
#[derive(Debug, Default)]
pub struct SingleThreadCollector {
    count: u64,
    last: HashMap<u64, u64>,
    hist: ReuseHistogram,
}

impl SingleThreadCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line`.
    pub fn access(&mut self, line: u64) {
        match self.last.insert(line, self.count) {
            Some(prev) => self.hist.record(self.count - prev - 1),
            None => self.hist.record_cold(1),
        }
        self.count += 1;
    }

    /// Finishes collection, returning the histogram.
    pub fn into_histogram(self) -> ReuseHistogram {
        self.hist
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.count
    }
}

#[derive(Debug, Clone)]
struct LineState {
    /// Per-thread private counter value at that thread's last access.
    priv_last: Box<[u64]>,
    /// Global counter value at each thread's last access.
    glob_last: Box<[u64]>,
    /// Whether each thread has touched the line.
    seen: Box<[bool]>,
    /// Global counter value of the most recent write.
    last_write_glob: u64,
    /// Thread that performed the most recent write.
    last_writer: u32,
    /// Whether the line has ever been written.
    written: bool,
}

impl LineState {
    fn new(n: usize) -> Self {
        LineState {
            priv_last: vec![0; n].into_boxed_slice(),
            glob_last: vec![0; n].into_boxed_slice(),
            seen: vec![false; n].into_boxed_slice(),
            last_write_glob: 0,
            last_writer: u32::MAX,
            written: false,
        }
    }
}

/// Multi-threaded reuse-distance collector with coherence detection.
///
/// The caller feeds an interleaved access stream via
/// [`MultiThreadCollector::access`]; per-thread epoch boundaries are marked
/// with [`MultiThreadCollector::end_epoch`], which returns the
/// [`EpochLocality`] accumulated for that thread since its previous
/// boundary. Line state persists across epochs (reuse distances legitimately
/// span synchronization events).
#[derive(Debug)]
pub struct MultiThreadCollector {
    n_threads: usize,
    global_count: u64,
    priv_count: Vec<u64>,
    lines: HashMap<u64, LineState>,
    current: Vec<EpochLocality>,
}

impl MultiThreadCollector {
    /// Creates a collector for `n_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0);
        MultiThreadCollector {
            n_threads,
            global_count: 0,
            priv_count: vec![0; n_threads],
            lines: HashMap::new(),
            current: vec![EpochLocality::default(); n_threads],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// Records an access by `thread` to `line`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn access(&mut self, thread: usize, line: u64, is_write: bool) {
        assert!(thread < self.n_threads);
        let n = self.n_threads;
        let g = self.global_count;
        let p = self.priv_count[thread];
        let epoch = &mut self.current[thread];
        epoch.accesses += 1;
        if is_write {
            epoch.stores += 1;
        }

        let state = self.lines.entry(line).or_insert_with(|| LineState::new(n));

        if state.seen[thread] {
            let glob_dist = g - state.glob_last[thread] - 1;
            // Write invalidation: a remote write after our last access breaks
            // the private reuse (the line was invalidated in our private
            // hierarchy), but the shared LLC still holds it.
            let invalidated = state.written
                && state.last_writer != thread as u32
                && state.last_write_glob > state.glob_last[thread];
            if invalidated {
                epoch.private.record_invalidated(1);
            } else {
                let priv_dist = p - state.priv_last[thread] - 1;
                epoch.private.record(priv_dist);
            }
            epoch.global.record(glob_dist);
        } else {
            // First touch by this thread. For the *shared* cache the line may
            // have been brought in by another thread (positive interference):
            // measure against the most recent access by anyone.
            let mut last_any: Option<u64> = None;
            for t in 0..n {
                if state.seen[t] {
                    let v = state.glob_last[t];
                    last_any = Some(last_any.map_or(v, |x: u64| x.max(v)));
                }
            }
            epoch.private.record_cold(1);
            match last_any {
                Some(v) => epoch.global.record(g - v - 1),
                None => epoch.global.record_cold(1),
            }
            state.seen[thread] = true;
        }

        state.priv_last[thread] = p;
        state.glob_last[thread] = g;
        if is_write {
            state.last_write_glob = g;
            state.last_writer = thread as u32;
            state.written = true;
        }
        self.priv_count[thread] += 1;
        self.global_count += 1;
    }

    /// Ends the current epoch of `thread`, returning its locality statistics
    /// and starting a fresh accumulation.
    pub fn end_epoch(&mut self, thread: usize) -> EpochLocality {
        std::mem::take(&mut self.current[thread])
    }

    /// Total accesses recorded across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.global_count
    }

    /// Number of distinct lines touched so far (by anyone).
    pub fn unique_lines(&self) -> u64 {
        self.lines.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_loop_distances() {
        let mut c = SingleThreadCollector::new();
        for _ in 0..3 {
            for line in 0..4u64 {
                c.access(line);
            }
        }
        let h = c.into_histogram();
        assert_eq!(h.cold, 4);
        assert_eq!(h.total_finite(), 8);
        // All finite distances are 3.
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(3, 8)]);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut c = SingleThreadCollector::new();
        c.access(7);
        c.access(7);
        let h = c.into_histogram();
        assert_eq!(h.iter().next(), Some((0, 1)));
    }

    #[test]
    fn multithread_private_matches_single_when_disjoint() {
        // Two threads touching disjoint lines: private distances unaffected
        // by interleaving.
        let mut m = MultiThreadCollector::new(2);
        for _ in 0..3 {
            for line in 0..4u64 {
                m.access(0, line, false);
                m.access(1, 100 + line, false);
            }
        }
        let e0 = m.end_epoch(0);
        assert_eq!(e0.private.cold, 4);
        let buckets: Vec<(u64, u64)> = e0.private.iter().collect();
        assert_eq!(buckets, vec![(3, 8)]);
        // Global distances are doubled (+1) by interleaving: 2*3+1 = 7.
        let gbuckets: Vec<(u64, u64)> = e0.global.iter().collect();
        assert_eq!(gbuckets, vec![(7, 8)]);
    }

    #[test]
    fn paper_figure2_example() {
        // Thread 1: D E F F D — second D: private rd 3, global rd 7 after
        // interleaving with thread 2's A B B D A... Reproduce the figure's
        // interleaving: D A B E F B F D D A (t1 accesses D E F F D,
        // t2 accesses A B B D A).
        let mut m = MultiThreadCollector::new(2);
        // interleave exactly as drawn
        m.access(0, 'D' as u64, false); // t1 D
        m.access(1, 'A' as u64, false); // t2 A
        m.access(1, 'B' as u64, false); // t2 B
        m.access(0, 'E' as u64, false); // t1 E
        m.access(0, 'F' as u64, false); // t1 F
        m.access(1, 'B' as u64, false); // t2 B
        m.access(0, 'F' as u64, false); // t1 F
        m.access(1, 'D' as u64, false); // t2 D  (shares D with t1!)
        m.access(0, 'D' as u64, false); // t1 D  (second access)
        m.access(1, 'A' as u64, false); // t2 A

        let e0 = m.end_epoch(0);
        let e1 = m.end_epoch(1);
        // t1's second D: private distance = 3 (E F F in between).
        let d_priv: Vec<(u64, u64)> = e0.private.iter().collect();
        assert!(d_priv.contains(&(3, 1)), "{d_priv:?}");
        // t1's second F: private distance 0; global distance 1 (B between).
        assert!(e0.global.iter().any(|(d, _)| d == 1));
        // t2's D was brought in new for t2 but t1 accessed it at global 0:
        // positive interference — global distance finite (6), not cold.
        assert_eq!(e1.global.cold, 2, "only A and B are globally cold");
        assert!(e1.global.iter().any(|(d, _)| d == 6));
    }

    #[test]
    fn write_invalidation_detected() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 5, false); // t0 reads line 5
        m.access(1, 5, true); // t1 writes line 5
        m.access(0, 5, false); // t0 re-reads: invalidated
        let e0 = m.end_epoch(0);
        assert_eq!(e0.private.invalidated, 1);
        assert_eq!(e0.private.cold, 1); // the first access
                                        // Global reuse still finite (LLC keeps the line).
        assert_eq!(e0.global.total_finite(), 1);
    }

    #[test]
    fn own_writes_do_not_invalidate() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 5, true);
        m.access(0, 5, true);
        m.access(0, 5, false);
        let e0 = m.end_epoch(0);
        assert_eq!(e0.private.invalidated, 0);
        assert_eq!(e0.private.total_finite(), 2);
    }

    #[test]
    fn remote_write_before_first_access_is_positive_interference() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 9, true); // t0 writes (producer)
        m.access(1, 9, false); // t1 first touch: globally warm
        let e1 = m.end_epoch(1);
        assert_eq!(e1.private.cold, 1);
        assert_eq!(e1.global.cold, 0);
        assert_eq!(e1.global.total_finite(), 1);
    }

    #[test]
    fn epochs_reset_accumulation_but_not_line_state() {
        let mut m = MultiThreadCollector::new(1);
        m.access(0, 1, false);
        let e1 = m.end_epoch(0);
        assert_eq!(e1.accesses, 1);
        m.access(0, 1, false); // reuse across epoch boundary
        let e2 = m.end_epoch(0);
        assert_eq!(e2.accesses, 1);
        assert_eq!(e2.private.cold, 0, "line state persists across epochs");
        assert_eq!(e2.private.total_finite(), 1);
    }

    #[test]
    fn store_counting() {
        let mut m = MultiThreadCollector::new(1);
        m.access(0, 1, true);
        m.access(0, 2, false);
        m.access(0, 3, true);
        let e = m.end_epoch(0);
        assert_eq!(e.stores, 2);
        assert_eq!(e.accesses, 3);
    }

    #[test]
    fn unique_lines_counts_distinct() {
        let mut m = MultiThreadCollector::new(2);
        m.access(0, 1, false);
        m.access(1, 1, false);
        m.access(0, 2, false);
        assert_eq!(m.unique_lines(), 2);
        assert_eq!(m.total_accesses(), 3);
    }
}

//! Dynamic micro-operations.

use serde::{Deserialize, Serialize};

/// Functional class of a micro-operation.
///
/// The class determines which functional unit executes the operation and its
/// nominal execution latency (see [`OpClass::latency`]). The set matches the
/// granularity of the instruction-mix statistics collected by the paper's
/// profiler (integer, multiply/divide, floating point, loads, stores,
/// branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply (and fused multiply-add).
    FpMul,
    /// Floating-point divide / square root (long latency, unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

/// Number of distinct [`OpClass`] values.
pub const NUM_OP_CLASSES: usize = 9;

/// Number of issue-port pools (see [`OpClass::port_pool`]).
pub const NUM_PORT_POOLS: usize = 5;

impl OpClass {
    /// All classes, in a fixed order matching [`OpClass::index`].
    pub const ALL: [OpClass; NUM_OP_CLASSES] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Dense index of this class in `[0, NUM_OP_CLASSES)`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Nominal execution latency in cycles.
    ///
    /// These latencies are *model inputs* shared by the profiler (for
    /// critical-path analysis), the analytical model and the simulator —
    /// the same convention as the single-threaded model of Van den Steen et
    /// al., which assumes fixed per-class latencies. Load latency here is the
    /// L1 hit latency; cache misses add on top (simulator) or are modelled
    /// separately (Equation 1 memory components).
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 18,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 15,
            OpClass::Load => 3,
            OpClass::Store => 1,
            OpClass::Branch => 1,
        }
    }

    /// Whether this class accesses data memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Issue-port pool executing this class. Classes in the same pool share
    /// functional units (e.g. FP adds and multiplies share the FP pipes).
    #[inline]
    pub fn port_pool(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul | OpClass::IntDiv => 1,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => 2,
            OpClass::Load | OpClass::Store => 3,
            OpClass::Branch => 4,
        }
    }

    /// Whether the functional unit is pipelined (can accept a new operation
    /// every cycle). Divides are not.
    #[inline]
    pub fn pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// One dynamic micro-operation.
///
/// `src1`/`src2` are register dependence *distances*: `src1 == k` means the
/// operation consumes the result of the `k`-th previous micro-op in the same
/// thread (0 means no dependence). Distances are what a
/// microarchitecture-independent profile records — they translate to
/// instruction-window pressure on any target machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Functional class.
    pub class: OpClass,
    /// First input dependence distance (0 = none).
    pub src1: u16,
    /// Second input dependence distance (0 = none).
    pub src2: u16,
    /// Data address in units of cache lines (valid for loads/stores).
    pub line: u64,
    /// Instruction cache line holding this op.
    pub code_line: u64,
    /// Static branch site identifier (valid for branches).
    pub site: u32,
    /// Branch outcome (valid for branches).
    pub taken: bool,
}

impl MicroOp {
    /// Creates a non-memory, non-branch op of the given class.
    pub fn compute(class: OpClass, src1: u16, src2: u16) -> Self {
        MicroOp {
            class,
            src1,
            src2,
            line: 0,
            code_line: 0,
            site: 0,
            taken: false,
        }
    }

    /// Creates a load of `line`.
    pub fn load(line: u64, src1: u16) -> Self {
        MicroOp {
            class: OpClass::Load,
            src1,
            src2: 0,
            line,
            code_line: 0,
            site: 0,
            taken: false,
        }
    }

    /// Creates a store to `line`.
    pub fn store(line: u64, src1: u16) -> Self {
        MicroOp {
            class: OpClass::Store,
            src1,
            src2: 0,
            line,
            code_line: 0,
            site: 0,
            taken: false,
        }
    }

    /// Creates a conditional branch at static `site` with the given outcome.
    pub fn branch(site: u32, taken: bool, src1: u16) -> Self {
        MicroOp {
            class: OpClass::Branch,
            src1,
            src2: 0,
            line: 0,
            code_line: 0,
            site,
            taken,
        }
    }

    /// Whether the op reads or writes data memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.class.is_mem()
    }

    /// Whether the op writes data memory.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; NUM_OP_CLASSES];
        for c in OpClass::ALL {
            assert!(!seen[c.index()], "duplicate index {}", c.index());
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn latencies_positive() {
        for c in OpClass::ALL {
            assert!(c.latency() >= 1);
        }
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!OpClass::IntDiv.pipelined());
        assert!(!OpClass::FpDiv.pipelined());
        assert!(OpClass::IntAlu.pipelined());
        assert!(OpClass::Load.pipelined());
    }

    #[test]
    fn mem_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(MicroOp::load(3, 0).is_mem());
        assert!(MicroOp::store(3, 0).is_store());
        assert!(!MicroOp::load(3, 0).is_store());
    }

    #[test]
    fn constructors_set_fields() {
        let b = MicroOp::branch(7, true, 2);
        assert_eq!(b.class, OpClass::Branch);
        assert_eq!(b.site, 7);
        assert!(b.taken);
        assert_eq!(b.src1, 2);

        let l = MicroOp::load(42, 1);
        assert_eq!(l.line, 42);
        assert_eq!(l.class, OpClass::Load);
    }

    #[test]
    fn port_pools_are_dense() {
        let mut seen = [false; NUM_PORT_POOLS];
        for c in OpClass::ALL {
            seen[c.port_pool()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(OpClass::FpAdd.port_pool(), OpClass::FpMul.port_pool());
        assert_eq!(OpClass::Load.port_pool(), OpClass::Store.port_pool());
        assert_ne!(OpClass::IntAlu.port_pool(), OpClass::Load.port_pool());
    }

    #[test]
    fn display_is_nonempty() {
        for c in OpClass::ALL {
            assert!(!format!("{c}").is_empty());
        }
    }
}

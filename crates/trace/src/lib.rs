//! Workload trace intermediate representation for RPPM.
//!
//! This crate provides the *microarchitecture-independent* representation of
//! a multi-threaded workload used throughout the RPPM reproduction:
//!
//! * [`MicroOp`] / [`OpClass`] — dynamic micro-operations with register
//!   dependence distances, cache-line addresses and branch outcomes. This is
//!   the same information a Pin-based profiler observes from a native
//!   execution; here it is produced by a deterministic generator.
//! * [`SyncOp`] — synchronization events (thread creation/join, barriers,
//!   critical sections, condition-variable producer/consumer operations)
//!   mirroring the pthread/OpenMP library calls the paper's profiler hooks.
//! * [`Program`] / [`ThreadScript`] — a whole multi-threaded workload: one
//!   script per thread, each a sequence of parametric instruction
//!   [`BlockSpec`]s interleaved with synchronization events. Blocks are
//!   expanded lazily and deterministically, so multi-million-instruction
//!   workloads occupy almost no memory.
//! * [`ProgramBuilder`] — an ergonomic DSL used by `rppm-workloads` to define
//!   the Rodinia/Parsec benchmark analogs.
//! * [`MachineConfig`] — the target multicore description shared by the
//!   golden-reference simulator (`rppm-sim`) and the analytical model
//!   (`rppm-core`). Includes the five design points of Table IV.
//! * [`machine`][mod@machine] — the `.machine` text format for machine
//!   descriptions: [`read_machine`] / [`write_machine`] with a versioned
//!   key=value layout and typed [`MachineFileError`]s, so design points
//!   come from files instead of code.
//! * [`file`][mod@file] — the versioned on-disk trace interchange format:
//!   [`export_program`] / [`import_program`] with schema-version checking
//!   and typed, actionable errors, so externally collected traces can be
//!   fed to the profiler.
//! * [`binary`][mod@binary] — the `RPT1` binary streaming container for
//!   the same programs: length-prefixed sections, varint + delta encoding,
//!   and a [`TraceWriter`] / [`TraceReader`] pair that never holds more
//!   than one section in memory. [`read_program_any`] auto-detects either
//!   format by magic bytes.
//! * [`ops`][mod@ops] — out-of-core op streams: [`write_program_ops`]
//!   records the fully expanded micro-op stream into a version-3 `RPT1`
//!   container, [`OpReplay`] replays it without re-expansion through a
//!   chunk-pooled streaming reader (mmap-backed where available) under a
//!   configurable [`StreamOptions`] memory budget, and
//!   [`read_program_sections`] decodes sections in parallel. Both
//!   [`Program`] and [`OpReplay`] implement [`ExecSource`], so the
//!   profiler and simulators drive either through one cursor API.
//! * [`par`][mod@par] — the tiny scoped-thread parallel runtime
//!   ([`par::parallel_for`] / [`par::parallel_map`] / [`par::default_jobs`])
//!   shared by section decoding here and every crate above.
//!
//! # Example
//!
//! ```
//! use rppm_trace::{ProgramBuilder, BlockSpec, AddressPattern, BranchPattern};
//!
//! let mut b = ProgramBuilder::new("demo", 2);
//! let region = b.alloc_region(1024); // 1024 cache lines
//! let barrier = b.alloc_barrier();
//! for t in 0..2 {
//!     b.thread(t)
//!         .block(
//!             BlockSpec::new(10_000, 0xC0FFEE + t as u64)
//!                 .loads(0.25)
//!                 .stores(0.05)
//!                 .branches(0.1)
//!                 .addr(AddressPattern::stream(region), 1.0)
//!                 .branch_pattern(BranchPattern::loop_every(16)),
//!         )
//!         .barrier(barrier);
//! }
//! b.thread(0).create(1.into());
//! let program = b.build();
//! assert_eq!(program.num_threads(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binary;
pub mod block;
pub mod builder;
pub mod config;
pub mod cpi;
pub mod cursor;
pub mod file;
pub mod machine;
pub mod op;
pub mod ops;
pub mod par;
pub mod pattern;
pub mod program;
pub mod rng;
pub mod sync;

pub use binary::{
    export_program_binary, has_binary_extension, import_program_binary, import_program_bytes,
    read_program_any, read_program_binary, read_program_stream, write_program_binary, TraceReader,
    TraceWriter, BINARY_TRACE_MAGIC, BINARY_TRACE_VERSION,
};
pub use block::BlockSpec;
pub use builder::{ProgramBuilder, ThreadBuilder};
pub use config::{
    BranchPredictorConfig, CacheGeometry, DesignPoint, FuConfig, MachineConfig,
    MachineConfigBuilder,
};
pub use cpi::CpiStack;
pub use cursor::{BlockItem, CursorItem, ExecSource, ThreadCursor};
pub use file::{
    export_program, import_program, program_fingerprint, read_program, write_program,
    TraceFileError, TRACE_FORMAT, TRACE_VERSION,
};
pub use machine::{
    format_machine, parse_machine, read_machine, write_machine, MachineFileError, MACHINE_FORMAT,
    MACHINE_VERSION,
};
pub use op::{MicroOp, OpClass};
pub use ops::{
    container_info, export_program_ops, read_program_sections, record_ops, write_program_ops,
    ContainerInfo, OpReplay, SectionSummary, StreamOptions,
};
pub use pattern::{AddressPattern, BranchPattern, Region};
pub use program::{Program, ProgramError, Segment, ThreadScript};
pub use rng::Rng;
pub use sync::{BarrierId, CondId, MutexId, QueueId, SyncOp, ThreadId};

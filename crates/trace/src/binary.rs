//! Versioned binary streaming trace container (`RPT1`).
//!
//! The JSON interchange format ([`crate::file`]) is the human-auditable way
//! to move traces between tools; this module is its high-volume sibling: a
//! compact, length-prefixed binary container designed to be **streamed** —
//! written and read section by section, so neither side ever materializes
//! more than one section of the trace in memory. At op-level stream sizes
//! (the multi-GB traces the roadmap targets) that is the difference between
//! "works" and "OOM".
//!
//! # Layout
//!
//! ```text
//! magic    4 bytes   "RPT1"
//! version  varint    container schema version (1, 2 or 3)
//! sections repeated  [tag: varint][len: varint][payload: len bytes]
//! ```
//!
//! Three section kinds exist in every version:
//!
//! | tag | name   | payload |
//! |-----|--------|---------|
//! | 1   | header | workload name (varint length + UTF-8), thread count (varint) |
//! | 2   | ops    | thread id (varint), segment count (varint), segment records |
//! | 3   | end    | total segment count across all ops sections (varint) |
//!
//! Version 3 adds three *op-stream* section kinds carrying the recorded
//! raw [`MicroOp`](crate::MicroOp) stream (see [`crate::ops`] for their
//! payload encodings and the record/replay machinery):
//!
//! | tag | name    | payload |
//! |-----|---------|---------|
//! | 4   | op-run  | thread id (varint), op count (varint), encoded micro-ops |
//! | 5   | op-sync | thread id (varint), one encoded synchronization event |
//! | 6   | op-meta | op-section count, total ops, total syncs, per-thread op counts (varints) |
//!
//! The header section must come first, exactly once; the end section must
//! come last and is followed by nothing (trailing bytes are rejected). A
//! file that stops before its end section is reliably detected as
//! [`TraceFileError::Truncated`] — every section is length-prefixed, so a
//! partial write can never be misread as a complete trace.
//!
//! Segment records use **varint** (LEB128) encoding for integers and
//! **delta + zigzag** encoding for the address-like fields that grow
//! monotonically across a thread's stream: data-region base addresses,
//! instruction-line bases (PCs) and branch-site bases are each encoded as
//! the signed difference from the previous value *in the same thread*.
//! Model fractions/probabilities are stored as 8-byte little-endian IEEE
//! doubles (their bit patterns do not compress under varint). In versions
//! 1 and 2 the per-thread delta state persists across sections, so a long
//! thread split over many ops sections costs nothing extra; version 3
//! resets it at every section boundary instead, which costs a few bytes
//! per section but makes every section independently decodable — the
//! property the section-parallel importer and the out-of-core replay
//! cursors in [`crate::ops`] are built on.
//!
//! # Versioning policy
//!
//! Same contract as the JSON format: within a version the container only
//! changes additively (new segment tags bump the version, because an old
//! reader cannot skip content it does not understand and still guarantee a
//! faithful program). Readers accept versions 1 through
//! [`BINARY_TRACE_VERSION`]; newer files fail with
//! [`TraceFileError::UnsupportedVersion`]. Writers emit the *smallest*
//! version able to carry the program — a trace without version-2 events
//! (reader-writer locks, semaphores) is byte-identical to what a version-1
//! tool would have written, and version 3 is only emitted when op streams
//! are recorded. The version-2 segment tags are rejected as
//! [`TraceFileError::Corrupt`] when they appear in a stream that declares
//! version 1, and the version-3 op-stream section tags are rejected the
//! same way in streams declaring version 1 or 2.
//!
//! # Example
//!
//! ```
//! use rppm_trace::{export_program_binary, import_program_binary};
//! use rppm_trace::{BlockSpec, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("demo", 2);
//! b.spawn_workers();
//! b.thread(1u32).block(BlockSpec::new(1_000, 7).loads(0.2));
//! b.join_workers();
//! let program = b.build();
//!
//! let bytes = export_program_binary(&program).expect("serializes");
//! assert_eq!(&bytes[..4], b"RPT1");
//! let back = import_program_binary(&bytes).expect("round-trips");
//! assert_eq!(program, back);
//! ```

use crate::block::BlockSpec;
use crate::file::{self, TraceFileError};
use crate::pattern::{AddressPattern, BranchPattern, Region};
use crate::program::{Program, Segment, ThreadScript};
use crate::sync::SyncOp;
use std::io::{Read, Write};
use std::path::Path;

/// The four magic bytes opening every binary trace file.
pub const BINARY_TRACE_MAGIC: [u8; 4] = *b"RPT1";

/// Newest container schema version this build understands. Readers accept
/// versions `1..=BINARY_TRACE_VERSION`; whole-program writers emit the
/// smallest version able to carry the program (see
/// [`Program::format_version`]).
pub const BINARY_TRACE_VERSION: u32 = 3;

/// First container version whose sections are independently decodable
/// (per-section delta reset) and which may carry op-stream sections.
pub(crate) const OPS_MIN_VERSION: u32 = 3;

/// Maximum segments buffered into one ops section before the writer
/// flushes. Bounds writer and reader memory to O(section), not O(program).
pub(crate) const SECTION_SEGMENTS: u64 = 256;

/// Upper bound on a declared section payload size. A corrupt length prefix
/// must not make the reader allocate unbounded memory.
pub(crate) const MAX_SECTION_BYTES: u64 = 1 << 26; // 64 MiB

/// Upper bound on a declared thread count, for the same reason: the reader
/// allocates per-thread state up front, and a corrupt header must not turn
/// that into an unbounded allocation.
pub(crate) const MAX_THREADS: u64 = 1 << 20;

pub(crate) const TAG_HEADER: u64 = 1;
pub(crate) const TAG_OPS: u64 = 2;
pub(crate) const TAG_END: u64 = 3;
// Version-3 op-stream section tags; invalid in streams declaring 1 or 2.
pub(crate) const TAG_OP_RUN: u64 = 4;
pub(crate) const TAG_OP_SYNC: u64 = 5;
pub(crate) const TAG_OP_META: u64 = 6;

const SEG_BLOCK: u8 = 0;
const SEG_CREATE: u8 = 1;
const SEG_JOIN: u8 = 2;
const SEG_BARRIER: u8 = 3;
const SEG_LOCK: u8 = 4;
const SEG_UNLOCK: u8 = 5;
const SEG_PRODUCE: u8 = 6;
const SEG_CONSUME: u8 = 7;
// Version-2 segment tags; invalid in a stream that declares version 1.
const SEG_RWLOCK: u8 = 8;
const SEG_RWUNLOCK: u8 = 9;
const SEG_SEMWAIT: u8 = 10;
const SEG_SEMPOST: u8 = 11;

/// Smallest container version able to carry `seg`.
fn segment_min_version(seg: &Segment) -> u32 {
    match seg {
        Segment::Block(_) => 1,
        Segment::Sync(op) => op.min_format_version(),
    }
}

const ADDR_STREAM: u8 = 0;
const ADDR_RANDOM: u8 = 1;
const ADDR_HOT: u8 = 2;

const BRANCH_LOOP: u8 = 0;
const BRANCH_BERNOULLI: u8 = 1;
const BRANCH_PERIODIC: u8 = 2;

// ---------------------------------------------------------------------------
// varint / zigzag primitives

pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `new` as a zigzag delta against `prev` (wrapping, so the full
/// `u64` domain round-trips) and updates `prev`.
pub(crate) fn push_delta(buf: &mut Vec<u8>, prev: &mut u64, new: u64) {
    push_varint(buf, zigzag(new.wrapping_sub(*prev) as i64));
    *prev = new;
}

pub(crate) fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------------
// Per-thread delta state (shared by writer and reader so they stay in sync)

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DeltaState {
    region_base: u64,
    code_base: u64,
    site_base: u64,
}

// ---------------------------------------------------------------------------
// Segment encoding

fn encode_region(buf: &mut Vec<u8>, d: &mut DeltaState, r: &Region) {
    push_delta(buf, &mut d.region_base, r.base);
    push_varint(buf, r.lines);
}

fn encode_addr_pattern(buf: &mut Vec<u8>, d: &mut DeltaState, p: &AddressPattern) {
    match p {
        AddressPattern::Stream {
            region,
            stride,
            repeats_per_line,
            start,
        } => {
            buf.push(ADDR_STREAM);
            encode_region(buf, d, region);
            push_varint(buf, *stride);
            push_varint(buf, *repeats_per_line as u64);
            push_varint(buf, *start);
        }
        AddressPattern::Random { region } => {
            buf.push(ADDR_RANDOM);
            encode_region(buf, d, region);
        }
        AddressPattern::Hot {
            region,
            hot_lines,
            p_hot,
        } => {
            buf.push(ADDR_HOT);
            encode_region(buf, d, region);
            push_varint(buf, *hot_lines);
            push_f64(buf, *p_hot);
        }
    }
}

fn encode_branch_pattern(buf: &mut Vec<u8>, p: &BranchPattern) {
    match p {
        BranchPattern::Loop { period } => {
            buf.push(BRANCH_LOOP);
            push_varint(buf, *period as u64);
        }
        BranchPattern::Bernoulli { p_taken } => {
            buf.push(BRANCH_BERNOULLI);
            push_f64(buf, *p_taken);
        }
        BranchPattern::Periodic { bits, len } => {
            buf.push(BRANCH_PERIODIC);
            push_varint(buf, *bits);
            buf.push(*len);
        }
    }
}

pub(crate) fn encode_segment(buf: &mut Vec<u8>, d: &mut DeltaState, seg: &Segment) {
    match seg {
        Segment::Block(b) => {
            buf.push(SEG_BLOCK);
            push_varint(buf, b.ops as u64);
            push_varint(buf, b.seed);
            for f in [
                b.f_load,
                b.f_store,
                b.f_branch,
                b.f_fp_add,
                b.f_fp_mul,
                b.f_fp_div,
                b.f_int_mul,
                b.f_int_div,
                b.p_dep,
                b.dep_mean,
                b.p_dep2,
                b.p_load_chain,
            ] {
                push_f64(buf, f);
            }
            push_varint(buf, b.n_sites as u64);
            push_delta(buf, &mut d.site_base, b.site_base as u64);
            push_varint(buf, b.code_lines);
            push_delta(buf, &mut d.code_base, b.code_base);
            push_varint(buf, b.addr.len() as u64);
            for (p, w) in &b.addr {
                encode_addr_pattern(buf, d, p);
                push_f64(buf, *w);
            }
            push_varint(buf, b.store_addr.len() as u64);
            for (p, w) in &b.store_addr {
                encode_addr_pattern(buf, d, p);
                push_f64(buf, *w);
            }
            encode_branch_pattern(buf, &b.branch);
        }
        Segment::Sync(op) => match op {
            SyncOp::Create { child } => {
                buf.push(SEG_CREATE);
                push_varint(buf, child.0 as u64);
            }
            SyncOp::Join { child } => {
                buf.push(SEG_JOIN);
                push_varint(buf, child.0 as u64);
            }
            SyncOp::Barrier { id, via_cond } => {
                buf.push(SEG_BARRIER);
                push_varint(buf, id.0 as u64);
                buf.push(*via_cond as u8);
            }
            SyncOp::Lock { id } => {
                buf.push(SEG_LOCK);
                push_varint(buf, id.0 as u64);
            }
            SyncOp::Unlock { id } => {
                buf.push(SEG_UNLOCK);
                push_varint(buf, id.0 as u64);
            }
            SyncOp::Produce { queue, count } => {
                buf.push(SEG_PRODUCE);
                push_varint(buf, queue.0 as u64);
                push_varint(buf, *count as u64);
            }
            SyncOp::Consume { queue } => {
                buf.push(SEG_CONSUME);
                push_varint(buf, queue.0 as u64);
            }
            SyncOp::RwLock { id, write } => {
                buf.push(SEG_RWLOCK);
                push_varint(buf, id.0 as u64);
                buf.push(*write as u8);
            }
            SyncOp::RwUnlock { id } => {
                buf.push(SEG_RWUNLOCK);
                push_varint(buf, id.0 as u64);
            }
            SyncOp::SemWait { id } => {
                buf.push(SEG_SEMWAIT);
                push_varint(buf, id.0 as u64);
            }
            SyncOp::SemPost { id, count } => {
                buf.push(SEG_SEMPOST);
                push_varint(buf, id.0 as u64);
                push_varint(buf, *count as u64);
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Streaming writer

/// Streaming binary trace writer.
///
/// Segments are appended one at a time with [`TraceWriter::write_segment`]
/// and flushed to the underlying sink in bounded, length-prefixed sections —
/// the whole program never exists in memory at once. [`TraceWriter::finish`]
/// seals the container with an end section carrying the total segment
/// count, which lets readers distinguish a complete trace from one cut off
/// at a section boundary.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    version: u32,
    num_threads: u32,
    deltas: Vec<DeltaState>,
    cur_thread: u32,
    buf: Vec<u8>,
    buf_segments: u64,
    total_segments: u64,
}

pub(crate) fn stream_err(context: &str, source: std::io::Error) -> TraceFileError {
    TraceFileError::Stream {
        context: context.to_string(),
        source,
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a version-1 binary trace: writes the magic, version and
    /// header section. The container version is fixed at construction (it
    /// is the first thing on the wire), so streams that will carry
    /// version-2 events (reader-writer locks, semaphores) must be opened
    /// with [`TraceWriter::with_version`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Stream`] if the sink rejects the write.
    pub fn new(sink: W, name: &str, num_threads: u32) -> Result<Self, TraceFileError> {
        Self::with_version(sink, name, num_threads, 1)
    }

    /// Starts a binary trace with an explicit container `version`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Unserializable`] if `version` is outside
    /// `1..=BINARY_TRACE_VERSION`, and [`TraceFileError::Stream`] if the
    /// sink rejects the write.
    pub fn with_version(
        mut sink: W,
        name: &str,
        num_threads: u32,
        version: u32,
    ) -> Result<Self, TraceFileError> {
        if !(1..=BINARY_TRACE_VERSION).contains(&version) {
            return Err(TraceFileError::Unserializable {
                detail: format!(
                    "cannot write container version {version}; this build writes versions \
                     1 through {BINARY_TRACE_VERSION}"
                ),
            });
        }
        let mut head = Vec::with_capacity(16 + name.len());
        head.extend_from_slice(&BINARY_TRACE_MAGIC);
        push_varint(&mut head, version as u64);
        let mut payload = Vec::with_capacity(8 + name.len());
        push_varint(&mut payload, name.len() as u64);
        payload.extend_from_slice(name.as_bytes());
        push_varint(&mut payload, num_threads as u64);
        push_varint(&mut head, TAG_HEADER);
        push_varint(&mut head, payload.len() as u64);
        head.extend_from_slice(&payload);
        sink.write_all(&head)
            .map_err(|e| stream_err("writing the container header", e))?;
        Ok(TraceWriter {
            sink,
            version,
            num_threads,
            deltas: vec![DeltaState::default(); num_threads as usize],
            cur_thread: 0,
            buf: Vec::new(),
            buf_segments: 0,
            total_segments: 0,
        })
    }

    /// Container version this stream was opened with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Appends one segment of `thread`'s stream.
    ///
    /// Threads may be written in any order (each thread switch flushes the
    /// pending section), but segments of one thread must arrive in stream
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Corrupt`] if `thread` is outside the
    /// declared thread count, [`TraceFileError::Unserializable`] if the
    /// segment needs a newer container version than the stream was opened
    /// with, and [`TraceFileError::Stream`] on sink I/O failure.
    pub fn write_segment(&mut self, thread: u32, seg: &Segment) -> Result<(), TraceFileError> {
        if thread >= self.num_threads {
            return Err(TraceFileError::Corrupt {
                detail: format!(
                    "segment written for thread {thread}, but the header declares only \
                     {} threads",
                    self.num_threads
                ),
            });
        }
        let needs = segment_min_version(seg);
        if needs > self.version {
            return Err(TraceFileError::Unserializable {
                detail: format!(
                    "segment requires container version {needs} (reader-writer locks and \
                     semaphores are version-2 events), but this stream was opened as \
                     version {}; open the writer with TraceWriter::with_version",
                    self.version
                ),
            });
        }
        if thread != self.cur_thread || self.buf_segments >= SECTION_SEGMENTS {
            self.flush_section()?;
            self.cur_thread = thread;
        }
        encode_segment(&mut self.buf, &mut self.deltas[thread as usize], seg);
        self.buf_segments += 1;
        self.total_segments += 1;
        Ok(())
    }

    /// Appends a whole thread script (convenience over
    /// [`TraceWriter::write_segment`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TraceWriter::write_segment`].
    pub fn write_script(
        &mut self,
        thread: u32,
        script: &ThreadScript,
    ) -> Result<(), TraceFileError> {
        for seg in &script.segments {
            self.write_segment(thread, seg)?;
        }
        Ok(())
    }

    fn flush_section(&mut self) -> Result<(), TraceFileError> {
        if self.buf_segments == 0 {
            return Ok(());
        }
        let mut head = Vec::with_capacity(24);
        let mut prefix = Vec::with_capacity(12);
        push_varint(&mut prefix, self.cur_thread as u64);
        push_varint(&mut prefix, self.buf_segments);
        push_varint(&mut head, TAG_OPS);
        push_varint(&mut head, (prefix.len() + self.buf.len()) as u64);
        head.extend_from_slice(&prefix);
        self.sink
            .write_all(&head)
            .map_err(|e| stream_err("writing an ops section header", e))?;
        self.sink
            .write_all(&self.buf)
            .map_err(|e| stream_err("writing an ops section payload", e))?;
        self.buf.clear();
        self.buf_segments = 0;
        // Version 3 sections are independently decodable: the delta chain
        // restarts at every section boundary (readers reset symmetrically).
        if self.version >= OPS_MIN_VERSION {
            self.deltas[self.cur_thread as usize] = DeltaState::default();
        }
        Ok(())
    }

    /// Writes one raw section (flushing any pending segment section first).
    /// Used by [`crate::ops`] for the version-3 op-stream sections, which
    /// are not counted as program segments.
    pub(crate) fn write_raw_section(
        &mut self,
        tag: u64,
        payload: &[u8],
    ) -> Result<(), TraceFileError> {
        self.flush_section()?;
        let mut head = Vec::with_capacity(16);
        push_varint(&mut head, tag);
        push_varint(&mut head, payload.len() as u64);
        self.sink
            .write_all(&head)
            .map_err(|e| stream_err("writing a raw section header", e))?;
        self.sink
            .write_all(payload)
            .map_err(|e| stream_err("writing a raw section payload", e))?;
        Ok(())
    }

    /// Flushes pending segments, writes the end section, and returns the
    /// underlying sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Stream`] on sink I/O failure.
    pub fn finish(mut self) -> Result<W, TraceFileError> {
        self.flush_section()?;
        let mut payload = Vec::with_capacity(12);
        push_varint(&mut payload, self.total_segments);
        let mut head = Vec::with_capacity(16);
        push_varint(&mut head, TAG_END);
        push_varint(&mut head, payload.len() as u64);
        head.extend_from_slice(&payload);
        self.sink
            .write_all(&head)
            .map_err(|e| stream_err("writing the end section", e))?;
        self.sink
            .flush()
            .map_err(|e| stream_err("flushing the trace", e))?;
        Ok(self.sink)
    }
}

// ---------------------------------------------------------------------------
// Section payload decoding

pub(crate) struct Bytes<'a> {
    pub(crate) b: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Bytes<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Self {
        Bytes { b, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    pub(crate) fn u8(&mut self, context: &str) -> Result<u8, TraceFileError> {
        if self.pos >= self.b.len() {
            return Err(TraceFileError::Truncated {
                context: context.to_string(),
            });
        }
        let v = self.b[self.pos];
        self.pos += 1;
        Ok(v)
    }

    pub(crate) fn varint(&mut self, context: &str) -> Result<u64, TraceFileError> {
        let mut v: u64 = 0;
        for shift in 0..10u32 {
            let byte = self.u8(context)?;
            if shift == 9 && byte > 1 {
                return Err(TraceFileError::VarintOverrun {
                    context: context.to_string(),
                });
            }
            v |= ((byte & 0x7F) as u64) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceFileError::VarintOverrun {
            context: context.to_string(),
        })
    }

    pub(crate) fn varint_u32(&mut self, context: &str) -> Result<u32, TraceFileError> {
        let v = self.varint(context)?;
        u32::try_from(v).map_err(|_| TraceFileError::Corrupt {
            detail: format!("{context}: value {v} does not fit in 32 bits"),
        })
    }

    pub(crate) fn f64(&mut self, context: &str) -> Result<f64, TraceFileError> {
        if self.remaining() < 8 {
            return Err(TraceFileError::Truncated {
                context: context.to_string(),
            });
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.b[self.pos..self.pos + 8]);
        self.pos += 8;
        let v = f64::from_bits(u64::from_le_bytes(bytes));
        if !v.is_finite() {
            return Err(TraceFileError::Corrupt {
                detail: format!("{context}: non-finite float"),
            });
        }
        Ok(v)
    }

    pub(crate) fn delta(&mut self, prev: &mut u64, context: &str) -> Result<u64, TraceFileError> {
        let d = unzigzag(self.varint(context)?);
        *prev = prev.wrapping_add(d as u64);
        Ok(*prev)
    }
}

fn decode_region(b: &mut Bytes<'_>, d: &mut DeltaState) -> Result<Region, TraceFileError> {
    let base = b.delta(&mut d.region_base, "a region base address")?;
    let lines = b.varint("a region extent")?;
    if lines == 0 {
        return Err(TraceFileError::Corrupt {
            detail: "region with zero lines".to_string(),
        });
    }
    Ok(Region { base, lines })
}

fn decode_addr_pattern(
    b: &mut Bytes<'_>,
    d: &mut DeltaState,
) -> Result<AddressPattern, TraceFileError> {
    match b.u8("an address-pattern tag")? {
        ADDR_STREAM => Ok(AddressPattern::Stream {
            region: decode_region(b, d)?,
            stride: b.varint("a stream stride")?,
            repeats_per_line: b.varint_u32("stream repeats-per-line")?,
            start: b.varint("a stream start offset")?,
        }),
        ADDR_RANDOM => Ok(AddressPattern::Random {
            region: decode_region(b, d)?,
        }),
        ADDR_HOT => Ok(AddressPattern::Hot {
            region: decode_region(b, d)?,
            hot_lines: b.varint("a hot-set size")?,
            p_hot: b.f64("a hot-set probability")?,
        }),
        t => Err(TraceFileError::Corrupt {
            detail: format!("unknown address-pattern tag {t}"),
        }),
    }
}

fn decode_branch_pattern(b: &mut Bytes<'_>) -> Result<BranchPattern, TraceFileError> {
    match b.u8("a branch-pattern tag")? {
        BRANCH_LOOP => Ok(BranchPattern::Loop {
            period: b.varint_u32("a loop period")?,
        }),
        BRANCH_BERNOULLI => Ok(BranchPattern::Bernoulli {
            p_taken: b.f64("a taken probability")?,
        }),
        BRANCH_PERIODIC => {
            let bits = b.varint("periodic pattern bits")?;
            let len = b.u8("a periodic pattern length")?;
            if !(1..=64).contains(&len) {
                return Err(TraceFileError::Corrupt {
                    detail: format!("periodic branch pattern length {len} not in 1..=64"),
                });
            }
            Ok(BranchPattern::Periodic { bits, len })
        }
        t => Err(TraceFileError::Corrupt {
            detail: format!("unknown branch-pattern tag {t}"),
        }),
    }
}

pub(crate) fn decode_segment(
    b: &mut Bytes<'_>,
    d: &mut DeltaState,
    version: u32,
) -> Result<Segment, TraceFileError> {
    let tag = b.u8("a segment tag")?;
    if tag >= SEG_RWLOCK && version < 2 {
        return Err(TraceFileError::Corrupt {
            detail: format!(
                "segment tag {tag} requires container version 2, but the stream declares \
                 version {version}"
            ),
        });
    }
    let seg = match tag {
        SEG_BLOCK => {
            let ops = b.varint_u32("a block op count")?;
            let seed = b.varint("a block seed")?;
            const FLOAT_FIELDS: [&str; 12] = [
                "block field f_load",
                "block field f_store",
                "block field f_branch",
                "block field f_fp_add",
                "block field f_fp_mul",
                "block field f_fp_div",
                "block field f_int_mul",
                "block field f_int_div",
                "block field p_dep",
                "block field dep_mean",
                "block field p_dep2",
                "block field p_load_chain",
            ];
            let mut f = [0.0f64; 12];
            for (i, slot) in f.iter_mut().enumerate() {
                *slot = b.f64(FLOAT_FIELDS[i])?;
            }
            let n_sites = b.varint_u32("a block site count")?;
            let site_base = b.delta(&mut d.site_base, "a branch-site base")?;
            let site_base = u32::try_from(site_base).map_err(|_| TraceFileError::Corrupt {
                detail: format!("branch-site base {site_base} does not fit in 32 bits"),
            })?;
            let code_lines = b.varint("a code footprint")?;
            let code_base = b.delta(&mut d.code_base, "a code-line base")?;
            let n_addr = b.varint("an address-pattern count")?;
            let mut addr = Vec::with_capacity(n_addr.min(64) as usize);
            for _ in 0..n_addr {
                let p = decode_addr_pattern(b, d)?;
                let w = b.f64("an address-pattern weight")?;
                addr.push((p, w));
            }
            let n_store = b.varint("a store-pattern count")?;
            let mut store_addr = Vec::with_capacity(n_store.min(64) as usize);
            for _ in 0..n_store {
                let p = decode_addr_pattern(b, d)?;
                let w = b.f64("a store-pattern weight")?;
                store_addr.push((p, w));
            }
            let branch = decode_branch_pattern(b)?;
            Segment::Block(BlockSpec {
                ops,
                seed,
                f_load: f[0],
                f_store: f[1],
                f_branch: f[2],
                f_fp_add: f[3],
                f_fp_mul: f[4],
                f_fp_div: f[5],
                f_int_mul: f[6],
                f_int_div: f[7],
                p_dep: f[8],
                dep_mean: f[9],
                p_dep2: f[10],
                p_load_chain: f[11],
                addr,
                store_addr,
                branch,
                n_sites,
                site_base,
                code_lines,
                code_base,
            })
        }
        SEG_CREATE => Segment::Sync(SyncOp::Create {
            child: b.varint_u32("a created thread id")?.into(),
        }),
        SEG_JOIN => Segment::Sync(SyncOp::Join {
            child: b.varint_u32("a joined thread id")?.into(),
        }),
        SEG_BARRIER => Segment::Sync(SyncOp::Barrier {
            id: b.varint_u32("a barrier id")?.into(),
            via_cond: b.u8("a barrier cond flag")? != 0,
        }),
        SEG_LOCK => Segment::Sync(SyncOp::Lock {
            id: b.varint_u32("a mutex id")?.into(),
        }),
        SEG_UNLOCK => Segment::Sync(SyncOp::Unlock {
            id: b.varint_u32("a mutex id")?.into(),
        }),
        SEG_PRODUCE => Segment::Sync(SyncOp::Produce {
            queue: b.varint_u32("a queue id")?.into(),
            count: b.varint_u32("a produce count")?,
        }),
        SEG_CONSUME => Segment::Sync(SyncOp::Consume {
            queue: b.varint_u32("a queue id")?.into(),
        }),
        SEG_RWLOCK => Segment::Sync(SyncOp::RwLock {
            id: b.varint_u32("a rwlock id")?.into(),
            write: b.u8("a rwlock write flag")? != 0,
        }),
        SEG_RWUNLOCK => Segment::Sync(SyncOp::RwUnlock {
            id: b.varint_u32("a rwlock id")?.into(),
        }),
        SEG_SEMWAIT => Segment::Sync(SyncOp::SemWait {
            id: b.varint_u32("a semaphore id")?.into(),
        }),
        SEG_SEMPOST => Segment::Sync(SyncOp::SemPost {
            id: b.varint_u32("a semaphore id")?.into(),
            count: b.varint_u32("a post count")?,
        }),
        t => {
            return Err(TraceFileError::Corrupt {
                detail: format!("unknown segment tag {t}"),
            })
        }
    };
    Ok(seg)
}

// ---------------------------------------------------------------------------
// Streaming reader

/// Streaming binary trace reader.
///
/// Validates the magic, version and header on construction, then yields
/// `(thread, segment)` pairs one at a time from [`TraceReader::next_segment`]
/// while holding at most one section in memory. [`TraceReader::read_program`]
/// is the convenience that drains the stream into a validated [`Program`].
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    version: u32,
    name: String,
    num_threads: u32,
    deltas: Vec<DeltaState>,
    section: Vec<u8>,
    section_pos: usize,
    section_thread: u32,
    section_remaining: u64,
    segments_seen: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a binary trace stream, validating magic, version and header.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::BadMagic`] if the stream does not start with
    /// `RPT1`, [`TraceFileError::UnsupportedVersion`] for versions this
    /// build cannot read, [`TraceFileError::Truncated`] /
    /// [`TraceFileError::Corrupt`] for malformed headers, and
    /// [`TraceFileError::Stream`] for I/O failures.
    pub fn new(mut source: R) -> Result<Self, TraceFileError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut source, &mut magic, "the RPT1 magic")?;
        if magic != BINARY_TRACE_MAGIC {
            return Err(TraceFileError::BadMagic { found: magic });
        }
        let version = read_varint(&mut source, "the container version")?;
        if !(1..=BINARY_TRACE_VERSION as u64).contains(&version) {
            return Err(TraceFileError::UnsupportedVersion {
                found: version,
                supported: BINARY_TRACE_VERSION,
            });
        }
        let version = version as u32;
        let (tag, payload) = read_section(&mut source, "the header section")?;
        if tag != TAG_HEADER {
            return Err(TraceFileError::Corrupt {
                detail: format!("first section has tag {tag}, expected header (tag {TAG_HEADER})"),
            });
        }
        let mut b = Bytes::new(&payload);
        let name_len = b.varint("the workload name length")?;
        if b.pos as u64 + name_len > payload.len() as u64 {
            return Err(TraceFileError::Truncated {
                context: "the workload name".to_string(),
            });
        }
        let name_bytes = &payload[b.pos..b.pos + name_len as usize];
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| TraceFileError::Corrupt {
                detail: "workload name is not valid UTF-8".to_string(),
            })?
            .to_string();
        b.pos += name_len as usize;
        let num_threads = b.varint_u32("the thread count")?;
        if num_threads as u64 > MAX_THREADS {
            return Err(TraceFileError::Corrupt {
                detail: format!("header declares {num_threads} threads (limit {MAX_THREADS})"),
            });
        }
        Ok(TraceReader {
            source,
            version,
            name,
            num_threads,
            deltas: vec![DeltaState::default(); num_threads as usize],
            section: Vec::new(),
            section_pos: 0,
            section_thread: 0,
            section_remaining: 0,
            segments_seen: 0,
            done: false,
        })
    }

    /// Container version declared by the stream.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Workload name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thread count recorded in the header.
    pub fn num_threads(&self) -> u32 {
        self.num_threads
    }

    /// Yields the next `(thread, segment)` pair, or `None` once the end
    /// section has been reached and verified.
    ///
    /// # Errors
    ///
    /// Any binary-format failure: truncation, varint overruns, unknown
    /// tags, segment-count mismatches, trailing data, or I/O errors.
    pub fn next_segment(&mut self) -> Result<Option<(u32, Segment)>, TraceFileError> {
        if self.done {
            return Ok(None);
        }
        while self.section_remaining == 0 {
            let (tag, payload) = read_section(&mut self.source, "the next section")?;
            match tag {
                TAG_OPS => {
                    let mut b = Bytes::new(&payload);
                    let thread = b.varint_u32("an ops-section thread id")?;
                    if thread >= self.num_threads {
                        return Err(TraceFileError::Corrupt {
                            detail: format!(
                                "ops section for thread {thread}, but the header declares only \
                                 {} threads",
                                self.num_threads
                            ),
                        });
                    }
                    let count = b.varint("an ops-section segment count")?;
                    if self.version >= OPS_MIN_VERSION {
                        self.deltas[thread as usize] = DeltaState::default();
                    }
                    self.section_thread = thread;
                    self.section_remaining = count;
                    self.section_pos = b.pos;
                    self.section = payload;
                }
                TAG_OP_RUN | TAG_OP_SYNC | TAG_OP_META if self.version >= OPS_MIN_VERSION => {
                    // Op-stream sections are replay payload, not program
                    // structure; the program reader skips them (see
                    // crate::ops for the reader that consumes them).
                }
                TAG_END => {
                    let mut b = Bytes::new(&payload);
                    let declared = b.varint("the total segment count")?;
                    if declared != self.segments_seen {
                        return Err(TraceFileError::Corrupt {
                            detail: format!(
                                "end section declares {declared} segments, but {} were read",
                                self.segments_seen
                            ),
                        });
                    }
                    let mut probe = [0u8; 1];
                    let n = self
                        .source
                        .read(&mut probe)
                        .map_err(|e| stream_err("probing for trailing data", e))?;
                    if n != 0 {
                        return Err(TraceFileError::Corrupt {
                            detail: "trailing data after the end section".to_string(),
                        });
                    }
                    self.done = true;
                    return Ok(None);
                }
                TAG_HEADER => {
                    return Err(TraceFileError::Corrupt {
                        detail: "duplicate header section".to_string(),
                    })
                }
                TAG_OP_RUN | TAG_OP_SYNC | TAG_OP_META => {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "op-stream section tag {tag} requires container version 3, but the \
                             stream declares version {}",
                            self.version
                        ),
                    })
                }
                t => {
                    return Err(TraceFileError::Corrupt {
                        detail: format!("unknown section tag {t}"),
                    })
                }
            }
        }
        let mut b = Bytes::new(&self.section);
        b.pos = self.section_pos;
        let seg = decode_segment(
            &mut b,
            &mut self.deltas[self.section_thread as usize],
            self.version,
        )?;
        self.section_pos = b.pos;
        self.section_remaining -= 1;
        self.segments_seen += 1;
        if self.section_remaining == 0 && b.remaining() != 0 {
            return Err(TraceFileError::Corrupt {
                detail: format!(
                    "{} excess bytes at the end of an ops section",
                    b.remaining()
                ),
            });
        }
        Ok(Some((self.section_thread, seg)))
    }

    /// Drains the stream into a structurally validated [`Program`].
    ///
    /// # Errors
    ///
    /// Propagates every [`TraceReader::next_segment`] failure plus
    /// [`TraceFileError::InvalidProgram`] from validation.
    pub fn read_program(mut self) -> Result<Program, TraceFileError> {
        let mut program = Program::new(self.name.clone(), self.num_threads as usize);
        while let Some((thread, seg)) = self.next_segment()? {
            program.threads[thread as usize].segments.push(seg);
        }
        program.validate().map_err(TraceFileError::InvalidProgram)?;
        Ok(program)
    }
}

pub(crate) fn read_exact_or<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    context: &str,
) -> Result<(), TraceFileError> {
    source.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceFileError::Truncated {
                context: context.to_string(),
            }
        } else {
            stream_err(context, e)
        }
    })
}

pub(crate) fn read_varint<R: Read>(source: &mut R, context: &str) -> Result<u64, TraceFileError> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let mut byte = [0u8; 1];
        read_exact_or(source, &mut byte, context)?;
        let byte = byte[0];
        if shift == 9 && byte > 1 {
            return Err(TraceFileError::VarintOverrun {
                context: context.to_string(),
            });
        }
        v |= ((byte & 0x7F) as u64) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceFileError::VarintOverrun {
        context: context.to_string(),
    })
}

pub(crate) fn read_section<R: Read>(
    source: &mut R,
    context: &str,
) -> Result<(u64, Vec<u8>), TraceFileError> {
    let tag = read_varint(source, context)?;
    let len = read_varint(source, "a section length")?;
    if len > MAX_SECTION_BYTES {
        return Err(TraceFileError::Corrupt {
            detail: format!("section declares {len} bytes (limit {MAX_SECTION_BYTES})"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(source, &mut payload, "a section payload")?;
    Ok((tag, payload))
}

// ---------------------------------------------------------------------------
// Whole-program conveniences

/// Serializes `program` into an in-memory `RPT1` byte buffer.
///
/// # Errors
///
/// Never fails for in-memory sinks in practice; the `Result` mirrors the
/// streaming API.
pub fn export_program_binary(program: &Program) -> Result<Vec<u8>, TraceFileError> {
    let mut w = TraceWriter::with_version(
        Vec::new(),
        &program.name,
        program.threads.len() as u32,
        program.format_version(),
    )?;
    for (t, script) in program.threads.iter().enumerate() {
        w.write_script(t as u32, script)?;
    }
    w.finish()
}

/// Parses an in-memory `RPT1` byte buffer into a validated [`Program`].
///
/// # Errors
///
/// Every binary-format failure ([`TraceFileError::BadMagic`],
/// [`TraceFileError::Truncated`], [`TraceFileError::VarintOverrun`],
/// [`TraceFileError::Corrupt`], [`TraceFileError::UnsupportedVersion`],
/// [`TraceFileError::InvalidProgram`]).
pub fn import_program_binary(bytes: &[u8]) -> Result<Program, TraceFileError> {
    TraceReader::new(bytes)?.read_program()
}

/// Writes `program` to `path` as a binary trace, streaming section by
/// section through a buffered writer.
///
/// # Errors
///
/// Propagates [`TraceFileError::Io`] (with the path) and streaming
/// failures.
pub fn write_program_binary(
    program: &Program,
    path: impl AsRef<Path>,
) -> Result<(), TraceFileError> {
    let path = path.as_ref();
    let io_err = |source| TraceFileError::Io {
        path: path.to_path_buf(),
        source,
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = TraceWriter::with_version(
        std::io::BufWriter::new(file),
        &program.name,
        program.threads.len() as u32,
        program.format_version(),
    )?;
    for (t, script) in program.threads.iter().enumerate() {
        w.write_script(t as u32, script)?;
    }
    w.finish()?;
    Ok(())
}

/// Reads and validates the binary trace at `path`, streaming section by
/// section through a buffered reader.
///
/// # Errors
///
/// Propagates [`TraceFileError::Io`] (with the path) and every
/// [`TraceReader`] failure.
pub fn read_program_binary(path: impl AsRef<Path>) -> Result<Program, TraceFileError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|source| TraceFileError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    TraceReader::new(std::io::BufReader::new(file))?.read_program()
}

/// Reads a trace file in either format, auto-detected by magic bytes:
/// files opening with `RPT1` parse as binary, everything else as JSON.
///
/// # Errors
///
/// Propagates [`TraceFileError::Io`] (with the path) and the selected
/// format's import failures.
pub fn read_program_any(path: impl AsRef<Path>) -> Result<Program, TraceFileError> {
    let path = path.as_ref();
    let io_err = |source| TraceFileError::Io {
        path: path.to_path_buf(),
        source,
    };
    let mut file = std::io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match file.read(&mut magic[got..]).map_err(io_err)? {
            0 => break,
            n => got += n,
        }
    }
    if got == 4 && magic == BINARY_TRACE_MAGIC {
        let stream = std::io::Cursor::new(magic).chain(file);
        return TraceReader::new(stream)?.read_program();
    }
    let mut text = Vec::from(&magic[..got]);
    file.read_to_end(&mut text).map_err(io_err)?;
    let text = String::from_utf8(text).map_err(|_| TraceFileError::NotATraceFile {
        detail: "file is neither an RPT1 binary trace nor UTF-8 JSON".to_string(),
    })?;
    file::import_program(&text)
}

/// Reads a trace in either format from an arbitrary byte stream (e.g. an
/// HTTP request body), auto-detected by magic bytes: streams opening with
/// `RPT1` parse section by section through [`TraceReader`] — the binary
/// path never buffers the whole body — and everything else is read to the
/// end and parsed as JSON. Callers are responsible for bounding the
/// stream (e.g. `Read::take`); a truncated stream surfaces as a typed
/// [`TraceFileError`], never a panic.
///
/// # Errors
///
/// [`TraceFileError::Io`] (with the synthetic path `<stream>`) on read
/// failures, and the selected format's import failures.
pub fn read_program_stream(source: impl Read) -> Result<Program, TraceFileError> {
    let io_err = |source| TraceFileError::Io {
        path: std::path::PathBuf::from("<stream>"),
        source,
    };
    let mut source = source;
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match source.read(&mut magic[got..]).map_err(io_err)? {
            0 => break,
            n => got += n,
        }
    }
    if got == 4 && magic == BINARY_TRACE_MAGIC {
        let stream = std::io::Cursor::new(magic).chain(source);
        return TraceReader::new(stream)?.read_program();
    }
    let mut text = Vec::from(&magic[..got]);
    source.read_to_end(&mut text).map_err(io_err)?;
    let text = String::from_utf8(text).map_err(|_| TraceFileError::NotATraceFile {
        detail: "stream is neither an RPT1 binary trace nor UTF-8 JSON".to_string(),
    })?;
    file::import_program(&text)
}

/// Whether `path`'s extension conventionally denotes the binary container
/// (`.rpt` / `.bin`). Writers use this to pick an *output* format; readers
/// never trust extensions — they sniff the magic bytes instead (see
/// [`read_program_any`]).
pub fn has_binary_extension(path: impl AsRef<Path>) -> bool {
    matches!(
        path.as_ref().extension().and_then(|e| e.to_str()),
        Some("rpt") | Some("bin")
    )
}

/// Parses an in-memory trace in either format, auto-detected by magic
/// bytes (see [`read_program_any`]).
///
/// # Errors
///
/// Propagates the selected format's import failures.
pub fn import_program_bytes(bytes: &[u8]) -> Result<Program, TraceFileError> {
    if bytes.len() >= 4 && bytes[..4] == BINARY_TRACE_MAGIC {
        return import_program_binary(bytes);
    }
    let text = std::str::from_utf8(bytes).map_err(|_| TraceFileError::NotATraceFile {
        detail: "file is neither an RPT1 binary trace nor UTF-8 JSON".to_string(),
    })?;
    file::import_program(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::file::{export_program, program_fingerprint};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("bin-sample", 3);
        let r = b.alloc_region(4096);
        let bar = b.alloc_barrier();
        let m = b.alloc_mutex();
        let q = b.alloc_queue();
        b.spawn_workers();
        b.thread(0u32).produce(q, 2);
        for t in 1..3u32 {
            b.thread(t)
                .consume(q)
                .block(
                    BlockSpec::new(700, 3 + t as u64)
                        .loads(0.3)
                        .stores(0.05)
                        .branches(0.12)
                        .addr(AddressPattern::stream(r.chunk(t as u64 - 1, 2)), 1.0)
                        .addr(AddressPattern::hot(r, 64, 0.8), 0.5)
                        .store_addr(AddressPattern::random(r), 1.0)
                        .branch_pattern(BranchPattern::periodic(0b1011, 4))
                        .sites(3),
                )
                .lock(m)
                .block(BlockSpec::new(48, 1))
                .unlock(m)
                .barrier(bar);
        }
        b.join_workers();
        b.build()
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut b = Bytes::new(&buf);
            assert_eq!(b.varint("test").unwrap(), v);
            assert_eq!(b.remaining(), 0);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn delta_round_trips_across_full_domain() {
        let values = [0u64, 10, 5, u64::MAX, 1, u64::MAX - 3];
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for &v in &values {
            push_delta(&mut buf, &mut prev, v);
        }
        let mut b = Bytes::new(&buf);
        let mut prev = 0u64;
        for &v in &values {
            assert_eq!(b.delta(&mut prev, "test").unwrap(), v);
        }
    }

    #[test]
    fn stream_reader_detects_both_formats() {
        let p = sample();
        let bin = export_program_binary(&p).unwrap();
        assert_eq!(read_program_stream(&bin[..]).unwrap(), p);
        let json = export_program(&p).unwrap();
        assert_eq!(read_program_stream(json.as_bytes()).unwrap(), p);
    }

    #[test]
    fn stream_reader_rejects_truncated_and_garbage_input() {
        let p = sample();
        let bin = export_program_binary(&p).unwrap();
        for cut in [0, 2, 5, bin.len() / 2, bin.len() - 1] {
            assert!(
                read_program_stream(&bin[..cut]).is_err(),
                "truncation at {cut} must be a typed error"
            );
        }
        assert!(read_program_stream(&b"\xff\xfe\x00\x01garbage"[..]).is_err());
        assert!(read_program_stream(&b"not json at all"[..]).is_err());
    }

    #[test]
    fn binary_round_trips_program() {
        let p = sample();
        let bytes = export_program_binary(&p).unwrap();
        assert_eq!(&bytes[..4], b"RPT1");
        let back = import_program_binary(&bytes).unwrap();
        assert_eq!(p, back);
        // Canonical: re-export is byte-identical.
        assert_eq!(bytes, export_program_binary(&back).unwrap());
    }

    #[test]
    fn binary_is_denser_than_json() {
        let p = sample();
        let json = export_program(&p).unwrap();
        let bin = export_program_binary(&p).unwrap();
        assert!(
            bin.len() * 3 < json.len(),
            "binary {} bytes vs json {} bytes",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn fingerprint_is_container_independent() {
        let p = sample();
        let via_bin = import_program_binary(&export_program_binary(&p).unwrap()).unwrap();
        assert_eq!(program_fingerprint(&p), program_fingerprint(&via_bin));
    }

    #[test]
    fn streaming_reader_yields_segments_in_thread_order() {
        let p = sample();
        let bytes = export_program_binary(&p).unwrap();
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.name(), "bin-sample");
        assert_eq!(reader.num_threads(), 3);
        let mut per_thread: Vec<Vec<Segment>> = vec![Vec::new(); 3];
        while let Some((t, seg)) = reader.next_segment().unwrap() {
            per_thread[t as usize].push(seg);
        }
        for (t, segs) in per_thread.iter().enumerate() {
            assert_eq!(segs, &p.threads[t].segments, "thread {t}");
        }
    }

    #[test]
    fn writer_flushes_bounded_sections() {
        // A single thread with far more segments than one section holds.
        let mut p = Program::new("many", 1);
        for k in 0..(SECTION_SEGMENTS * 3 + 17) {
            p.threads[0]
                .segments
                .push(Segment::Block(BlockSpec::new(1, k)));
        }
        let bytes = export_program_binary(&p).unwrap();
        let back = import_program_binary(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn file_round_trip_and_auto_detect() {
        let dir = std::env::temp_dir().join("rppm-binary-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = sample();

        let bin_path = dir.join("sample.rpt");
        write_program_binary(&p, &bin_path).unwrap();
        assert_eq!(read_program_binary(&bin_path).unwrap(), p);
        assert_eq!(read_program_any(&bin_path).unwrap(), p);

        let json_path = dir.join("sample.json");
        crate::file::write_program(&p, &json_path).unwrap();
        assert_eq!(read_program_any(&json_path).unwrap(), p);
    }

    #[test]
    fn import_bytes_detects_both_formats() {
        let p = sample();
        let bin = export_program_binary(&p).unwrap();
        let json = export_program(&p).unwrap();
        assert_eq!(import_program_bytes(&bin).unwrap(), p);
        assert_eq!(import_program_bytes(json.as_bytes()).unwrap(), p);
    }

    fn sample_v2() -> Program {
        let mut b = ProgramBuilder::new("bin-v2", 2);
        let rw = b.alloc_rwlock();
        let s = b.alloc_sem();
        b.spawn_workers();
        b.thread(0u32)
            .rw_lock(rw, true)
            .block(BlockSpec::new(64, 9))
            .rw_unlock(rw)
            .sem_post(s, 3);
        b.thread(1u32).sem_wait(s).rw_lock(rw, false).rw_unlock(rw);
        b.join_workers();
        b.build()
    }

    #[test]
    fn v2_programs_round_trip_at_version_2() {
        let p = sample_v2();
        let bytes = export_program_binary(&p).unwrap();
        // Version varint immediately follows the 4-byte magic.
        assert_eq!(bytes[4], 2);
        let back = import_program_binary(&bytes).unwrap();
        assert_eq!(p, back);
        // Canonical: re-export is byte-identical.
        assert_eq!(bytes, export_program_binary(&back).unwrap());
    }

    #[test]
    fn v1_programs_still_written_as_version_1() {
        let bytes = export_program_binary(&sample()).unwrap();
        assert_eq!(bytes[4], 1);
    }

    #[test]
    fn v1_writer_rejects_v2_segments() {
        let mut w = TraceWriter::new(Vec::new(), "x", 1).unwrap();
        let seg = Segment::Sync(SyncOp::SemWait { id: 0u32.into() });
        let err = w.write_segment(0, &seg).unwrap_err();
        assert!(
            matches!(err, TraceFileError::Unserializable { .. }),
            "{err}"
        );
    }

    #[test]
    fn v2_tags_in_v1_stream_are_corrupt() {
        let mut bytes = export_program_binary(&sample_v2()).unwrap();
        assert_eq!(bytes[4], 2);
        bytes[4] = 1; // lie about the container version
        let err = import_program_binary(&bytes).unwrap_err();
        assert!(matches!(err, TraceFileError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("version 2"), "{err}");
    }

    #[test]
    fn writer_rejects_unknown_versions() {
        for v in [0u32, BINARY_TRACE_VERSION + 1] {
            let err = TraceWriter::with_version(Vec::new(), "x", 1, v).unwrap_err();
            assert!(
                matches!(err, TraceFileError::Unserializable { .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn reader_rejects_future_versions() {
        let mut bytes = export_program_binary(&sample()).unwrap();
        bytes[4] = (BINARY_TRACE_VERSION + 1) as u8;
        let err = import_program_binary(&bytes).unwrap_err();
        assert!(
            matches!(err, TraceFileError::UnsupportedVersion { .. }),
            "{err}"
        );
    }

    #[test]
    fn v3_program_stream_round_trips_with_section_delta_reset() {
        // A version-3 stream resets the delta chain at every section
        // boundary; writer and reader must stay in sync across many
        // sections of one thread.
        let mut p = Program::new("v3-many", 2);
        for k in 0..(SECTION_SEGMENTS + 40) {
            let mut b = BlockSpec::new(1, k);
            b.code_base = k * 977;
            p.threads[0].segments.push(Segment::Block(b));
        }
        p.threads[0].segments.push(Segment::Sync(SyncOp::Create {
            child: crate::sync::ThreadId(1),
        }));
        p.threads[1]
            .segments
            .push(Segment::Block(BlockSpec::new(1, 7)));
        let mut w = TraceWriter::with_version(Vec::new(), &p.name, 2, 3).unwrap();
        for (t, script) in p.threads.iter().enumerate() {
            w.write_script(t as u32, script).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], 3);
        let back = import_program_binary(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn op_stream_tags_in_v2_stream_are_corrupt() {
        // Hand-build a v2 stream containing an op-run section: readers must
        // reject the tag, not skip it silently.
        let mut w = TraceWriter::with_version(Vec::new(), "x", 1, 2).unwrap();
        w.write_raw_section(TAG_OP_RUN, &[0, 0]).unwrap();
        let bytes = w.finish().unwrap();
        let err = import_program_binary(&bytes).unwrap_err();
        assert!(matches!(err, TraceFileError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("version 3"), "{err}");
    }

    #[test]
    fn writer_rejects_out_of_range_thread() {
        let mut w = TraceWriter::new(Vec::new(), "x", 2).unwrap();
        let seg = Segment::Block(BlockSpec::new(1, 1));
        let err = w.write_segment(2, &seg).unwrap_err();
        assert!(matches!(err, TraceFileError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn empty_program_round_trips() {
        let p = Program::new("empty", 2);
        let bytes = export_program_binary(&p).unwrap();
        assert_eq!(import_program_binary(&bytes).unwrap(), p);
    }
}

//! Whole-program representation.

use crate::block::BlockSpec;
use crate::sync::{SyncOp, ThreadId};
use serde::{Deserialize, Serialize};

/// One element of a thread's script: either a parametric instruction block or
/// a synchronization event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// A block of micro-ops (expanded lazily).
    Block(BlockSpec),
    /// A synchronization event.
    Sync(SyncOp),
}

/// The full (static) script of one thread.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadScript {
    /// Ordered segments executed by the thread.
    pub segments: Vec<Segment>,
}

impl ThreadScript {
    /// Total micro-ops across all blocks.
    pub fn total_ops(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Block(b) => b.ops as u64,
                Segment::Sync(_) => 0,
            })
            .sum()
    }

    /// Number of synchronization events.
    pub fn sync_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Sync(_)))
            .count()
    }

    /// Iterates over the synchronization events in order.
    pub fn sync_ops(&self) -> impl Iterator<Item = &SyncOp> {
        self.segments.iter().filter_map(|s| match s {
            Segment::Sync(op) => Some(op),
            Segment::Block(_) => None,
        })
    }
}

/// A multi-threaded workload: one [`ThreadScript`] per thread.
///
/// Thread 0 is the main thread (it exists at program start); every other
/// thread starts executing only after a [`SyncOp::Create`] event for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Workload name (benchmark identifier).
    pub name: String,
    /// Per-thread scripts, indexed by [`ThreadId`].
    pub threads: Vec<ThreadScript>,
}

impl Program {
    /// Creates an empty program with `n_threads` empty scripts.
    pub fn new(name: impl Into<String>, n_threads: usize) -> Self {
        Program {
            name: name.into(),
            threads: vec![ThreadScript::default(); n_threads],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Approximate heap + inline size in bytes — what a memory-bounded
    /// profile cache accounts a resident program at.
    pub fn approx_bytes(&self) -> u64 {
        let segment_bytes = |s: &Segment| {
            std::mem::size_of::<Segment>()
                + match s {
                    Segment::Block(b) => {
                        (b.addr.capacity() + b.store_addr.capacity())
                            * std::mem::size_of::<(crate::pattern::AddressPattern, f64)>()
                    }
                    Segment::Sync(_) => 0,
                }
        };
        self.threads
            .iter()
            .map(|t| {
                std::mem::size_of::<ThreadScript>()
                    + t.segments.iter().map(segment_bytes).sum::<usize>()
            })
            .sum::<usize>() as u64
            + (self.name.capacity() + std::mem::size_of::<Self>()) as u64
    }

    /// The script of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn script(&self, thread: ThreadId) -> &ThreadScript {
        &self.threads[thread.index()]
    }

    /// Total dynamic micro-ops across all threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(ThreadScript::total_ops).sum()
    }

    /// Smallest trace-format schema version able to carry this program:
    /// the maximum of [`SyncOp::min_format_version`] over every sync event
    /// (1 for programs without reader-writer locks or semaphores).
    pub fn format_version(&self) -> u32 {
        self.threads
            .iter()
            .flat_map(ThreadScript::sync_ops)
            .map(SyncOp::min_format_version)
            .fold(1, u32::max)
    }

    /// Validates structural invariants:
    ///
    /// * every non-main thread is created exactly once, by an earlier thread;
    /// * lock/unlock events are balanced and well-nested per thread;
    /// * barrier, queue and mutex identifiers are used consistently.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violation found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let n = self.threads.len();
        let mut created = vec![0usize; n];
        for (tid, script) in self.threads.iter().enumerate() {
            let mut held: Vec<u32> = Vec::new();
            let mut held_rw: Vec<u32> = Vec::new();
            for seg in &script.segments {
                if let Segment::Sync(op) = seg {
                    match op {
                        SyncOp::Create { child } => {
                            if child.index() >= n {
                                return Err(ProgramError::UnknownThread {
                                    by: ThreadId(tid as u32),
                                    target: *child,
                                });
                            }
                            if child.index() == 0 {
                                return Err(ProgramError::MainThreadCreated);
                            }
                            created[child.index()] += 1;
                        }
                        SyncOp::Join { child } if child.index() >= n => {
                            return Err(ProgramError::UnknownThread {
                                by: ThreadId(tid as u32),
                                target: *child,
                            });
                        }
                        SyncOp::Lock { id } => held.push(id.0),
                        // Not a match guard: the pop must happen on every
                        // Unlock, and a guard would hide that state change.
                        #[allow(clippy::collapsible_match)]
                        SyncOp::Unlock { id } => {
                            if held.pop() != Some(id.0) {
                                return Err(ProgramError::UnbalancedLock {
                                    thread: ThreadId(tid as u32),
                                });
                            }
                        }
                        SyncOp::RwLock { id, .. } => held_rw.push(id.0),
                        #[allow(clippy::collapsible_match)]
                        SyncOp::RwUnlock { id } => {
                            if held_rw.pop() != Some(id.0) {
                                return Err(ProgramError::UnbalancedRwLock {
                                    thread: ThreadId(tid as u32),
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }
            if !held.is_empty() {
                return Err(ProgramError::UnbalancedLock {
                    thread: ThreadId(tid as u32),
                });
            }
            if !held_rw.is_empty() {
                return Err(ProgramError::UnbalancedRwLock {
                    thread: ThreadId(tid as u32),
                });
            }
        }
        for (t, &c) in created.iter().enumerate().skip(1) {
            if self.threads[t].segments.is_empty() {
                continue; // unused slot is fine
            }
            if c == 0 {
                return Err(ProgramError::NeverCreated {
                    thread: ThreadId(t as u32),
                });
            }
            if c > 1 {
                return Err(ProgramError::CreatedTwice {
                    thread: ThreadId(t as u32),
                });
            }
        }
        Ok(())
    }
}

/// Structural validation error for a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A create/join referenced a thread index that does not exist.
    UnknownThread {
        /// Thread issuing the event.
        by: ThreadId,
        /// Missing target thread.
        target: ThreadId,
    },
    /// Something tried to create the main thread.
    MainThreadCreated,
    /// A thread has work but no creating event.
    NeverCreated {
        /// The orphan thread.
        thread: ThreadId,
    },
    /// A thread is created more than once.
    CreatedTwice {
        /// The doubly-created thread.
        thread: ThreadId,
    },
    /// Mismatched or badly nested lock/unlock events.
    UnbalancedLock {
        /// Offending thread.
        thread: ThreadId,
    },
    /// Mismatched or badly nested rwlock/rwunlock events.
    UnbalancedRwLock {
        /// Offending thread.
        thread: ThreadId,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::UnknownThread { by, target } => {
                write!(f, "thread {by} references unknown thread {target}")
            }
            ProgramError::MainThreadCreated => write!(f, "main thread cannot be created"),
            ProgramError::NeverCreated { thread } => {
                write!(f, "thread {thread} has work but is never created")
            }
            ProgramError::CreatedTwice { thread } => {
                write!(f, "thread {thread} is created more than once")
            }
            ProgramError::UnbalancedLock { thread } => {
                write!(
                    f,
                    "unbalanced or badly nested lock/unlock in thread {thread}"
                )
            }
            ProgramError::UnbalancedRwLock { thread } => {
                write!(
                    f,
                    "unbalanced or badly nested rwlock/rwunlock in thread {thread}"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{BarrierId, MutexId};

    fn block(ops: u32) -> Segment {
        Segment::Block(BlockSpec::new(ops, 1))
    }

    #[test]
    fn total_ops_sums_blocks() {
        let mut p = Program::new("t", 2);
        p.threads[0].segments = vec![
            block(100),
            Segment::Sync(SyncOp::Create { child: ThreadId(1) }),
            block(50),
        ];
        p.threads[1].segments = vec![block(25)];
        assert_eq!(p.total_ops(), 175);
        assert_eq!(p.threads[0].total_ops(), 150);
        assert_eq!(p.threads[0].sync_count(), 1);
    }

    #[test]
    fn validate_ok_for_simple_program() {
        let mut p = Program::new("t", 2);
        p.threads[0].segments = vec![
            block(10),
            Segment::Sync(SyncOp::Create { child: ThreadId(1) }),
            Segment::Sync(SyncOp::Join { child: ThreadId(1) }),
        ];
        p.threads[1].segments = vec![block(10)];
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_catches_orphan_thread() {
        let mut p = Program::new("t", 2);
        p.threads[0].segments = vec![block(10)];
        p.threads[1].segments = vec![block(10)];
        assert_eq!(
            p.validate(),
            Err(ProgramError::NeverCreated {
                thread: ThreadId(1)
            })
        );
    }

    #[test]
    fn validate_catches_double_create() {
        let mut p = Program::new("t", 2);
        p.threads[0].segments = vec![
            Segment::Sync(SyncOp::Create { child: ThreadId(1) }),
            Segment::Sync(SyncOp::Create { child: ThreadId(1) }),
        ];
        p.threads[1].segments = vec![block(10)];
        assert_eq!(
            p.validate(),
            Err(ProgramError::CreatedTwice {
                thread: ThreadId(1)
            })
        );
    }

    #[test]
    fn validate_catches_unbalanced_locks() {
        let mut p = Program::new("t", 1);
        p.threads[0].segments = vec![Segment::Sync(SyncOp::Lock { id: MutexId(0) })];
        assert_eq!(
            p.validate(),
            Err(ProgramError::UnbalancedLock {
                thread: ThreadId(0)
            })
        );
    }

    #[test]
    fn validate_catches_bad_nesting() {
        let mut p = Program::new("t", 1);
        p.threads[0].segments = vec![
            Segment::Sync(SyncOp::Lock { id: MutexId(0) }),
            Segment::Sync(SyncOp::Lock { id: MutexId(1) }),
            Segment::Sync(SyncOp::Unlock { id: MutexId(0) }),
            Segment::Sync(SyncOp::Unlock { id: MutexId(1) }),
        ];
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UnbalancedLock { .. })
        ));
    }

    #[test]
    fn validate_catches_unknown_thread() {
        let mut p = Program::new("t", 1);
        p.threads[0].segments = vec![Segment::Sync(SyncOp::Create { child: ThreadId(5) })];
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UnknownThread { .. })
        ));
    }

    #[test]
    fn validate_catches_unbalanced_rwlocks() {
        use crate::sync::RwLockId;
        let mut p = Program::new("t", 1);
        p.threads[0].segments = vec![Segment::Sync(SyncOp::RwLock {
            id: RwLockId(0),
            write: true,
        })];
        assert_eq!(
            p.validate(),
            Err(ProgramError::UnbalancedRwLock {
                thread: ThreadId(0)
            })
        );
    }

    #[test]
    fn format_version_tracks_v2_ops() {
        use crate::sync::SemId;
        let mut p = Program::new("t", 1);
        p.threads[0].segments = vec![block(10), Segment::Sync(SyncOp::Lock { id: MutexId(0) })];
        assert_eq!(p.format_version(), 1);
        p.threads[0]
            .segments
            .push(Segment::Sync(SyncOp::Unlock { id: MutexId(0) }));
        p.threads[0].segments.push(Segment::Sync(SyncOp::SemPost {
            id: SemId(0),
            count: 1,
        }));
        assert_eq!(p.format_version(), 2);
    }

    #[test]
    fn sync_ops_iterates_in_order() {
        let mut p = Program::new("t", 1);
        p.threads[0].segments = vec![
            Segment::Sync(SyncOp::Barrier {
                id: BarrierId(0),
                via_cond: false,
            }),
            block(5),
            Segment::Sync(SyncOp::Barrier {
                id: BarrierId(1),
                via_cond: false,
            }),
        ];
        let ids: Vec<u32> = p.threads[0]
            .sync_ops()
            .map(|op| match op {
                SyncOp::Barrier { id, .. } => id.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn error_display_nonempty() {
        let errors: Vec<ProgramError> = vec![
            ProgramError::UnknownThread {
                by: ThreadId(0),
                target: ThreadId(9),
            },
            ProgramError::MainThreadCreated,
            ProgramError::NeverCreated {
                thread: ThreadId(1),
            },
            ProgramError::CreatedTwice {
                thread: ThreadId(1),
            },
            ProgramError::UnbalancedLock {
                thread: ThreadId(0),
            },
            ProgramError::UnbalancedRwLock {
                thread: ThreadId(0),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}

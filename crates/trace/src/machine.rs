//! The `.machine` text format: machine descriptions as config files.
//!
//! A machine file is the on-disk form of a [`MachineConfig`], so design
//! points come from files instead of the five hardcoded [`DesignPoint`]
//! presets (those presets are committed as files under `examples/machines/`
//! and asserted equal to the constants). The format is a versioned,
//! comment-friendly key=value layout:
//!
//! ```text
//! rppm-machine v1
//!
//! [machine]
//! name = base
//! cores = 4
//! freq_ghz = 2.5
//! dispatch_width = 4
//! rob_size = 128
//! issue_queue = 64
//! frontend_depth = 6
//! mem_latency_ns = 80
//! mshrs = 10
//! coherence_latency = 40
//! sync_overhead_cycles = 40
//! spawn_latency_cycles = 1500
//!
//! [fu]
//! int_alu = 4
//! ...
//! ```
//!
//! * The first significant line is the header `rppm-machine v<N>`. Readers
//!   accept versions 1 through [`MACHINE_VERSION`]; newer files fail with
//!   [`MachineFileError::UnsupportedVersion`] rather than being misread.
//! * Blank lines and lines starting with `#` are ignored.
//! * Sections are `[machine]`, `[fu]`, `[bpred]`, `[l1i]`, `[l1d]`, `[l2]`
//!   and `[l3]`; every section and every key is required, may appear in any
//!   order, and may appear only once. Unknown sections and keys are typed
//!   errors, never silently skipped — a typo cannot yield a config that
//!   differs from the one the file describes.
//! * Floats are written with Rust's shortest round-trippable `Display`
//!   form, so [`format_machine`] → [`parse_machine`] is the identity.
//!
//! Parsed configurations pass through [`MachineConfig::to_builder`]'s
//! validation (nonzero widths, power-of-two cache geometry, ...), so a
//! file that parses always yields a configuration the engines can run.
//!
//! # Versioning policy
//!
//! Within a version the format only changes additively; any change to the
//! meaning of existing keys bumps [`MACHINE_VERSION`].
//!
//! # Example
//!
//! ```
//! use rppm_trace::{machine, DesignPoint};
//!
//! let text = machine::format_machine(&DesignPoint::Base.config());
//! let back = machine::parse_machine(&text)?;
//! assert_eq!(back, DesignPoint::Base.config());
//! # Ok::<(), rppm_trace::machine::MachineFileError>(())
//! ```

use crate::config::{BranchPredictorConfig, CacheGeometry, FuConfig, MachineConfig};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

#[cfg(doc)]
use crate::config::DesignPoint;

/// The header tag every machine file must carry.
pub const MACHINE_FORMAT: &str = "rppm-machine";

/// Newest format version this build understands. [`parse_machine`] accepts
/// versions `1..=MACHINE_VERSION`; [`format_machine`] writes exactly this
/// version.
pub const MACHINE_VERSION: u32 = 1;

/// The sections of a machine file, each with its required keys.
const SECTIONS: &[(&str, &[&str])] = &[
    (
        "machine",
        &[
            "name",
            "cores",
            "freq_ghz",
            "dispatch_width",
            "rob_size",
            "issue_queue",
            "frontend_depth",
            "mem_latency_ns",
            "mshrs",
            "coherence_latency",
            "sync_overhead_cycles",
            "spawn_latency_cycles",
        ],
    ),
    ("fu", &["int_alu", "int_mul", "fp", "mem", "branch"]),
    ("bpred", &["size_bytes", "history_bits"]),
    ("l1i", &["size_bytes", "assoc", "line_bytes", "latency"]),
    ("l1d", &["size_bytes", "assoc", "line_bytes", "latency"]),
    ("l2", &["size_bytes", "assoc", "line_bytes", "latency"]),
    ("l3", &["size_bytes", "assoc", "line_bytes", "latency"]),
];

/// Everything that can go wrong reading or writing a machine file.
///
/// Every variant renders an actionable one-line message with the offending
/// line number where one exists.
#[derive(Debug)]
pub enum MachineFileError {
    /// Reading or writing the file failed.
    Io {
        /// File being accessed.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The file does not start with the `rppm-machine v<N>` header.
    NotAMachineFile {
        /// What was found instead.
        detail: String,
    },
    /// The file declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version declared by the file.
        found: u64,
        /// Newest version this build supports.
        supported: u32,
    },
    /// A line is neither a section header, a `key = value` pair, a comment
    /// nor blank — or a pair appears before any section.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What is wrong.
        detail: String,
    },
    /// A section this format does not define.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The section name found.
        section: String,
    },
    /// A key its section does not define (or a duplicate of one it does).
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// Section the key appeared in.
        section: String,
        /// The key found.
        key: String,
    },
    /// A value that does not parse as its key's type.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// Section of the offending key.
        section: String,
        /// The offending key.
        key: String,
        /// Parser diagnostic.
        detail: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section.
        section: String,
    },
    /// A required key is absent from a present section.
    MissingKey {
        /// Section the key belongs to.
        section: String,
        /// The absent key.
        key: String,
    },
    /// The file parsed but describes a configuration the engines cannot
    /// run (zero width, non-power-of-two cache geometry, ...).
    Invalid {
        /// Validation diagnostic.
        detail: String,
    },
}

impl std::fmt::Display for MachineFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineFileError::Io { path, source } => {
                write!(f, "cannot access `{}`: {source}", path.display())
            }
            MachineFileError::NotAMachineFile { detail } => write!(
                f,
                "not a machine file: expected a `{MACHINE_FORMAT} v<N>` header, {detail}"
            ),
            MachineFileError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported machine-file version {found}: this build reads only versions 1 \
                 through {supported}; re-export the machine with a current tool or upgrade"
            ),
            MachineFileError::Syntax { line, detail } => {
                write!(f, "line {line}: {detail}")
            }
            MachineFileError::UnknownSection { line, section } => write!(
                f,
                "line {line}: unknown section [{section}] (expected one of {})",
                section_names()
            ),
            MachineFileError::UnknownKey { line, section, key } => write!(
                f,
                "line {line}: unknown or duplicate key `{key}` in section [{section}]"
            ),
            MachineFileError::BadValue {
                line,
                section,
                key,
                detail,
            } => write!(
                f,
                "line {line}: bad value for `{key}` in section [{section}]: {detail}"
            ),
            MachineFileError::MissingSection { section } => {
                write!(f, "missing section [{section}]")
            }
            MachineFileError::MissingKey { section, key } => {
                write!(f, "missing key `{key}` in section [{section}]")
            }
            MachineFileError::Invalid { detail } => {
                write!(f, "invalid machine configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for MachineFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineFileError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn section_names() -> String {
    SECTIONS
        .iter()
        .map(|(s, _)| format!("[{s}]"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a configuration in the current format version.
/// [`parse_machine`] of the result returns a configuration equal to
/// `config`.
pub fn format_machine(config: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MACHINE_FORMAT} v{MACHINE_VERSION}");
    let _ = writeln!(out);
    let _ = writeln!(out, "[machine]");
    let _ = writeln!(out, "name = {}", config.name);
    let _ = writeln!(out, "cores = {}", config.cores);
    let _ = writeln!(out, "freq_ghz = {}", config.freq_ghz);
    let _ = writeln!(out, "dispatch_width = {}", config.dispatch_width);
    let _ = writeln!(out, "rob_size = {}", config.rob_size);
    let _ = writeln!(out, "issue_queue = {}", config.issue_queue);
    let _ = writeln!(out, "frontend_depth = {}", config.frontend_depth);
    let _ = writeln!(out, "mem_latency_ns = {}", config.mem_latency_ns);
    let _ = writeln!(out, "mshrs = {}", config.mshrs);
    let _ = writeln!(out, "coherence_latency = {}", config.coherence_latency);
    let _ = writeln!(
        out,
        "sync_overhead_cycles = {}",
        config.sync_overhead_cycles
    );
    let _ = writeln!(
        out,
        "spawn_latency_cycles = {}",
        config.spawn_latency_cycles
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "[fu]");
    let _ = writeln!(out, "int_alu = {}", config.fu.int_alu);
    let _ = writeln!(out, "int_mul = {}", config.fu.int_mul);
    let _ = writeln!(out, "fp = {}", config.fu.fp);
    let _ = writeln!(out, "mem = {}", config.fu.mem);
    let _ = writeln!(out, "branch = {}", config.fu.branch);
    let _ = writeln!(out);
    let _ = writeln!(out, "[bpred]");
    let _ = writeln!(out, "size_bytes = {}", config.bpred.size_bytes);
    let _ = writeln!(out, "history_bits = {}", config.bpred.history_bits);
    for (name, g) in [
        ("l1i", config.l1i),
        ("l1d", config.l1d),
        ("l2", config.l2),
        ("l3", config.l3),
    ] {
        let _ = writeln!(out);
        let _ = writeln!(out, "[{name}]");
        let _ = writeln!(out, "size_bytes = {}", g.size_bytes);
        let _ = writeln!(out, "assoc = {}", g.assoc);
        let _ = writeln!(out, "line_bytes = {}", g.line_bytes);
        let _ = writeln!(out, "latency = {}", g.latency);
    }
    out
}

/// The parsed `(line, value)` of every key, keyed by `(section, key)`.
struct Pairs {
    seen_sections: Vec<String>,
    values: HashMap<(String, String), (usize, String)>,
}

impl Pairs {
    fn take(&mut self, section: &str, key: &str) -> Result<(usize, String), MachineFileError> {
        self.values
            .remove(&(section.to_string(), key.to_string()))
            .ok_or_else(|| {
                if self.seen_sections.iter().any(|s| s == section) {
                    MachineFileError::MissingKey {
                        section: section.to_string(),
                        key: key.to_string(),
                    }
                } else {
                    MachineFileError::MissingSection {
                        section: section.to_string(),
                    }
                }
            })
    }

    fn string(&mut self, section: &str, key: &str) -> Result<String, MachineFileError> {
        Ok(self.take(section, key)?.1)
    }

    fn parse<T: std::str::FromStr>(
        &mut self,
        section: &str,
        key: &str,
    ) -> Result<T, MachineFileError>
    where
        T::Err: std::fmt::Display,
    {
        let (line, raw) = self.take(section, key)?;
        raw.parse().map_err(|e: T::Err| MachineFileError::BadValue {
            line,
            section: section.to_string(),
            key: key.to_string(),
            detail: format!("`{raw}`: {e}"),
        })
    }

    fn f64(&mut self, section: &str, key: &str) -> Result<f64, MachineFileError> {
        let (line, raw) = self.take(section, key)?;
        match raw.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            Ok(v) => Err(MachineFileError::BadValue {
                line,
                section: section.to_string(),
                key: key.to_string(),
                detail: format!("`{raw}`: {v} is not finite"),
            }),
            Err(e) => Err(MachineFileError::BadValue {
                line,
                section: section.to_string(),
                key: key.to_string(),
                detail: format!("`{raw}`: {e}"),
            }),
        }
    }

    fn cache(&mut self, section: &str) -> Result<CacheGeometry, MachineFileError> {
        Ok(CacheGeometry {
            size_bytes: self.parse(section, "size_bytes")?,
            assoc: self.parse(section, "assoc")?,
            line_bytes: self.parse(section, "line_bytes")?,
            latency: self.parse(section, "latency")?,
        })
    }
}

/// Parses machine-file text into a validated [`MachineConfig`].
///
/// # Errors
///
/// Every [`MachineFileError`] variant except [`MachineFileError::Io`]: a
/// missing or future-versioned header, malformed lines, unknown sections or
/// keys, unparseable values, absent sections or keys, and configurations
/// that fail builder validation.
pub fn parse_machine(text: &str) -> Result<MachineConfig, MachineFileError> {
    let mut pairs = scan(text)?;

    let name = pairs.string("machine", "name")?;
    let mut b = MachineConfig::builder(&name)
        .cores(pairs.parse("machine", "cores")?)
        .freq_ghz(pairs.f64("machine", "freq_ghz")?)
        .dispatch_width(pairs.parse("machine", "dispatch_width")?)
        .rob_size(pairs.parse("machine", "rob_size")?)
        .issue_queue(pairs.parse("machine", "issue_queue")?)
        .frontend_depth(pairs.parse("machine", "frontend_depth")?)
        .mem_latency_ns(pairs.f64("machine", "mem_latency_ns")?)
        .mshrs(pairs.parse("machine", "mshrs")?)
        .coherence_latency(pairs.parse("machine", "coherence_latency")?)
        .sync_overhead_cycles(pairs.parse("machine", "sync_overhead_cycles")?)
        .spawn_latency_cycles(pairs.parse("machine", "spawn_latency_cycles")?);
    b = b.fu(FuConfig {
        int_alu: pairs.parse("fu", "int_alu")?,
        int_mul: pairs.parse("fu", "int_mul")?,
        fp: pairs.parse("fu", "fp")?,
        mem: pairs.parse("fu", "mem")?,
        branch: pairs.parse("fu", "branch")?,
    });
    b = b.bpred(BranchPredictorConfig {
        size_bytes: pairs.parse("bpred", "size_bytes")?,
        history_bits: pairs.parse("bpred", "history_bits")?,
    });
    b = b.l1i(pairs.cache("l1i")?);
    b = b.l1d(pairs.cache("l1d")?);
    b = b.l2(pairs.cache("l2")?);
    b = b.l3(pairs.cache("l3")?);
    b.build()
        .map_err(|detail| MachineFileError::Invalid { detail })
}

/// Lexes the header, sections and `key = value` pairs of `text`.
fn scan(text: &str) -> Result<Pairs, MachineFileError> {
    let mut pairs = Pairs {
        seen_sections: Vec::new(),
        values: HashMap::new(),
    };
    let mut header_seen = false;
    let mut current: Option<String> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header_seen {
            let rest = line.strip_prefix(MACHINE_FORMAT).and_then(|r| {
                let r = r.trim_start();
                r.strip_prefix('v')
            });
            let Some(version_str) = rest else {
                return Err(MachineFileError::NotAMachineFile {
                    detail: format!("found `{line}` on line {line_no}"),
                });
            };
            let version: u64 =
                version_str
                    .trim()
                    .parse()
                    .map_err(|_| MachineFileError::NotAMachineFile {
                        detail: format!("found a malformed version in `{line}` on line {line_no}"),
                    })?;
            if !(1..=MACHINE_VERSION as u64).contains(&version) {
                return Err(MachineFileError::UnsupportedVersion {
                    found: version,
                    supported: MACHINE_VERSION,
                });
            }
            header_seen = true;
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let section = section.trim();
            if !SECTIONS.iter().any(|(s, _)| *s == section) {
                return Err(MachineFileError::UnknownSection {
                    line: line_no,
                    section: section.to_string(),
                });
            }
            pairs.seen_sections.push(section.to_string());
            current = Some(section.to_string());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(MachineFileError::Syntax {
                line: line_no,
                detail: format!(
                    "expected `key = value`, a [section] header or a comment, found `{line}`"
                ),
            });
        };
        let Some(section) = current.clone() else {
            return Err(MachineFileError::Syntax {
                line: line_no,
                detail: format!("key `{}` before any [section] header", key.trim()),
            });
        };
        let key = key.trim().to_string();
        let known = SECTIONS
            .iter()
            .find(|(s, _)| *s == section)
            .is_some_and(|(_, keys)| keys.contains(&key.as_str()));
        let slot = (section.clone(), key.clone());
        if !known || pairs.values.contains_key(&slot) {
            return Err(MachineFileError::UnknownKey {
                line: line_no,
                section,
                key,
            });
        }
        pairs
            .values
            .insert(slot, (line_no, value.trim().to_string()));
    }
    if !header_seen {
        return Err(MachineFileError::NotAMachineFile {
            detail: "found an empty file".to_string(),
        });
    }
    Ok(pairs)
}

/// Reads and parses the machine file at `path`.
///
/// # Errors
///
/// [`MachineFileError::Io`] on read failure, otherwise [`parse_machine`]'s
/// errors.
pub fn read_machine(path: impl AsRef<Path>) -> Result<MachineConfig, MachineFileError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|source| MachineFileError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    parse_machine(&text)
}

/// Writes `config` to `path` in the current format version.
///
/// # Errors
///
/// [`MachineFileError::Io`] on write failure.
pub fn write_machine(
    path: impl AsRef<Path>,
    config: &MachineConfig,
) -> Result<(), MachineFileError> {
    let path = path.as_ref();
    std::fs::write(path, format_machine(config)).map_err(|source| MachineFileError::Io {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;

    #[test]
    fn presets_round_trip_exactly() {
        for dp in DesignPoint::ALL {
            let c = dp.config();
            let text = format_machine(&c);
            let back = parse_machine(&text).expect("round-trips");
            assert_eq!(back, c, "{dp}");
        }
    }

    #[test]
    fn comments_blank_lines_and_reordering_are_fine() {
        let c = DesignPoint::Small.config();
        let text = format_machine(&c);
        let body = text
            .strip_prefix(&format!("{MACHINE_FORMAT} v{MACHINE_VERSION}\n"))
            .expect("header");
        // Re-order the sections and sprinkle comments.
        let mut sections: Vec<&str> = body.trim().split("\n\n").collect();
        sections.rotate_left(2);
        let shuffled = format!(
            "# a machine file\n\n  {MACHINE_FORMAT} v{MACHINE_VERSION}\n\n{}\n# trailing comment\n",
            sections.join("\n\n# separator\n")
        );
        assert_eq!(parse_machine(&shuffled).expect("parses"), c);
    }

    #[test]
    fn future_version_is_rejected() {
        let text = format_machine(&DesignPoint::Base.config()).replacen(
            &format!("{MACHINE_FORMAT} v{MACHINE_VERSION}"),
            &format!("{MACHINE_FORMAT} v{}", MACHINE_VERSION + 1),
            1,
        );
        let err = parse_machine(&text).unwrap_err();
        assert!(
            matches!(
                err,
                MachineFileError::UnsupportedVersion { found, supported }
                    if found == (MACHINE_VERSION + 1) as u64 && supported == MACHINE_VERSION
            ),
            "{err}"
        );
    }

    #[test]
    fn write_and_read_files() {
        let dir = std::env::temp_dir().join(format!("rppm-machine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("big.machine");
        let c = DesignPoint::Big.config();
        write_machine(&path, &c).expect("writes");
        assert_eq!(read_machine(&path).expect("reads"), c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_preset_files_equal_the_constants() {
        // The five Table IV presets are committed as `.machine` files; each
        // must parse to exactly the hardcoded `DesignPoint` configuration.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines");
        for dp in DesignPoint::ALL {
            let path = dir.join(format!("{dp}.machine"));
            let parsed = read_machine(&path)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
            assert_eq!(parsed, dp.config(), "{dp}");
            // And the committed bytes are exactly what this build writes.
            let text = std::fs::read_to_string(&path).expect("readable");
            assert_eq!(text, format_machine(&dp.config()), "{dp} file is stale");
        }
    }

    #[test]
    fn io_errors_carry_the_path() {
        let err = read_machine("/nonexistent/rppm.machine").unwrap_err();
        assert!(matches!(err, MachineFileError::Io { .. }));
        assert!(err.to_string().contains("/nonexistent/rppm.machine"));
    }
}

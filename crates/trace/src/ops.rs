//! Raw micro-op record/replay and out-of-core streaming over `RPT1` files.
//!
//! The rest of the crate treats a workload as parametric block
//! specifications that are *expanded* into micro-ops on every traversal.
//! This module adds the complementary path: the expanded [`MicroOp`] stream
//! itself is **recorded** into version-3 `RPT1` containers (section tags
//! 4–6, see [`crate::binary`]) and later **replayed** without re-expansion,
//! bit-identical to what expansion would have produced. Replay is
//! *out-of-core*: the container is mapped (or `pread` on platforms without
//! `mmap`) and decoded one bounded chunk at a time, so traces far larger
//! than memory profile and simulate under a configurable budget.
//!
//! # Layout of the op-stream sections
//!
//! | tag | name      | payload |
//! |-----|-----------|---------|
//! | 4   | `op-run`  | thread varint, op count varint, encoded micro-ops |
//! | 5   | `op-sync` | thread varint, one encoded sync event |
//! | 6   | `op-meta` | run-section count, total ops, total syncs, per-thread op counts |
//!
//! Each micro-op encodes as one class/outcome byte (`class.index() |
//! taken << 7`), two varint dependence distances, and three
//! zigzag-delta-coded address fields (`line`, `code_line`, `site`) whose
//! delta chains restart at every run-section boundary — sections decode
//! independently, which is what makes section-parallel verification and
//! bounded-memory replay possible.
//!
//! # Entry points
//!
//! * [`write_program_ops`] / [`export_program_ops`] / [`record_ops`] —
//!   record a program *and* its expanded op stream into one container
//!   (what `rppm convert --ops` calls).
//! * [`OpReplay`] — open a recorded container for streaming replay; it
//!   implements [`ExecSource`], so the profiler and both simulator cores
//!   consume it through the same cursor API as a [`Program`].
//! * [`container_info`] — inspect any `RPT1` container (all versions)
//!   without decoding payloads: per-section byte counts, totals, versions.
//! * [`read_program_sections`] — decode just the program (tag-2) sections,
//!   in parallel for version-3 files.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use crate::binary::{
    decode_segment, encode_segment, push_delta, push_varint, read_program_binary, Bytes,
    DeltaState, TraceWriter, BINARY_TRACE_MAGIC, BINARY_TRACE_VERSION, MAX_SECTION_BYTES,
    MAX_THREADS, OPS_MIN_VERSION, SECTION_SEGMENTS, TAG_END, TAG_HEADER, TAG_OPS, TAG_OP_META,
    TAG_OP_RUN, TAG_OP_SYNC,
};
use crate::cursor::{BlockItem, ExecSource, ThreadCursor, EXPAND_CHUNK};
use crate::file::TraceFileError;
use crate::op::{MicroOp, OpClass, NUM_OP_CLASSES};
use crate::par::{default_jobs, parallel_for, parallel_map};
use crate::program::{Program, ProgramError, Segment};
use crate::sync::SyncOp;

/// Target number of micro-ops per `op-run` section.
///
/// Runs are also split at every sync boundary, so this is an upper target,
/// not an exact size. 4096 ops × ~10 encoded bytes keeps sections well
/// under the container's section-size limit while amortizing the
/// per-section header and delta-chain restart.
const OP_RUN_OPS: u64 = 4096;

// ---------------------------------------------------------------------------
// Per-op encoding

/// Delta-chain state for the three address-like fields of a micro-op.
///
/// Reset at every `op-run` section boundary (writer and reader
/// symmetrically), so sections decode independently.
#[derive(Debug, Clone, Copy, Default)]
struct OpDelta {
    line: u64,
    code_line: u64,
    site: u64,
}

fn encode_op(buf: &mut Vec<u8>, d: &mut OpDelta, op: &MicroOp) {
    buf.push(op.class.index() as u8 | ((op.taken as u8) << 7));
    push_varint(buf, op.src1 as u64);
    push_varint(buf, op.src2 as u64);
    push_delta(buf, &mut d.line, op.line);
    push_delta(buf, &mut d.code_line, op.code_line);
    push_delta(buf, &mut d.site, op.site as u64);
}

fn decode_op(b: &mut Bytes<'_>, d: &mut OpDelta) -> Result<MicroOp, TraceFileError> {
    let b0 = b.u8("an op header byte")?;
    let taken = b0 & 0x80 != 0;
    let ci = (b0 & 0x7F) as usize;
    if ci >= NUM_OP_CLASSES {
        return Err(TraceFileError::Corrupt {
            detail: format!("unknown op class {ci} in an op-run section"),
        });
    }
    let class = OpClass::ALL[ci];
    let src1 = b.varint("an op src1 distance")?;
    let src2 = b.varint("an op src2 distance")?;
    let (src1, src2) = match (u16::try_from(src1), u16::try_from(src2)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => {
            return Err(TraceFileError::Corrupt {
                detail: format!("op dependence distance ({src1}, {src2}) does not fit in 16 bits"),
            })
        }
    };
    let line = b.delta(&mut d.line, "an op data line")?;
    let code_line = b.delta(&mut d.code_line, "an op code line")?;
    let site = b.delta(&mut d.site, "an op branch site")?;
    let site = u32::try_from(site).map_err(|_| TraceFileError::Corrupt {
        detail: format!("op branch site {site} does not fit in 32 bits"),
    })?;
    Ok(MicroOp {
        class,
        src1,
        src2,
        line,
        code_line,
        site,
        taken,
    })
}

/// Decodes one op during replay, where [`OpReplay::open`] has already
/// verified every section: a failure here means the file changed on disk
/// after open (the one TOCTOU window streaming replay cannot close).
fn decode_op_verified(b: &mut Bytes<'_>, d: &mut OpDelta) -> MicroOp {
    decode_op(b, d).unwrap_or_else(|e| {
        panic!("op stream corrupt mid-replay ({e}); OpReplay::open verified this section, so the trace file must have changed on disk")
    })
}

// ---------------------------------------------------------------------------
// Recording

/// Records `program` **and** its fully expanded micro-op stream into a
/// version-3 `RPT1` container written to `sink`, returning the sink.
///
/// The container holds the ordinary program sections first (so every
/// existing reader still works on it), followed by the op-stream sections:
/// per-thread runs of encoded micro-ops split at sync boundaries and at
/// roughly 4096-op targets, explicit sync-event sections, and a final
/// `op-meta` section with totals. Threads are recorded sequentially, one
/// expansion chunk at a time — memory stays bounded regardless of trace
/// size.
///
/// # Errors
///
/// [`TraceFileError::InvalidProgram`] if the program fails validation, and
/// [`TraceFileError::Stream`] on sink I/O failure.
pub fn record_ops<W: Write>(program: &Program, sink: W) -> Result<W, TraceFileError> {
    program.validate().map_err(TraceFileError::InvalidProgram)?;
    let n = program.num_threads();
    let mut w = TraceWriter::with_version(sink, &program.name, n as u32, OPS_MIN_VERSION)?;
    for (t, script) in program.threads.iter().enumerate() {
        w.write_script(t as u32, script)?;
    }

    let mut run_sections = 0u64;
    let mut total_syncs = 0u64;
    let mut per_thread = vec![0u64; n];
    let mut payload = Vec::new();
    let mut opbuf = Vec::new();
    for (t, script) in program.threads.iter().enumerate() {
        let mut cur = ThreadCursor::new(script);
        let mut delta = OpDelta::default();
        let mut run_ops = 0u64;
        loop {
            enum Step {
                Ops(usize),
                Sync(SyncOp),
                End,
            }
            let step = match cur.peek_block() {
                Some(BlockItem::Ops(ops)) => {
                    for op in ops {
                        encode_op(&mut opbuf, &mut delta, op);
                    }
                    run_ops += ops.len() as u64;
                    Step::Ops(ops.len())
                }
                Some(BlockItem::Sync(op)) => Step::Sync(op),
                None => Step::End,
            };
            match step {
                Step::Ops(k) => {
                    cur.consume_ops(k);
                    if run_ops >= OP_RUN_OPS {
                        flush_run(&mut w, t as u64, &mut opbuf, &mut run_ops, &mut delta)?;
                        run_sections += 1;
                    }
                }
                Step::Sync(op) => {
                    if run_ops > 0 {
                        flush_run(&mut w, t as u64, &mut opbuf, &mut run_ops, &mut delta)?;
                        run_sections += 1;
                    }
                    payload.clear();
                    push_varint(&mut payload, t as u64);
                    encode_segment(&mut payload, &mut DeltaState::default(), &Segment::Sync(op));
                    w.write_raw_section(TAG_OP_SYNC, &payload)?;
                    total_syncs += 1;
                    cur.consume_sync();
                }
                Step::End => {
                    if run_ops > 0 {
                        flush_run(&mut w, t as u64, &mut opbuf, &mut run_ops, &mut delta)?;
                        run_sections += 1;
                    }
                    break;
                }
            }
        }
        per_thread[t] = cur.ops_consumed();
    }

    payload.clear();
    push_varint(&mut payload, run_sections);
    push_varint(&mut payload, per_thread.iter().sum());
    push_varint(&mut payload, total_syncs);
    for c in &per_thread {
        push_varint(&mut payload, *c);
    }
    w.write_raw_section(TAG_OP_META, &payload)?;
    w.finish()
}

fn flush_run<W: Write>(
    w: &mut TraceWriter<W>,
    thread: u64,
    opbuf: &mut Vec<u8>,
    run_ops: &mut u64,
    delta: &mut OpDelta,
) -> Result<(), TraceFileError> {
    let mut payload = Vec::with_capacity(opbuf.len() + 12);
    push_varint(&mut payload, thread);
    push_varint(&mut payload, *run_ops);
    payload.extend_from_slice(opbuf);
    w.write_raw_section(TAG_OP_RUN, &payload)?;
    opbuf.clear();
    *run_ops = 0;
    *delta = OpDelta::default();
    Ok(())
}

/// [`record_ops`] into an in-memory byte buffer.
///
/// # Errors
///
/// Same failure modes as [`record_ops`].
pub fn export_program_ops(program: &Program) -> Result<Vec<u8>, TraceFileError> {
    record_ops(program, Vec::new())
}

/// [`record_ops`] into the file at `path` (buffered).
///
/// # Errors
///
/// [`TraceFileError::Io`] if the file cannot be created, plus the
/// [`record_ops`] failure modes.
pub fn write_program_ops(program: &Program, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|e| TraceFileError::Io {
        path: path.to_path_buf(),
        source: e,
    })?;
    record_ops(program, std::io::BufWriter::new(file))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Random-access section source (mmap where available, pread fallback)

#[cfg(unix)]
mod mm {
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: isize = -1;

    /// A read-only private mapping of a whole file.
    pub(super) struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime (PROT_READ) and the
    // pointer is owned: sharing &Map across decode threads is sound.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `len` bytes of `file`, or `None` if the kernel refuses
        /// (callers then fall back to `pread`).
        pub(super) fn new(file: &std::fs::File, len: usize) -> Option<Map> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == MAP_FAILED {
                None
            } else {
                Some(Map { ptr, len })
            }
        }

        pub(super) fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    impl std::fmt::Debug for Map {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Map").field("len", &self.len).finish()
        }
    }
}

/// Positional-read fallback used when `mmap` is unavailable or declined.
#[derive(Debug)]
struct FileSource {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
    len: u64,
}

impl FileSource {
    fn read_into(&self, off: u64, len: usize, out: &mut Vec<u8>) -> Result<(), TraceFileError> {
        out.clear();
        out.resize(len, 0);
        let res;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            res = self.file.read_exact_at(out, off);
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.lock().unwrap();
            res = f.seek(SeekFrom::Start(off)).and_then(|_| f.read_exact(out));
        }
        res.map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceFileError::Truncated {
                    context: "a section payload".to_string(),
                }
            } else {
                crate::binary::stream_err("reading a trace section", e)
            }
        })
    }
}

/// Random-access byte source for one `RPT1` file.
///
/// `slice` is zero-copy (mmap only); `read_into` works on every backing.
#[derive(Debug)]
enum SectionSource {
    #[cfg(unix)]
    Mmap(mm::Map),
    File(FileSource),
}

impl SectionSource {
    fn open(path: &Path, use_mmap: bool) -> Result<Self, TraceFileError> {
        let io_err = |e| TraceFileError::Io {
            path: path.to_path_buf(),
            source: e,
        };
        let file = File::open(path).map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        #[cfg(unix)]
        if use_mmap && len > 0 && len <= usize::MAX as u64 {
            if let Some(map) = mm::Map::new(&file, len as usize) {
                return Ok(SectionSource::Mmap(map));
            }
        }
        #[cfg(not(unix))]
        let _ = use_mmap;
        Ok(SectionSource::File(FileSource {
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: Mutex::new(file),
            len,
        }))
    }

    fn len(&self) -> u64 {
        match self {
            #[cfg(unix)]
            SectionSource::Mmap(m) => m.bytes().len() as u64,
            SectionSource::File(f) => f.len,
        }
    }

    /// Borrows `len` bytes at `off` without copying; `None` when the
    /// backing cannot lend (non-mmap) or the range is out of bounds.
    fn slice(&self, off: u64, len: usize) -> Option<&[u8]> {
        match self {
            #[cfg(unix)]
            SectionSource::Mmap(m) => {
                let b = m.bytes();
                let off = usize::try_from(off).ok()?;
                b.get(off..off.checked_add(len)?)
            }
            SectionSource::File(_) => None,
        }
    }

    fn read_into(&self, off: u64, len: usize, out: &mut Vec<u8>) -> Result<(), TraceFileError> {
        match self {
            #[cfg(unix)]
            SectionSource::Mmap(_) => match self.slice(off, len) {
                Some(b) => {
                    out.clear();
                    out.extend_from_slice(b);
                    Ok(())
                }
                None => Err(TraceFileError::Truncated {
                    context: "a section payload".to_string(),
                }),
            },
            SectionSource::File(f) => f.read_into(off, len, out),
        }
    }
}

// ---------------------------------------------------------------------------
// Container scan (section index, no payload decode except op-sync headers)

/// Reference to one recorded `op-run` section (payload past the
/// thread/count prefix).
#[derive(Debug, Clone, Copy)]
struct RunRef {
    off: u64,
    len: u64,
    ops: u64,
}

/// One item of a thread's recorded stream, in stream order.
#[derive(Debug, Clone, Copy)]
enum StreamItem {
    Run(RunRef),
    Sync(SyncOp),
}

/// Reference to one program (tag-2) section.
#[derive(Debug, Clone, Copy)]
struct ProgRef {
    thread: u32,
    count: u64,
    off: u64,
    len: u64,
    /// Bytes of the thread/count prefix inside the payload.
    head: usize,
}

#[derive(Debug)]
struct Scan {
    version: u32,
    name: String,
    num_threads: u32,
    file_bytes: u64,
    prog_sections: Vec<ProgRef>,
    items: Vec<Vec<StreamItem>>,
    per_thread_ops: Vec<u64>,
    total_syncs: u64,
    run_sections: u64,
    segments: u64,
    has_meta: bool,
    /// `(count, payload bytes)` indexed by `tag - 1` for tags 1–6.
    tag_stats: [(u64, u64); 6],
}

fn varint_at(
    src: &SectionSource,
    pos: &mut u64,
    context: &str,
    scratch: &mut Vec<u8>,
) -> Result<u64, TraceFileError> {
    let take = src.len().saturating_sub(*pos).min(10) as usize;
    src.read_into(*pos, take, scratch)?;
    let mut b = Bytes::new(scratch);
    let v = b.varint(context)?;
    *pos += (take - b.remaining()) as u64;
    Ok(v)
}

/// Walks every section of the container, validating structure and building
/// the section index. Payloads of program and op-run sections are *not*
/// decoded — only their small thread/count prefixes are read — so a scan of
/// a multi-gigabyte trace touches a few bytes per section.
fn scan(src: &SectionSource) -> Result<Scan, TraceFileError> {
    let file_bytes = src.len();
    let mut scratch = Vec::new();
    if file_bytes < 4 {
        return Err(TraceFileError::Truncated {
            context: "the RPT1 magic".to_string(),
        });
    }
    src.read_into(0, 4, &mut scratch)?;
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&scratch);
    if magic != BINARY_TRACE_MAGIC {
        return Err(TraceFileError::BadMagic { found: magic });
    }
    let mut pos = 4u64;
    let version = varint_at(src, &mut pos, "the container version", &mut scratch)?;
    if !(1..=BINARY_TRACE_VERSION as u64).contains(&version) {
        return Err(TraceFileError::UnsupportedVersion {
            found: version,
            supported: BINARY_TRACE_VERSION,
        });
    }
    let version = version as u32;

    let mut s = Scan {
        version,
        name: String::new(),
        num_threads: 0,
        file_bytes,
        prog_sections: Vec::new(),
        items: Vec::new(),
        per_thread_ops: Vec::new(),
        total_syncs: 0,
        run_sections: 0,
        segments: 0,
        has_meta: false,
        tag_stats: [(0, 0); 6],
    };
    let mut seen_header = false;
    let mut seen_end = false;
    let mut meta = None;
    let mut total_ops_counted = 0u64;
    while !seen_end {
        if pos >= file_bytes {
            return Err(TraceFileError::Truncated {
                context: "the end section".to_string(),
            });
        }
        let tag = varint_at(src, &mut pos, "a section tag", &mut scratch)?;
        let len = varint_at(src, &mut pos, "a section length", &mut scratch)?;
        if len > MAX_SECTION_BYTES {
            return Err(TraceFileError::Corrupt {
                detail: format!("section declares {len} bytes (limit {MAX_SECTION_BYTES})"),
            });
        }
        let off = pos;
        if len > file_bytes - off {
            return Err(TraceFileError::Truncated {
                context: "a section payload".to_string(),
            });
        }
        pos = off + len;
        if (1..=6).contains(&tag) {
            let e = &mut s.tag_stats[(tag - 1) as usize];
            e.0 += 1;
            e.1 += len;
        }
        if !seen_header && tag != TAG_HEADER {
            return Err(TraceFileError::Corrupt {
                detail: format!("first section has tag {tag}, expected header (tag {TAG_HEADER})"),
            });
        }
        if (TAG_OP_RUN..=TAG_OP_META).contains(&tag) && version < OPS_MIN_VERSION {
            return Err(TraceFileError::Corrupt {
                detail: format!(
                    "op-stream section tag {tag} requires container version 3, but the \
                     stream declares version {version}"
                ),
            });
        }
        match tag {
            TAG_HEADER => {
                if seen_header {
                    return Err(TraceFileError::Corrupt {
                        detail: "duplicate header section".to_string(),
                    });
                }
                seen_header = true;
                src.read_into(off, len as usize, &mut scratch)?;
                let mut b = Bytes::new(&scratch);
                let name_len = b.varint("the workload name length")?;
                if b.pos as u64 + name_len > scratch.len() as u64 {
                    return Err(TraceFileError::Truncated {
                        context: "the workload name".to_string(),
                    });
                }
                let name_bytes = &scratch[b.pos..b.pos + name_len as usize];
                s.name = std::str::from_utf8(name_bytes)
                    .map_err(|_| TraceFileError::Corrupt {
                        detail: "workload name is not valid UTF-8".to_string(),
                    })?
                    .to_string();
                b.pos += name_len as usize;
                let num_threads = b.varint_u32("the thread count")?;
                if num_threads as u64 > MAX_THREADS {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "header declares {num_threads} threads (limit {MAX_THREADS})"
                        ),
                    });
                }
                s.num_threads = num_threads;
                s.items = vec![Vec::new(); num_threads as usize];
                s.per_thread_ops = vec![0; num_threads as usize];
            }
            TAG_OPS => {
                let window = len.min(20) as usize;
                src.read_into(off, window, &mut scratch)?;
                let mut b = Bytes::new(&scratch);
                let thread = b.varint_u32("an ops-section thread id")?;
                let count = b.varint("an ops-section segment count")?;
                let head = window - b.remaining();
                if thread >= s.num_threads {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "ops section for thread {thread}, but the header declares only \
                             {} threads",
                            s.num_threads
                        ),
                    });
                }
                if count == 0 {
                    return Err(TraceFileError::Corrupt {
                        detail: "empty segment section".to_string(),
                    });
                }
                s.segments += count;
                s.prog_sections.push(ProgRef {
                    thread,
                    count,
                    off,
                    len,
                    head,
                });
            }
            TAG_OP_RUN => {
                let window = len.min(20) as usize;
                src.read_into(off, window, &mut scratch)?;
                let mut b = Bytes::new(&scratch);
                let thread = b.varint_u32("an op-run thread id")?;
                let ops = b.varint("an op-run op count")?;
                let head = (window - b.remaining()) as u64;
                if thread >= s.num_threads {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "op-run section for thread {thread}, but the header declares \
                             only {} threads",
                            s.num_threads
                        ),
                    });
                }
                if ops == 0 {
                    return Err(TraceFileError::Corrupt {
                        detail: "empty op-run section".to_string(),
                    });
                }
                s.items[thread as usize].push(StreamItem::Run(RunRef {
                    off: off + head,
                    len: len - head,
                    ops,
                }));
                s.per_thread_ops[thread as usize] += ops;
                total_ops_counted += ops;
                s.run_sections += 1;
            }
            TAG_OP_SYNC => {
                src.read_into(off, len as usize, &mut scratch)?;
                let mut b = Bytes::new(&scratch);
                let thread = b.varint_u32("an op-sync thread id")?;
                if thread >= s.num_threads {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "op-sync section for thread {thread}, but the header declares \
                             only {} threads",
                            s.num_threads
                        ),
                    });
                }
                let seg = decode_segment(&mut b, &mut DeltaState::default(), version)?;
                let op = match seg {
                    Segment::Sync(op) => op,
                    Segment::Block(_) => {
                        return Err(TraceFileError::Corrupt {
                            detail: "op-sync section does not hold a sync event".to_string(),
                        })
                    }
                };
                if b.remaining() != 0 {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "{} excess bytes at the end of an op-sync section",
                            b.remaining()
                        ),
                    });
                }
                s.items[thread as usize].push(StreamItem::Sync(op));
                s.total_syncs += 1;
            }
            TAG_OP_META => {
                if s.has_meta {
                    return Err(TraceFileError::Corrupt {
                        detail: "duplicate op-meta section".to_string(),
                    });
                }
                s.has_meta = true;
                src.read_into(off, len as usize, &mut scratch)?;
                let mut b = Bytes::new(&scratch);
                let runs = b.varint("the op-meta run-section count")?;
                let ops = b.varint("the op-meta total op count")?;
                let syncs = b.varint("the op-meta total sync count")?;
                let mut per_thread = Vec::with_capacity(s.num_threads as usize);
                for _ in 0..s.num_threads {
                    per_thread.push(b.varint("an op-meta per-thread op count")?);
                }
                if b.remaining() != 0 {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "{} excess bytes at the end of the op-meta section",
                            b.remaining()
                        ),
                    });
                }
                meta = Some((runs, ops, syncs, per_thread));
            }
            TAG_END => {
                src.read_into(off, len as usize, &mut scratch)?;
                let mut b = Bytes::new(&scratch);
                let declared = b.varint("the end-section segment count")?;
                if b.remaining() != 0 {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "{} excess bytes at the end of the end section",
                            b.remaining()
                        ),
                    });
                }
                if declared != s.segments {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "trace declares {declared} segments, but its sections carry {}",
                            s.segments
                        ),
                    });
                }
                seen_end = true;
            }
            _ => {
                return Err(TraceFileError::Corrupt {
                    detail: format!("unknown section tag {tag}"),
                })
            }
        }
    }
    if pos != file_bytes {
        return Err(TraceFileError::Corrupt {
            detail: format!("{} trailing bytes after the end section", file_bytes - pos),
        });
    }
    if let Some((runs, ops, syncs, per_thread)) = meta {
        if runs != s.run_sections
            || ops != total_ops_counted
            || syncs != s.total_syncs
            || per_thread != s.per_thread_ops
        {
            return Err(TraceFileError::Corrupt {
                detail: format!(
                    "op-meta section disagrees with the op sections (meta: {runs} runs / \
                     {ops} ops / {syncs} syncs; sections: {} runs / {total_ops_counted} ops / \
                     {} syncs)",
                    s.run_sections, s.total_syncs
                ),
            });
        }
    }
    Ok(s)
}

// ---------------------------------------------------------------------------
// Program decode from the section index (parallel for version 3)

fn decode_prog_sections(
    src: &SectionSource,
    s: &Scan,
    jobs: usize,
) -> Result<Program, TraceFileError> {
    debug_assert!(s.version >= OPS_MIN_VERSION);
    let n = s.prog_sections.len();
    let decoded = parallel_map(jobs, n, |i| {
        let r = s.prog_sections[i];
        let mut owned = Vec::new();
        let bytes = match src.slice(r.off, r.len as usize) {
            Some(b) => b,
            None => {
                src.read_into(r.off, r.len as usize, &mut owned)?;
                owned.as_slice()
            }
        };
        let mut b = Bytes::new(bytes);
        b.pos = r.head;
        let mut d = DeltaState::default();
        let mut segs = Vec::with_capacity(r.count.min(SECTION_SEGMENTS) as usize);
        for _ in 0..r.count {
            segs.push(decode_segment(&mut b, &mut d, s.version)?);
        }
        if b.remaining() != 0 {
            return Err(TraceFileError::Corrupt {
                detail: format!(
                    "{} excess bytes at the end of an ops section",
                    b.remaining()
                ),
            });
        }
        Ok(segs)
    });
    let mut program = Program::new(s.name.clone(), s.num_threads as usize);
    for (i, segs) in decoded.into_iter().enumerate() {
        let thread = s.prog_sections[i].thread as usize;
        program.threads[thread].segments.extend(segs?);
    }
    program.validate().map_err(TraceFileError::InvalidProgram)?;
    Ok(program)
}

/// Reads just the program from an `RPT1` file, decoding the program
/// sections of a version-3 container **in parallel** across `jobs` threads
/// (version-3 sections restart their delta chains, so each decodes
/// independently). Version-1/2 containers fall back to the sequential
/// streaming reader.
///
/// # Errors
///
/// The same failure modes as [`read_program_binary`].
pub fn read_program_sections(
    path: impl AsRef<Path>,
    jobs: usize,
) -> Result<Program, TraceFileError> {
    let path = path.as_ref();
    let src = SectionSource::open(path, true)?;
    let s = scan(&src)?;
    if s.version < OPS_MIN_VERSION {
        drop(src);
        return read_program_binary(path);
    }
    decode_prog_sections(&src, &s, jobs)
}

// ---------------------------------------------------------------------------
// Container inspection

/// Per-tag summary of an `RPT1` container's sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSummary {
    /// Section tag value.
    pub tag: u64,
    /// Human-readable tag name (`"header"`, `"segments"`, `"op-run"`, ...).
    pub label: &'static str,
    /// Number of sections carrying this tag.
    pub count: u64,
    /// Total payload bytes across those sections (headers excluded).
    pub bytes: u64,
}

/// What `rppm trace-info` prints: the structural inventory of one `RPT1`
/// container, gathered by a scan that never decodes op or segment payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Container format version (1–3).
    pub version: u32,
    /// Workload name from the header.
    pub name: String,
    /// Thread count from the header.
    pub num_threads: u32,
    /// Size of the file in bytes.
    pub file_bytes: u64,
    /// Per-tag section summaries, in tag order (absent tags omitted).
    pub sections: Vec<SectionSummary>,
    /// Total program segments across the tag-2 sections.
    pub segments: u64,
    /// Total recorded micro-ops across the op-run sections.
    pub recorded_ops: u64,
    /// Total recorded sync events across the op-sync sections.
    pub recorded_syncs: u64,
    /// Whether the container carries a recorded op stream ([`OpReplay`]
    /// can open it).
    pub has_op_stream: bool,
}

fn tag_label(tag: u64) -> &'static str {
    match tag {
        TAG_HEADER => "header",
        TAG_OPS => "segments",
        TAG_END => "end",
        TAG_OP_RUN => "op-run",
        TAG_OP_SYNC => "op-sync",
        TAG_OP_META => "op-meta",
        _ => "unknown",
    }
}

/// Scans the `RPT1` container at `path` and reports its structure without
/// decoding any program or op payloads. Works on every container version.
///
/// # Errors
///
/// [`TraceFileError::Io`] if the file cannot be opened, and the scan's
/// typed errors ([`TraceFileError::BadMagic`],
/// [`TraceFileError::UnsupportedVersion`], [`TraceFileError::Truncated`],
/// [`TraceFileError::Corrupt`], ...) on malformed containers.
pub fn container_info(path: impl AsRef<Path>) -> Result<ContainerInfo, TraceFileError> {
    let src = SectionSource::open(path.as_ref(), true)?;
    let s = scan(&src)?;
    let sections = s
        .tag_stats
        .iter()
        .enumerate()
        .filter(|(_, &(count, _))| count > 0)
        .map(|(i, &(count, bytes))| SectionSummary {
            tag: i as u64 + 1,
            label: tag_label(i as u64 + 1),
            count,
            bytes,
        })
        .collect();
    let recorded_ops = s.per_thread_ops.iter().sum();
    Ok(ContainerInfo {
        version: s.version,
        name: s.name,
        num_threads: s.num_threads,
        file_bytes: s.file_bytes,
        sections,
        segments: s.segments,
        recorded_ops,
        recorded_syncs: s.total_syncs,
        has_op_stream: s.has_meta || s.run_sections > 0 || s.total_syncs > 0,
    })
}

// ---------------------------------------------------------------------------
// Chunk pool

/// Recycles decode buffers under a byte budget, so replay memory stays
/// bounded no matter how many sections stream through.
#[derive(Debug)]
struct ChunkPool {
    cap: usize,
    slots: Mutex<PoolState>,
}

#[derive(Debug, Default)]
struct PoolState {
    bufs: Vec<Vec<u8>>,
    held: usize,
}

impl ChunkPool {
    fn new(cap: usize) -> Self {
        ChunkPool {
            cap,
            slots: Mutex::new(PoolState::default()),
        }
    }

    fn take(&self) -> Vec<u8> {
        let mut s = self.slots.lock().unwrap();
        match s.bufs.pop() {
            Some(b) => {
                s.held -= b.capacity();
                b
            }
            None => Vec::new(),
        }
    }

    fn put(&self, b: Vec<u8>) {
        if b.capacity() == 0 {
            return;
        }
        let mut s = self.slots.lock().unwrap();
        if s.held + b.capacity() <= self.cap {
            s.held += b.capacity();
            s.bufs.push(b);
        }
        // Over budget: drop the buffer, releasing its memory.
    }
}

// ---------------------------------------------------------------------------
// Streaming replay

/// Knobs for [`OpReplay::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Micro-ops decoded per cursor refill (the replay analog of the
    /// expansion chunk). Smaller values bound peak memory tighter at the
    /// cost of more refills; `0` is treated as `1`.
    pub chunk_ops: usize,
    /// Byte budget of the shared decode-buffer pool used when the file is
    /// not memory-mapped. Buffers beyond the budget are freed instead of
    /// recycled.
    pub pool_bytes: usize,
    /// Memory-map the container when the platform allows it (zero-copy
    /// section access). When `false` — or when mapping fails — sections are
    /// `pread` into pooled buffers instead.
    pub mmap: bool,
    /// Worker threads for the open-time parallel scan/verify and for
    /// section-parallel program decode.
    pub jobs: usize,
    /// Decode-validate every op section at open (parallel, without
    /// retaining the ops), so corruption surfaces as a typed error here
    /// rather than mid-replay.
    pub verify: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            chunk_ops: EXPAND_CHUNK,
            pool_bytes: 4 << 20,
            mmap: true,
            jobs: default_jobs(),
            verify: true,
        }
    }
}

/// A recorded micro-op stream opened for out-of-core replay.
///
/// `OpReplay` holds the decoded [`Program`] (for validation, sync-event
/// queries and metadata) plus a section index over the op-stream sections
/// of the version-3 container; the op payloads themselves stay on disk and
/// are decoded chunk-by-chunk as cursors traverse them. It implements
/// [`ExecSource`], so `rppm-profiler` and both `rppm-sim` engines consume
/// replayed traces through the exact cursor API they use for expansion —
/// the differential suites pin the two paths bit-identical.
///
/// Opening verifies the container structurally (and, by default, decodes
/// every op section once in parallel), so replay itself cannot fail with
/// a typed error; if the file is modified on disk *after* open, a
/// mid-replay decode panics rather than returning garbage.
#[derive(Debug)]
pub struct OpReplay {
    program: Program,
    source: SectionSource,
    items: Vec<Vec<StreamItem>>,
    per_thread_ops: Vec<u64>,
    total_syncs: u64,
    options: StreamOptions,
    pool: ChunkPool,
    version: u32,
}

impl OpReplay {
    /// Opens the container at `path` with default [`StreamOptions`].
    ///
    /// # Errors
    ///
    /// [`TraceFileError::NoOpStream`] if the container carries no recorded
    /// op stream, plus every scan / program-decode / verify failure mode.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        Self::open_with(path, StreamOptions::default())
    }

    /// Opens the container at `path` with explicit [`StreamOptions`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`OpReplay::open`].
    pub fn open_with(
        path: impl AsRef<Path>,
        options: StreamOptions,
    ) -> Result<Self, TraceFileError> {
        let src = SectionSource::open(path.as_ref(), options.mmap)?;
        let s = scan(&src)?;
        if !(s.has_meta || s.run_sections > 0 || s.total_syncs > 0) {
            return Err(TraceFileError::NoOpStream {
                detail: format!(
                    "container version {} holding {} program segments and no op sections",
                    s.version, s.segments
                ),
            });
        }
        let program = decode_prog_sections(&src, &s, options.jobs)?;
        let replay = OpReplay {
            program,
            source: src,
            items: s.items,
            per_thread_ops: s.per_thread_ops,
            total_syncs: s.total_syncs,
            options,
            pool: ChunkPool::new(options.pool_bytes.max(1)),
            version: s.version,
        };
        replay.check_against_program()?;
        if options.verify {
            replay.verify_sections(options.jobs)?;
        }
        Ok(replay)
    }

    /// The decoded program carried alongside the op stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Container format version (always ≥ 3 for a successfully opened
    /// replay).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Total recorded micro-ops across all threads.
    pub fn total_ops(&self) -> u64 {
        self.per_thread_ops.iter().sum()
    }

    /// Total recorded sync events across all threads.
    pub fn total_syncs(&self) -> u64 {
        self.total_syncs
    }

    /// Opens a replay cursor over `thread`'s recorded stream.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn cursor(&self, thread: usize) -> ThreadCursor<'_> {
        ThreadCursor::from_replay(ReplayCursor::new(self, thread))
    }

    /// Checks the recorded stream against the program sections: per-thread
    /// op totals must match what expansion would produce, and the recorded
    /// sync sequence must equal the script's.
    fn check_against_program(&self) -> Result<(), TraceFileError> {
        for (t, script) in self.program.threads.iter().enumerate() {
            let expected = script.total_ops();
            let recorded = self.per_thread_ops[t];
            if recorded != expected {
                return Err(TraceFileError::Corrupt {
                    detail: format!(
                        "thread {t}: op stream records {recorded} ops, but the program \
                         sections expand to {expected}"
                    ),
                });
            }
            let recorded_syncs: Vec<SyncOp> = self.items[t]
                .iter()
                .filter_map(|i| match i {
                    StreamItem::Sync(op) => Some(*op),
                    StreamItem::Run(_) => None,
                })
                .collect();
            let script_syncs: Vec<SyncOp> = script.sync_ops().copied().collect();
            if recorded_syncs != script_syncs {
                return Err(TraceFileError::Corrupt {
                    detail: format!(
                        "thread {t}: recorded sync sequence ({} events) does not match the \
                         program's ({} events)",
                        recorded_syncs.len(),
                        script_syncs.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Decode-validates every op-run section in parallel without retaining
    /// the decoded ops — bounded memory, typed errors at open time.
    fn verify_sections(&self, jobs: usize) -> Result<(), TraceFileError> {
        let runs: Vec<RunRef> = self
            .items
            .iter()
            .flat_map(|items| {
                items.iter().filter_map(|i| match i {
                    StreamItem::Run(r) => Some(*r),
                    StreamItem::Sync(_) => None,
                })
            })
            .collect();
        let first_err: Mutex<Option<TraceFileError>> = Mutex::new(None);
        parallel_for(jobs, runs.len(), |i| {
            if first_err.lock().unwrap().is_some() {
                return;
            }
            let r = runs[i];
            let mut owned = Vec::new();
            let res = (|| {
                let bytes = match self.source.slice(r.off, r.len as usize) {
                    Some(b) => b,
                    None => {
                        self.source.read_into(r.off, r.len as usize, &mut owned)?;
                        owned.as_slice()
                    }
                };
                let mut b = Bytes::new(bytes);
                let mut d = OpDelta::default();
                for _ in 0..r.ops {
                    decode_op(&mut b, &mut d)?;
                }
                if b.remaining() != 0 {
                    return Err(TraceFileError::Corrupt {
                        detail: format!(
                            "{} excess bytes at the end of an op-run section",
                            b.remaining()
                        ),
                    });
                }
                Ok(())
            })();
            if let Err(e) = res {
                let mut slot = first_err.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        });
        match first_err.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl ExecSource for OpReplay {
    fn name(&self) -> &str {
        &self.program.name
    }

    fn num_threads(&self) -> usize {
        self.program.num_threads()
    }

    fn validate(&self) -> Result<(), ProgramError> {
        self.program.validate()
    }

    fn cursor(&self, thread: usize) -> ThreadCursor<'_> {
        OpReplay::cursor(self, thread)
    }

    fn sync_ops(&self, thread: usize) -> Vec<SyncOp> {
        self.program.threads[thread].sync_ops().copied().collect()
    }
}

// ---------------------------------------------------------------------------
// Replay cursor

/// Raw bytes of the op-run section a cursor is currently decoding.
#[derive(Debug)]
enum RawBytes<'p> {
    /// No section loaded.
    None,
    /// Zero-copy view into the memory-mapped file.
    Borrowed(&'p [u8]),
    /// Pooled buffer filled by positional reads.
    Owned(Vec<u8>),
}

/// Streaming cursor over one thread's *recorded* op stream.
///
/// Mirrors the eager-advance semantics of the expansion-backed cursor
/// exactly (an `Ops` peek is never empty; draining the final chunk of a
/// run advances to the next item so a following `Sync` peek works), which
/// is what lets [`crate::cursor::ThreadCursor`] dispatch over both without
/// consumers noticing.
#[derive(Debug)]
pub(crate) struct ReplayCursor<'p> {
    replay: &'p OpReplay,
    items: &'p [StreamItem],
    item: usize,
    raw: RawBytes<'p>,
    /// Byte position inside the current section payload.
    pos: usize,
    /// Ops of the current run not yet decoded into `buf`.
    run_left: u64,
    delta: OpDelta,
    buf: Vec<MicroOp>,
    buf_pos: usize,
    /// Whether `buf` holds an unconsumed chunk of the current run.
    filled: bool,
    ops_consumed: u64,
}

impl<'p> ReplayCursor<'p> {
    fn new(replay: &'p OpReplay, thread: usize) -> Self {
        ReplayCursor {
            replay,
            items: &replay.items[thread],
            item: 0,
            raw: RawBytes::None,
            pos: 0,
            run_left: 0,
            delta: OpDelta::default(),
            buf: Vec::new(),
            buf_pos: 0,
            filled: false,
            ops_consumed: 0,
        }
    }

    /// Loads the current run's section bytes and decodes the next chunk
    /// into `buf` if needed.
    fn ensure(&mut self) {
        let r = match self.items.get(self.item) {
            Some(StreamItem::Run(r)) => *r,
            Some(StreamItem::Sync(_)) | None => return,
        };
        if matches!(self.raw, RawBytes::None) {
            self.raw = match self.replay.source.slice(r.off, r.len as usize) {
                Some(b) => RawBytes::Borrowed(b),
                None => {
                    let mut v = self.replay.pool.take();
                    self.replay
                        .source
                        .read_into(r.off, r.len as usize, &mut v)
                        .unwrap_or_else(|e| {
                            panic!("op-run section unreadable mid-replay ({e}); was the trace file modified on disk?")
                        });
                    RawBytes::Owned(v)
                }
            };
            self.pos = 0;
            self.run_left = r.ops;
            self.delta = OpDelta::default();
        }
        if !self.filled {
            let take = self
                .run_left
                .min(self.replay.options.chunk_ops.max(1) as u64) as usize;
            self.buf.clear();
            self.buf_pos = 0;
            let bytes = match &self.raw {
                RawBytes::Borrowed(b) => *b,
                RawBytes::Owned(v) => v.as_slice(),
                RawBytes::None => unreachable!(),
            };
            let mut b = Bytes::new(bytes);
            b.pos = self.pos;
            for _ in 0..take {
                self.buf.push(decode_op_verified(&mut b, &mut self.delta));
            }
            self.pos = b.pos;
            self.run_left -= take as u64;
            self.filled = true;
        }
    }

    /// Releases the current section (returning pooled buffers) and moves
    /// to the next stream item.
    fn finish_run(&mut self) {
        if let RawBytes::Owned(v) = std::mem::replace(&mut self.raw, RawBytes::None) {
            self.replay.pool.put(v);
        }
        self.pos = 0;
        self.item += 1;
    }

    pub(crate) fn peek_block(&mut self) -> Option<BlockItem<'_>> {
        self.ensure();
        match self.items.get(self.item) {
            Some(StreamItem::Run(_)) => Some(BlockItem::Ops(&self.buf[self.buf_pos..])),
            Some(StreamItem::Sync(op)) => Some(BlockItem::Sync(*op)),
            None => None,
        }
    }

    pub(crate) fn consume_ops(&mut self, n: usize) {
        debug_assert!(
            self.filled && self.buf_pos + n <= self.buf.len(),
            "consume_ops({n}) without a matching peek_block"
        );
        self.ops_consumed += n as u64;
        self.buf_pos += n;
        if self.buf_pos >= self.buf.len() {
            self.filled = false;
            // Advance to the next item only once the run is fully decoded;
            // otherwise the next ensure() refills with the run's next chunk.
            if self.run_left == 0 {
                self.finish_run();
            }
        }
    }

    pub(crate) fn consume_sync(&mut self) {
        debug_assert!(
            matches!(self.items.get(self.item), Some(StreamItem::Sync(_))),
            "consume_sync without a pending sync event"
        );
        self.item += 1;
        self.filled = false;
    }

    pub(crate) fn at_end(&mut self) -> bool {
        self.ensure();
        self.item >= self.items.len()
    }

    pub(crate) fn ops_consumed(&self) -> u64 {
        self.ops_consumed
    }

    pub(crate) fn take_block(&mut self) -> &[MicroOp] {
        self.ensure();
        match self.items.get(self.item) {
            Some(StreamItem::Run(_)) => {
                let start = self.buf_pos;
                if self.run_left > 0 {
                    let bytes = match &self.raw {
                        RawBytes::Borrowed(b) => *b,
                        RawBytes::Owned(v) => v.as_slice(),
                        RawBytes::None => unreachable!(),
                    };
                    let mut b = Bytes::new(bytes);
                    b.pos = self.pos;
                    for _ in 0..self.run_left {
                        self.buf.push(decode_op_verified(&mut b, &mut self.delta));
                    }
                    self.pos = b.pos;
                    self.run_left = 0;
                }
                let len = self.buf.len() - start;
                self.ops_consumed += len as u64;
                self.buf_pos = self.buf.len();
                self.filled = false;
                self.finish_run();
                &self.buf[start..]
            }
            _ => &[],
        }
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::write_program_binary;
    use crate::block::BlockSpec;
    use crate::cursor::CursorItem;
    use crate::file::program_fingerprint;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rppm-ops-{}-{tag}-{n}.rpt", std::process::id()))
    }

    fn demo_program() -> Program {
        let mut p = Program::new("ops-demo", 2);
        p.threads[0]
            .segments
            .push(Segment::Sync(SyncOp::Create { child: 1.into() }));
        for k in 0..5u64 {
            let mut b0 = BlockSpec::new(1500, 11 + k)
                .loads(0.25)
                .stores(0.05)
                .branches(0.1);
            b0.code_base = k * 977;
            p.threads[0].segments.push(Segment::Block(b0));
            p.threads[1].segments.push(Segment::Block(
                BlockSpec::new(900, 23 + k).deps(0.4, 3.0).branches(0.2),
            ));
        }
        p.threads[0]
            .segments
            .push(Segment::Sync(SyncOp::Join { child: 1.into() }));
        p.validate().unwrap();
        p
    }

    fn collect_items(cur: &mut ThreadCursor<'_>) -> Vec<CursorItem> {
        let mut out = Vec::new();
        while let Some(item) = cur.item() {
            out.push(item);
            cur.advance();
        }
        out
    }

    #[test]
    fn record_replay_streams_bit_identical() {
        let p = demo_program();
        let path = tmp_path("roundtrip");
        write_program_ops(&p, &path).unwrap();
        let replay = OpReplay::open(&path).unwrap();
        assert_eq!(replay.total_ops(), p.total_ops());
        assert_eq!(replay.program(), &p);
        for t in 0..p.num_threads() {
            let expanded = collect_items(&mut ThreadCursor::new(&p.threads[t]));
            let replayed = collect_items(&mut replay.cursor(t));
            assert_eq!(expanded, replayed, "thread {t} streams diverge");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tiny_chunk_and_pool_budget_replays_identically() {
        let p = demo_program();
        let path = tmp_path("tiny");
        write_program_ops(&p, &path).unwrap();
        let opts = StreamOptions {
            chunk_ops: 3,
            pool_bytes: 64,
            mmap: false,
            jobs: 1,
            verify: true,
        };
        let replay = OpReplay::open_with(&path, opts).unwrap();
        for t in 0..p.num_threads() {
            let expanded = collect_items(&mut ThreadCursor::new(&p.threads[t]));
            let replayed = collect_items(&mut replay.cursor(t));
            assert_eq!(expanded, replayed, "thread {t} streams diverge");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn take_block_covers_the_same_ops() {
        let p = demo_program();
        let path = tmp_path("takeblock");
        write_program_ops(&p, &path).unwrap();
        let replay = OpReplay::open(&path).unwrap();
        for t in 0..p.num_threads() {
            let flatten = |cur: &mut ThreadCursor<'_>| {
                let mut ops = Vec::new();
                let mut syncs = Vec::new();
                loop {
                    enum Kind {
                        Ops,
                        Sync(SyncOp),
                        End,
                    }
                    let kind = match cur.peek_block() {
                        Some(BlockItem::Ops(_)) => Kind::Ops,
                        Some(BlockItem::Sync(op)) => Kind::Sync(op),
                        None => Kind::End,
                    };
                    match kind {
                        Kind::Ops => ops.extend_from_slice(cur.take_block()),
                        Kind::Sync(op) => {
                            syncs.push(op);
                            cur.consume_sync();
                        }
                        Kind::End => break,
                    }
                }
                (ops, syncs)
            };
            let a = flatten(&mut ThreadCursor::new(&p.threads[t]));
            let b = flatten(&mut replay.cursor(t));
            assert_eq!(a, b, "thread {t} take_block streams diverge");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn plain_binary_has_no_op_stream() {
        let p = demo_program();
        let path = tmp_path("plain");
        write_program_binary(&p, &path).unwrap();
        let err = OpReplay::open(&path).unwrap_err();
        assert!(
            matches!(err, TraceFileError::NoOpStream { .. }),
            "expected NoOpStream, got {err:?}"
        );
        let info = container_info(&path).unwrap();
        assert!(!info.has_op_stream);
        assert_eq!(info.recorded_ops, 0);
        assert_eq!(info.version, p.format_version());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn container_info_reports_op_sections() {
        let p = demo_program();
        let path = tmp_path("info");
        write_program_ops(&p, &path).unwrap();
        let info = container_info(&path).unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.name, "ops-demo");
        assert_eq!(info.num_threads, 2);
        assert!(info.has_op_stream);
        assert_eq!(info.recorded_ops, p.total_ops());
        assert_eq!(info.recorded_syncs, 2);
        assert_eq!(info.file_bytes, std::fs::metadata(&path).unwrap().len());
        let tags: Vec<u64> = info.sections.iter().map(|s| s.tag).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5, 6]);
        assert!(info.sections.iter().all(|s| s.count > 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_program_sections_round_trips() {
        let p = demo_program();
        let ops_path = tmp_path("sections-v3");
        write_program_ops(&p, &ops_path).unwrap();
        let q = read_program_sections(&ops_path, 4).unwrap();
        assert_eq!(program_fingerprint(&q), program_fingerprint(&p));
        std::fs::remove_file(&ops_path).unwrap();

        let bin_path = tmp_path("sections-v1");
        write_program_binary(&p, &bin_path).unwrap();
        let q = read_program_sections(&bin_path, 4).unwrap();
        assert_eq!(program_fingerprint(&q), program_fingerprint(&p));
        std::fs::remove_file(&bin_path).unwrap();
    }

    #[test]
    fn empty_op_run_section_is_corrupt() {
        let mut w = TraceWriter::with_version(Vec::new(), "x", 1, 3).unwrap();
        let mut payload = Vec::new();
        push_varint(&mut payload, 0); // thread
        push_varint(&mut payload, 0); // zero ops
        w.write_raw_section(TAG_OP_RUN, &payload).unwrap();
        let bytes = w.finish().unwrap();
        let path = tmp_path("emptyrun");
        std::fs::write(&path, &bytes).unwrap();
        let err = container_info(&path).unwrap_err();
        assert!(
            matches!(&err, TraceFileError::Corrupt { detail } if detail.contains("empty op-run")),
            "expected empty-op-run Corrupt, got {err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

//! Ergonomic construction of multi-threaded workloads.

use crate::block::BlockSpec;
use crate::pattern::Region;
use crate::program::{Program, ProgramError, Segment};
use crate::sync::{BarrierId, MutexId, QueueId, RwLockId, SemId, SyncOp, ThreadId};

/// Builder for [`Program`]s.
///
/// The builder owns the shared-resource allocators: data regions, barriers,
/// mutexes, queues, branch-site identifiers and instruction-line space. The
/// benchmark analogs in `rppm-workloads` are written entirely against this
/// API.
///
/// # Example
///
/// ```
/// use rppm_trace::{ProgramBuilder, BlockSpec, AddressPattern};
///
/// let mut b = ProgramBuilder::new("example", 3);
/// let shared = b.alloc_region(4096);
/// let bar = b.alloc_barrier();
/// b.spawn_workers();
/// for t in 0..3u32 {
///     b.thread(t)
///         .block(
///             BlockSpec::new(1000, 7 + t as u64)
///                 .loads(0.3)
///                 .addr(AddressPattern::stream(shared.chunk(t as u64, 3)), 1.0),
///         )
///         .barrier(bar);
/// }
/// b.join_workers();
/// let p = b.build();
/// assert_eq!(p.num_threads(), 3);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    next_data_line: u64,
    next_barrier: u32,
    next_mutex: u32,
    next_queue: u32,
    next_rwlock: u32,
    next_sem: u32,
    next_site: u32,
    next_code_line: u64,
}

/// Gap left between allocated data regions (lines) so that streams over
/// adjacent regions do not accidentally blend.
const REGION_GAP: u64 = 64;

impl ProgramBuilder {
    /// Starts building a program named `name` with `n_threads` threads
    /// (thread 0 is the main thread).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(name: impl Into<String>, n_threads: usize) -> Self {
        assert!(n_threads > 0, "a program needs at least one thread");
        ProgramBuilder {
            program: Program::new(name, n_threads),
            next_data_line: 0,
            next_barrier: 0,
            next_mutex: 0,
            next_queue: 0,
            next_rwlock: 0,
            next_sem: 0,
            next_site: 1,
            next_code_line: 1,
        }
    }

    /// Number of threads in the program under construction.
    pub fn num_threads(&self) -> usize {
        self.program.num_threads()
    }

    /// Allocates a fresh data region of `lines` cache lines.
    pub fn alloc_region(&mut self, lines: u64) -> Region {
        let r = Region::new(self.next_data_line, lines.max(1));
        self.next_data_line += lines.max(1) + REGION_GAP;
        r
    }

    /// Allocates a fresh barrier.
    pub fn alloc_barrier(&mut self) -> BarrierId {
        let id = BarrierId(self.next_barrier);
        self.next_barrier += 1;
        id
    }

    /// Allocates a fresh mutex.
    pub fn alloc_mutex(&mut self) -> MutexId {
        let id = MutexId(self.next_mutex);
        self.next_mutex += 1;
        id
    }

    /// Allocates a fresh producer/consumer queue.
    pub fn alloc_queue(&mut self) -> QueueId {
        let id = QueueId(self.next_queue);
        self.next_queue += 1;
        id
    }

    /// Allocates a fresh reader-writer lock (format version 2).
    pub fn alloc_rwlock(&mut self) -> RwLockId {
        let id = RwLockId(self.next_rwlock);
        self.next_rwlock += 1;
        id
    }

    /// Allocates a fresh counting semaphore (format version 2).
    pub fn alloc_sem(&mut self) -> SemId {
        let id = SemId(self.next_sem);
        self.next_sem += 1;
        id
    }

    /// Registers a block template: assigns it static branch-site identifiers
    /// and an instruction-line range. Re-using the returned template (with
    /// [`BlockSpec::with_seed`] / [`BlockSpec::with_ops`]) across epochs
    /// models the same static code executing repeatedly — the instruction
    /// footprint and branch sites stay put, as they would in a real binary.
    pub fn template(&mut self, mut spec: BlockSpec) -> BlockSpec {
        spec.site_base = self.next_site;
        self.next_site += spec.n_sites;
        spec.code_base = self.next_code_line;
        self.next_code_line += spec.code_lines;
        spec
    }

    /// Returns the script builder for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the thread index is out of range.
    pub fn thread(&mut self, thread: impl Into<ThreadId>) -> ThreadBuilder<'_> {
        let t = thread.into();
        assert!(
            t.index() < self.program.num_threads(),
            "thread {t} out of range"
        );
        ThreadBuilder {
            owner: self,
            thread: t,
        }
    }

    /// Convenience: the main thread creates every worker (threads `1..n`).
    pub fn spawn_workers(&mut self) {
        for t in 1..self.program.num_threads() as u32 {
            self.thread(0u32).create(ThreadId(t));
        }
    }

    /// Convenience: the main thread joins every worker (threads `1..n`).
    pub fn join_workers(&mut self) {
        for t in 1..self.program.num_threads() as u32 {
            self.thread(0u32).join(ThreadId(t));
        }
    }

    /// Finishes construction, validating structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the program is structurally invalid (see
    /// [`Program::validate`]); builder misuse is a programming error.
    pub fn build(self) -> Program {
        match self.try_build() {
            Ok(p) => p,
            Err(e) => panic!("invalid program: {e}"),
        }
    }

    /// Finishes construction, returning an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found, if any.
    pub fn try_build(self) -> Result<Program, ProgramError> {
        self.program.validate()?;
        Ok(self.program)
    }
}

impl BlockSpec {
    /// Returns a copy with a different expansion seed (same static code).
    pub fn with_seed(&self, seed: u64) -> BlockSpec {
        let mut b = self.clone();
        b.seed = seed;
        b
    }

    /// Returns a copy with a different op count (same static code).
    pub fn with_ops(&self, ops: u32) -> BlockSpec {
        let mut b = self.clone();
        b.ops = ops;
        b
    }
}

/// Script builder for one thread; obtained from [`ProgramBuilder::thread`].
#[derive(Debug)]
pub struct ThreadBuilder<'b> {
    owner: &'b mut ProgramBuilder,
    thread: ThreadId,
}

impl ThreadBuilder<'_> {
    fn push(&mut self, seg: Segment) -> &mut Self {
        self.owner.program.threads[self.thread.index()]
            .segments
            .push(seg);
        self
    }

    /// Appends an instruction block. If the block has not been registered as
    /// a template (site/code bases unassigned), it is registered now.
    pub fn block(&mut self, spec: BlockSpec) -> &mut Self {
        let spec = if spec.site_base == 0 || spec.code_base == 0 {
            self.owner.template(spec)
        } else {
            spec
        };
        self.push(Segment::Block(spec))
    }

    /// Appends a barrier wait.
    pub fn barrier(&mut self, id: BarrierId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Barrier {
            id,
            via_cond: false,
        }))
    }

    /// Appends a barrier implemented via a condition variable (classified as
    /// a condition-variable event in Table III accounting).
    pub fn cond_barrier(&mut self, id: BarrierId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Barrier { id, via_cond: true }))
    }

    /// Appends a mutex acquire (critical-section entry).
    pub fn lock(&mut self, id: MutexId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Lock { id }))
    }

    /// Appends a mutex release (critical-section exit).
    pub fn unlock(&mut self, id: MutexId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Unlock { id }))
    }

    /// Appends a producer operation making `count` items available.
    pub fn produce(&mut self, queue: QueueId, count: u32) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Produce { queue, count }))
    }

    /// Appends a consumer operation (may wait for an item).
    pub fn consume(&mut self, queue: QueueId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Consume { queue }))
    }

    /// Appends a reader-writer acquire: exclusive when `write` is true,
    /// shared otherwise. Requires trace format version 2.
    pub fn rw_lock(&mut self, id: RwLockId, write: bool) -> &mut Self {
        self.push(Segment::Sync(SyncOp::RwLock { id, write }))
    }

    /// Appends a reader-writer release (matches the innermost
    /// [`rw_lock`](Self::rw_lock)). Requires trace format version 2.
    pub fn rw_unlock(&mut self, id: RwLockId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::RwUnlock { id }))
    }

    /// Appends a semaphore wait (may block until a permit is posted).
    /// Requires trace format version 2.
    pub fn sem_wait(&mut self, id: SemId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::SemWait { id }))
    }

    /// Appends a semaphore post releasing `count` permits. Requires trace
    /// format version 2.
    pub fn sem_post(&mut self, id: SemId, count: u32) -> &mut Self {
        self.push(Segment::Sync(SyncOp::SemPost { id, count }))
    }

    /// Appends a thread-creation event.
    pub fn create(&mut self, child: ThreadId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Create { child }))
    }

    /// Appends a join on `child`.
    pub fn join(&mut self, child: ThreadId) -> &mut Self {
        self.push(Segment::Sync(SyncOp::Join { child }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AddressPattern;

    #[test]
    fn regions_do_not_overlap() {
        let mut b = ProgramBuilder::new("t", 1);
        let r1 = b.alloc_region(100);
        let r2 = b.alloc_region(50);
        assert!(r1.base + r1.lines <= r2.base);
    }

    #[test]
    fn ids_are_fresh() {
        let mut b = ProgramBuilder::new("t", 1);
        assert_ne!(b.alloc_barrier(), b.alloc_barrier());
        assert_ne!(b.alloc_mutex(), b.alloc_mutex());
        assert_ne!(b.alloc_queue(), b.alloc_queue());
    }

    #[test]
    fn template_assigns_disjoint_code_and_sites() {
        let mut b = ProgramBuilder::new("t", 1);
        let t1 = b.template(BlockSpec::new(10, 1).sites(3).code_footprint(16));
        let t2 = b.template(BlockSpec::new(10, 2).sites(2).code_footprint(4));
        assert!(t1.site_base >= 1);
        assert!(t2.site_base >= t1.site_base + 3);
        assert!(t2.code_base >= t1.code_base + 16);
    }

    #[test]
    fn with_seed_and_ops_preserve_static_identity() {
        let mut b = ProgramBuilder::new("t", 1);
        let tpl = b.template(BlockSpec::new(10, 1));
        let v = tpl.with_seed(99).with_ops(20);
        assert_eq!(v.site_base, tpl.site_base);
        assert_eq!(v.code_base, tpl.code_base);
        assert_eq!(v.seed, 99);
        assert_eq!(v.ops, 20);
    }

    #[test]
    fn builds_valid_fork_join_program() {
        let mut b = ProgramBuilder::new("t", 4);
        let r = b.alloc_region(1024);
        let bar = b.alloc_barrier();
        b.spawn_workers();
        for t in 0..4u32 {
            b.thread(t)
                .block(
                    BlockSpec::new(100, t as u64)
                        .loads(0.2)
                        .addr(AddressPattern::stream(r.chunk(t as u64, 4)), 1.0),
                )
                .barrier(bar);
        }
        b.join_workers();
        let p = b.build();
        assert_eq!(p.num_threads(), 4);
        assert!(p.validate().is_ok());
        assert_eq!(p.total_ops(), 400);
    }

    #[test]
    fn try_build_reports_orphans() {
        let mut b = ProgramBuilder::new("t", 2);
        b.thread(1u32).block(BlockSpec::new(10, 1));
        assert!(b.try_build().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn build_panics_on_invalid() {
        let mut b = ProgramBuilder::new("t", 2);
        b.thread(1u32).block(BlockSpec::new(10, 1));
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_index_checked() {
        let mut b = ProgramBuilder::new("t", 1);
        b.thread(3u32);
    }

    #[test]
    fn rwlock_and_sem_chain() {
        let mut b = ProgramBuilder::new("t", 1);
        let rw = b.alloc_rwlock();
        let s = b.alloc_sem();
        b.thread(0u32)
            .sem_post(s, 2)
            .rw_lock(rw, false)
            .block(BlockSpec::new(10, 1))
            .rw_unlock(rw)
            .sem_wait(s);
        let p = b.build();
        assert_eq!(p.threads[0].sync_count(), 4);
        assert_eq!(p.format_version(), 2);
    }

    #[test]
    fn rwlock_ids_are_fresh() {
        let mut b = ProgramBuilder::new("t", 1);
        assert_ne!(b.alloc_rwlock(), b.alloc_rwlock());
        assert_ne!(b.alloc_sem(), b.alloc_sem());
    }

    #[test]
    fn lock_unlock_chain() {
        let mut b = ProgramBuilder::new("t", 1);
        let m = b.alloc_mutex();
        b.thread(0u32)
            .lock(m)
            .block(BlockSpec::new(10, 1))
            .unlock(m);
        let p = b.build();
        assert_eq!(p.threads[0].sync_count(), 2);
    }
}

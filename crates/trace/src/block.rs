//! Parametric instruction blocks and their deterministic expansion.

use crate::op::{MicroOp, OpClass};
use crate::pattern::{AddrSampler, AddressPattern, BranchPattern, BranchSampler};
use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// Number of micro-ops that fit in one instruction-cache line (64-byte lines,
/// ~4 bytes per instruction).
pub const OPS_PER_CODE_LINE: u64 = 16;

/// A parametric block of straight-line-ish code.
///
/// A block describes `ops` dynamic micro-ops by their statistical structure:
/// instruction mix, register-dependence profile (ILP), data-address patterns
/// and branch-outcome patterns. Expansion ([`BlockSpec::expand`]) is
/// deterministic in the embedded seed, so the profiler, the simulator and any
/// number of prediction runs all observe the identical dynamic stream —
/// the trace-IR equivalent of running the same binary twice under Pin.
///
/// `BlockSpec` is a consuming builder: configuration methods take and return
/// `self` so specs can be written inline (see crate-level example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSpec {
    /// Total micro-ops in the block.
    pub ops: u32,
    /// Expansion seed.
    pub seed: u64,
    /// Fraction of ops that are loads.
    pub f_load: f64,
    /// Fraction of ops that are stores.
    pub f_store: f64,
    /// Fraction of ops that are conditional branches.
    pub f_branch: f64,
    /// Fraction of ops that are FP adds.
    pub f_fp_add: f64,
    /// Fraction of ops that are FP multiplies.
    pub f_fp_mul: f64,
    /// Fraction of ops that are FP divides.
    pub f_fp_div: f64,
    /// Fraction of ops that are integer multiplies.
    pub f_int_mul: f64,
    /// Fraction of ops that are integer divides.
    pub f_int_div: f64,
    /// Probability an op depends on an earlier op (first source).
    pub p_dep: f64,
    /// Mean dependence distance (geometric), in micro-ops.
    pub dep_mean: f64,
    /// Probability an op has a second dependence.
    pub p_dep2: f64,
    /// Probability a load depends on the most recent previous load
    /// (pointer chasing; serializes the memory stream).
    pub p_load_chain: f64,
    /// Weighted data-address patterns (loads and stores draw from these).
    pub addr: Vec<(AddressPattern, f64)>,
    /// Address patterns used by stores *only* (if empty, stores use `addr`).
    /// Lets a block read shared data but write private data, or vice versa.
    pub store_addr: Vec<(AddressPattern, f64)>,
    /// Branch pattern applied to each branch site.
    pub branch: BranchPattern,
    /// Number of static branch sites in the block (round-robin).
    pub n_sites: u32,
    /// Base identifier for branch sites (set by the builder; globally
    /// unique per block).
    pub site_base: u32,
    /// Instruction footprint in cache lines (the block's code loops over
    /// this many I-cache lines).
    pub code_lines: u64,
    /// First instruction line (set by the builder; globally unique).
    pub code_base: u64,
}

impl BlockSpec {
    /// Creates a block of `ops` micro-ops with the given expansion seed.
    ///
    /// Defaults: pure integer ALU code, 40% single-dependence ops at mean
    /// distance 3, one perfectly-biased branch site, 8 code lines, no memory
    /// accesses.
    pub fn new(ops: u32, seed: u64) -> Self {
        BlockSpec {
            ops,
            seed,
            f_load: 0.0,
            f_store: 0.0,
            f_branch: 0.0,
            f_fp_add: 0.0,
            f_fp_mul: 0.0,
            f_fp_div: 0.0,
            f_int_mul: 0.0,
            f_int_div: 0.0,
            p_dep: 0.4,
            dep_mean: 3.0,
            p_dep2: 0.15,
            p_load_chain: 0.0,
            addr: Vec::new(),
            store_addr: Vec::new(),
            branch: BranchPattern::loop_every(64),
            n_sites: 1,
            site_base: 0,
            code_lines: 8,
            code_base: 0,
        }
    }

    /// Sets the load fraction.
    pub fn loads(mut self, f: f64) -> Self {
        self.f_load = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the store fraction.
    pub fn stores(mut self, f: f64) -> Self {
        self.f_store = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the branch fraction.
    pub fn branches(mut self, f: f64) -> Self {
        self.f_branch = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the FP add / FP multiply fractions.
    pub fn fp(mut self, add: f64, mul: f64) -> Self {
        self.f_fp_add = add.clamp(0.0, 1.0);
        self.f_fp_mul = mul.clamp(0.0, 1.0);
        self
    }

    /// Sets the FP divide fraction.
    pub fn fp_div(mut self, f: f64) -> Self {
        self.f_fp_div = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the integer multiply / divide fractions.
    pub fn int_muldiv(mut self, mul: f64, div: f64) -> Self {
        self.f_int_mul = mul.clamp(0.0, 1.0);
        self.f_int_div = div.clamp(0.0, 1.0);
        self
    }

    /// Sets the dependence profile: probability `p` of a first dependence at
    /// geometric mean distance `mean`.
    ///
    /// Small `mean` and large `p` produce long serial chains (low ILP);
    /// the opposite produces highly parallel code.
    pub fn deps(mut self, p: f64, mean: f64) -> Self {
        self.p_dep = p.clamp(0.0, 1.0);
        self.dep_mean = mean.max(1.0);
        self
    }

    /// Sets the probability of a second dependence.
    pub fn deps2(mut self, p: f64) -> Self {
        self.p_dep2 = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the pointer-chasing probability (loads depending on loads).
    pub fn load_chain(mut self, p: f64) -> Self {
        self.p_load_chain = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a weighted data-address pattern.
    pub fn addr(mut self, pattern: AddressPattern, weight: f64) -> Self {
        self.addr.push((pattern, weight.max(0.0)));
        self
    }

    /// Adds a weighted store-only address pattern.
    pub fn store_addr(mut self, pattern: AddressPattern, weight: f64) -> Self {
        self.store_addr.push((pattern, weight.max(0.0)));
        self
    }

    /// Sets the branch-outcome pattern.
    pub fn branch_pattern(mut self, p: BranchPattern) -> Self {
        self.branch = p;
        self
    }

    /// Sets the number of static branch sites.
    pub fn sites(mut self, n: u32) -> Self {
        self.n_sites = n.max(1);
        self
    }

    /// Sets the instruction footprint in cache lines.
    pub fn code_footprint(mut self, lines: u64) -> Self {
        self.code_lines = lines.max(1);
        self
    }

    /// Expands the block into its dynamic micro-op stream.
    ///
    /// Expansion is pure: calling it any number of times yields the same
    /// stream.
    pub fn expand(&self) -> Vec<MicroOp> {
        let mut out = Vec::with_capacity(self.ops as usize);
        self.expand_into(&mut out);
        out
    }

    /// Expands the block, appending to `out` (reuses its capacity).
    pub fn expand_into(&self, out: &mut Vec<MicroOp>) {
        self.expander().expand_chunk(out, usize::MAX);
    }

    /// Creates a streaming expander positioned at the start of the block.
    ///
    /// Chunked expansion yields exactly the stream [`BlockSpec::expand`]
    /// produces, regardless of chunk boundaries — all generator state lives
    /// in the expander. The trace cursor uses this to hand the simulator
    /// cache-sized slices instead of materializing multi-hundred-KB blocks.
    pub fn expander(&self) -> BlockExpander<'_> {
        let mut rng = Rng::new(self.seed);
        let addr_rng = rng.fork(1);
        let branch_rng = rng.fork(2);

        let mut load_samplers: Vec<(AddrSampler, f64)> = Vec::new();
        let mut total_w = 0.0;
        for (p, w) in &self.addr {
            total_w += *w;
            load_samplers.push((p.sampler(), total_w));
        }
        let mut store_samplers: Vec<(AddrSampler, f64)> = Vec::new();
        let mut store_w = 0.0;
        for (p, w) in &self.store_addr {
            store_w += *w;
            store_samplers.push((p.sampler(), store_w));
        }

        let sites: Vec<BranchSampler> = (0..self.n_sites)
            .map(|k| self.branch.sampler(k.wrapping_mul(7)))
            .collect();

        // Cumulative class thresholds.
        let t_load = self.f_load;
        let t_store = t_load + self.f_store;
        let t_branch = t_store + self.f_branch;
        let t_fpa = t_branch + self.f_fp_add;
        let t_fpm = t_fpa + self.f_fp_mul;
        let t_fpd = t_fpm + self.f_fp_div;
        let t_imul = t_fpd + self.f_int_mul;
        let t_idiv = t_imul + self.f_int_div;

        BlockExpander {
            spec: self,
            rng,
            addr_rng,
            branch_rng,
            load_samplers,
            store_samplers,
            sites,
            next_site: 0,
            thresholds: [
                t_load, t_store, t_branch, t_fpa, t_fpm, t_fpd, t_imul, t_idiv,
            ],
            last_load_at: None,
            ln_q: Rng::geometric_ln(1.0 / self.dep_mean),
            code_lines: self.code_lines.max(1),
            line_rel: 0,
            line_rep: 0,
            i: 0,
        }
    }

    fn pick_addr(samplers: &mut [(AddrSampler, f64)], rng: &mut Rng) -> u64 {
        if samplers.is_empty() {
            return 0;
        }
        let total = samplers.last().map(|(_, w)| *w).unwrap_or(0.0);
        if samplers.len() == 1 || total <= 0.0 {
            return samplers[0].0.next(rng);
        }
        let u = rng.next_f64() * total;
        for (s, cum) in samplers.iter_mut() {
            if u < *cum {
                return s.next(rng);
            }
        }
        let last = samplers.len() - 1;
        samplers[last].0.next(rng)
    }
}

/// Streaming expansion state for one block (see [`BlockSpec::expander`]).
#[derive(Debug, Clone)]
pub struct BlockExpander<'s> {
    spec: &'s BlockSpec,
    rng: Rng,
    addr_rng: Rng,
    branch_rng: Rng,
    load_samplers: Vec<(AddrSampler, f64)>,
    store_samplers: Vec<(AddrSampler, f64)>,
    sites: Vec<BranchSampler>,
    next_site: usize,
    /// Cumulative class thresholds: load, store, branch, fpa, fpm, fpd,
    /// imul, idiv.
    thresholds: [f64; 8],
    last_load_at: Option<u32>,
    /// Precomputed `ln(1 - 1/dep_mean)` for geometric dependence draws.
    ln_q: f64,
    /// `(i / OPS_PER_CODE_LINE) % code_lines` strength-reduced to a pair of
    /// wrapping counters: a u64 div+mod per op is measurable in the
    /// expansion-bound simulator pipeline.
    code_lines: u64,
    line_rel: u64,
    line_rep: u64,
    /// Next op index.
    i: u32,
}

impl BlockExpander<'_> {
    /// Micro-ops not yet expanded.
    pub fn remaining(&self) -> u32 {
        self.spec.ops - self.i
    }

    /// Expands up to `max` further micro-ops, appending to `out`.
    /// Returns the number appended (0 when the block is exhausted).
    pub fn expand_chunk(&mut self, out: &mut Vec<MicroOp>, max: usize) -> usize {
        let end = self.i + (self.remaining() as usize).min(max) as u32;
        let produced = (end - self.i) as usize;
        // `Range` is `TrustedLen`, so this extend reserves once and skips
        // the per-push capacity check.
        let start = self.i;
        out.extend((start..end).map(|i| self.gen_op(i)));
        self.i = end;
        produced
    }

    /// Generates the micro-op at index `i`, advancing all generator state.
    #[inline(always)]
    fn gen_op(&mut self, i: u32) -> MicroOp {
        let spec = self.spec;
        let rng = &mut self.rng;
        let [t_load, t_store, t_branch, t_fpa, t_fpm, t_fpd, t_imul, t_idiv] = self.thresholds;

        {
            let u = rng.next_f64();
            let class = if u < t_load {
                OpClass::Load
            } else if u < t_store {
                OpClass::Store
            } else if u < t_branch {
                OpClass::Branch
            } else if u < t_fpa {
                OpClass::FpAdd
            } else if u < t_fpm {
                OpClass::FpMul
            } else if u < t_fpd {
                OpClass::FpDiv
            } else if u < t_imul {
                OpClass::IntMul
            } else if u < t_idiv {
                OpClass::IntDiv
            } else {
                OpClass::IntAlu
            };

            let mut src1: u16 = 0;
            let mut src2: u16 = 0;
            if rng.chance(spec.p_dep) {
                src1 = rng.geometric_with(self.ln_q).min(u16::MAX as u64) as u16;
            }
            if rng.chance(spec.p_dep2) {
                src2 = rng.geometric_with(self.ln_q).min(u16::MAX as u64) as u16;
            }

            let code_line = spec.code_base + self.line_rel;
            self.line_rep += 1;
            if self.line_rep == OPS_PER_CODE_LINE {
                self.line_rep = 0;
                self.line_rel += 1;
                if self.line_rel == self.code_lines {
                    self.line_rel = 0;
                }
            }

            match class {
                OpClass::Load => {
                    if let Some(prev) = self.last_load_at {
                        if rng.chance(spec.p_load_chain) {
                            src1 = (i - prev).min(u16::MAX as u32) as u16;
                        }
                    }
                    self.last_load_at = Some(i);
                    let line = BlockSpec::pick_addr(&mut self.load_samplers, &mut self.addr_rng);
                    MicroOp {
                        class,
                        src1,
                        src2,
                        line,
                        code_line,
                        site: 0,
                        taken: false,
                    }
                }
                OpClass::Store => {
                    let line = if self.store_samplers.is_empty() {
                        BlockSpec::pick_addr(&mut self.load_samplers, &mut self.addr_rng)
                    } else {
                        BlockSpec::pick_addr(&mut self.store_samplers, &mut self.addr_rng)
                    };
                    MicroOp {
                        class,
                        src1,
                        src2,
                        line,
                        code_line,
                        site: 0,
                        taken: false,
                    }
                }
                OpClass::Branch => {
                    let k = self.next_site;
                    self.next_site = (self.next_site + 1) % self.sites.len();
                    let taken = self.sites[k].next(&mut self.branch_rng);
                    MicroOp {
                        class,
                        src1,
                        src2,
                        line: 0,
                        code_line,
                        site: spec.site_base + k as u32,
                        taken,
                    }
                }
                _ => MicroOp {
                    class,
                    src1,
                    src2,
                    line: 0,
                    code_line,
                    site: 0,
                    taken: false,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Region;

    fn mem_block() -> BlockSpec {
        BlockSpec::new(10_000, 42)
            .loads(0.3)
            .stores(0.1)
            .branches(0.1)
            .addr(AddressPattern::stream(Region::new(0, 512)), 1.0)
    }

    #[test]
    fn expansion_is_deterministic() {
        let b = mem_block();
        assert_eq!(b.expand(), b.expand());
    }

    #[test]
    fn expansion_has_exact_count() {
        let b = mem_block();
        assert_eq!(b.expand().len(), 10_000);
    }

    #[test]
    fn chunked_expansion_is_boundary_invariant() {
        // A realistic mix (deps, branches, stores, load chain) so every
        // piece of expander state crosses chunk boundaries.
        let b = BlockSpec::new(10_000, 42)
            .loads(0.3)
            .stores(0.1)
            .branches(0.1)
            .deps(0.4, 6.0)
            .deps2(0.2)
            .load_chain(0.3)
            .code_footprint(7)
            .addr(AddressPattern::stream(Region::new(0, 512)), 0.7)
            .addr(AddressPattern::random(Region::new(512, 512)), 0.3);
        let whole = b.expand();
        for chunk in [1usize, 3, 64, 377, 1024, 9_999, 20_000] {
            let mut e = b.expander();
            let mut out = Vec::new();
            loop {
                let got = e.expand_chunk(&mut out, chunk);
                assert!(got <= chunk);
                if got == 0 {
                    break;
                }
            }
            assert_eq!(e.remaining(), 0);
            assert_eq!(out, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let ops = mem_block().expand();
        let loads = ops.iter().filter(|o| o.class == OpClass::Load).count() as f64;
        let stores = ops.iter().filter(|o| o.class == OpClass::Store).count() as f64;
        let branches = ops.iter().filter(|o| o.class == OpClass::Branch).count() as f64;
        let n = ops.len() as f64;
        assert!((loads / n - 0.3).abs() < 0.02, "load frac {}", loads / n);
        assert!((stores / n - 0.1).abs() < 0.02);
        assert!((branches / n - 0.1).abs() < 0.02);
    }

    #[test]
    fn memory_ops_have_addresses_in_region() {
        let ops = mem_block().expand();
        for o in ops.iter().filter(|o| o.is_mem()) {
            assert!(o.line < 512, "address {} outside region", o.line);
        }
    }

    #[test]
    fn dependence_distances_present() {
        let ops = mem_block().expand();
        let with_dep = ops.iter().filter(|o| o.src1 > 0).count() as f64;
        let frac = with_dep / ops.len() as f64;
        // p_dep default 0.4, plus load-chain none.
        assert!((frac - 0.4).abs() < 0.03, "dep frac {frac}");
    }

    #[test]
    fn load_chain_serializes_loads() {
        let b = BlockSpec::new(20_000, 7)
            .loads(0.5)
            .load_chain(1.0)
            .deps(0.0, 3.0)
            .addr(AddressPattern::random(Region::new(0, 4096)), 1.0);
        let ops = b.expand();
        let mut prev_load: Option<usize> = None;
        let mut chained = 0;
        let mut loads = 0;
        for (i, o) in ops.iter().enumerate() {
            if o.class == OpClass::Load {
                loads += 1;
                if let Some(p) = prev_load {
                    if o.src1 as usize == i - p {
                        chained += 1;
                    }
                }
                prev_load = Some(i);
            }
        }
        // Every load after the first chains to its predecessor.
        assert!(chained >= loads - 1 - 1, "chained {chained} of {loads}");
    }

    #[test]
    fn code_lines_wrap_footprint() {
        let b = BlockSpec::new(1000, 3).code_footprint(4);
        for o in b.expand() {
            assert!(o.code_line < 4);
        }
    }

    #[test]
    fn site_base_offsets_sites() {
        let mut b = mem_block().sites(3);
        b.site_base = 100;
        let ops = b.expand();
        let sites: std::collections::BTreeSet<u32> = ops
            .iter()
            .filter(|o| o.class == OpClass::Branch)
            .map(|o| o.site)
            .collect();
        assert_eq!(sites, [100u32, 101, 102].into_iter().collect());
    }

    #[test]
    fn store_addr_separates_write_region() {
        let read = Region::new(0, 100);
        let write = Region::new(1000, 100);
        let b = BlockSpec::new(5000, 9)
            .loads(0.3)
            .stores(0.2)
            .addr(AddressPattern::stream(read), 1.0)
            .store_addr(AddressPattern::stream(write), 1.0);
        for o in b.expand() {
            match o.class {
                OpClass::Load => assert!(o.line < 100),
                OpClass::Store => assert!(o.line >= 1000 && o.line < 1100),
                _ => {}
            }
        }
    }

    #[test]
    fn expand_into_appends() {
        let b = BlockSpec::new(10, 1);
        let mut v = b.expand();
        b.expand_into(&mut v);
        assert_eq!(v.len(), 20);
        assert_eq!(&v[..10], &v[10..]);
    }

    #[test]
    fn weighted_patterns_split_accesses() {
        let a = Region::new(0, 100);
        let c = Region::new(10_000, 100);
        let b = BlockSpec::new(40_000, 5)
            .loads(0.5)
            .addr(AddressPattern::random(a), 3.0)
            .addr(AddressPattern::random(c), 1.0);
        let ops = b.expand();
        let in_a = ops.iter().filter(|o| o.is_mem() && o.line < 100).count() as f64;
        let in_c = ops
            .iter()
            .filter(|o| o.is_mem() && o.line >= 10_000)
            .count() as f64;
        let frac = in_a / (in_a + in_c);
        assert!((frac - 0.75).abs() < 0.03, "region split {frac}");
    }
}
